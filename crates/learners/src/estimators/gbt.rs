//! Gradient-boosted trees: one engine, three mined-learner families.
//!
//! * `gradient_boost` — first-order boosting with exact depth-wise trees
//!   (sklearn `GradientBoosting*` style),
//! * `xgboost` — second-order boosting with L2 leaf regularization
//!   (`lambda`), split penalty (`gamma`), `min_child_weight`, exact splits,
//! * `lgbm` — second-order boosting over quantile-binned histograms with
//!   leaf-wise (best-gain-first) growth up to `max_leaves`.
//!
//! All three share the classic additive-model loop: maintain raw scores F,
//! compute per-row gradients g (and hessians h for second-order modes) of
//! the task loss, fit a regression tree to (g, h), and add `learning_rate ×
//! tree` to F. Losses: squared error (regression), logistic (binary),
//! softmax (multi-class, one tree per class per round).
//!
//! The histogram engine is the trial hot path: bin edges are quantile-fit
//! once per matrix content and memoized process-wide, per-node histograms
//! accumulate in row order with feature scans fanned over rayon past a
//! feature-count threshold, sibling nodes reuse the parent histogram by
//! subtraction, and in-bag rows take their leaf value from the builder's
//! assignments instead of re-traversing the tree. Every reduction has a
//! fixed order, so fitted models are bit-identical at any worker count
//! (`tests/gbt_determinism.rs`). The exact-split path stays available
//! behind the `exact` hyperparameter.

use super::{argmax_rows, check_fit_inputs, Estimator, EstimatorKind};
use crate::matrix::{ChunkedMatrix, Matrix};
use crate::{LearnError, Result};
use kgpip_tabular::{fnv1a, Task};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::{Arc, Mutex, OnceLock};

/// Hyperparameters of the boosting engine.
#[derive(Debug, Clone)]
pub struct GbtConfig {
    /// Number of boosting rounds.
    pub n_estimators: usize,
    /// Shrinkage applied to each tree's contribution.
    pub learning_rate: f64,
    /// Maximum depth per tree (ignored constraint in leaf-wise mode unless
    /// exceeded).
    pub max_depth: usize,
    /// Row subsampling fraction per tree, (0, 1].
    pub subsample: f64,
    /// L2 regularization on leaf weights (XGBoost's λ).
    pub lambda: f64,
    /// Minimum gain required to split (XGBoost's γ).
    pub gamma: f64,
    /// Minimum hessian mass per child.
    pub min_child_weight: f64,
    /// Use true hessians (second-order) or h = 1 (first-order).
    pub second_order: bool,
    /// Use histogram-binned splits + leaf-wise growth (LightGBM style).
    pub histogram: bool,
    /// Number of quantile bins in histogram mode.
    pub max_bins: usize,
    /// Maximum leaves per tree in leaf-wise mode (0 = unlimited).
    pub max_leaves: usize,
    /// RNG seed for row subsampling.
    pub seed: u64,
    /// Which mined-learner family this configuration represents.
    pub kind: EstimatorKind,
}

#[derive(Debug, Clone)]
enum GNode {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    Leaf(f64),
}

#[derive(Debug, Clone)]
struct GradTree {
    nodes: Vec<GNode>,
}

impl GradTree {
    fn predict_row(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                GNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    }
                }
                GNode::Leaf(v) => return *v,
            }
        }
    }

    fn num_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, GNode::Leaf(_)))
            .count()
    }
}

/// XGBoost-style structure gain of splitting (G, H) into (GL, HL), (GR, HR).
#[inline]
fn split_gain(gl: f64, hl: f64, gr: f64, hr: f64, lambda: f64) -> f64 {
    let term = |g: f64, h: f64| g * g / (h + lambda);
    0.5 * (term(gl, hl) + term(gr, hr) - term(gl + gr, hl + hr))
}

#[inline]
fn leaf_weight(g: f64, h: f64, lambda: f64) -> f64 {
    -g / (h + lambda)
}

// ---------------------------------------------------------------------------
// Exact depth-wise builder
// ---------------------------------------------------------------------------

fn build_exact(x: &Matrix, g: &[f64], h: &[f64], rows: Vec<usize>, cfg: &GbtConfig) -> GradTree {
    let mut nodes = Vec::new();
    build_exact_node(x, g, h, rows, 0, cfg, &mut nodes);
    GradTree { nodes }
}

fn build_exact_node(
    x: &Matrix,
    g: &[f64],
    h: &[f64],
    rows: Vec<usize>,
    depth: usize,
    cfg: &GbtConfig,
    nodes: &mut Vec<GNode>,
) -> usize {
    let g_sum: f64 = rows.iter().map(|&r| g[r]).sum();
    let h_sum: f64 = rows.iter().map(|&r| h[r]).sum();
    let leaf = |nodes: &mut Vec<GNode>| {
        nodes.push(GNode::Leaf(leaf_weight(g_sum, h_sum, cfg.lambda)));
        nodes.len() - 1
    };
    if depth >= cfg.max_depth || rows.len() < 2 {
        return leaf(nodes);
    }
    let mut best: Option<(f64, usize, f64)> = None; // gain, feature, threshold
    for f in 0..x.cols() {
        let mut order = rows.clone();
        order.sort_by(|&a, &b| x.get(a, f).partial_cmp(&x.get(b, f)).unwrap());
        let mut gl = 0.0;
        let mut hl = 0.0;
        for w in 0..order.len() - 1 {
            let r = order[w];
            gl += g[r];
            hl += h[r];
            let v = x.get(r, f);
            let next = x.get(order[w + 1], f);
            if v == next {
                continue;
            }
            let hr = h_sum - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = split_gain(gl, hl, g_sum - gl, hr, cfg.lambda);
            if gain > cfg.gamma && best.is_none_or(|(bg, _, _)| gain > bg) {
                best = Some((gain, f, v + (next - v) * 0.5));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        return leaf(nodes);
    };
    let (lrows, rrows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| x.get(r, feature) <= threshold);
    if lrows.is_empty() || rrows.is_empty() {
        return leaf(nodes);
    }
    let at = nodes.len();
    nodes.push(GNode::Leaf(0.0));
    let left = build_exact_node(x, g, h, lrows, depth + 1, cfg, nodes);
    let right = build_exact_node(x, g, h, rrows, depth + 1, cfg, nodes);
    nodes[at] = GNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    at
}

// ---------------------------------------------------------------------------
// Histogram leaf-wise builder
// ---------------------------------------------------------------------------

/// Quantile bin edges of one feature from its (unsorted) values: sort,
/// dedup, then up to `max_bins` upper-inclusive edges. The edges depend
/// only on the *set* of values, so any full-coverage sample of a column
/// yields the same edges as the column itself.
fn quantile_edges(mut vals: Vec<f64>, max_bins: usize) -> Vec<f64> {
    vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
    vals.dedup();
    if vals.len() <= max_bins {
        vals
    } else {
        (1..=max_bins)
            .map(|b| {
                let idx = b * (vals.len() - 1) / max_bins;
                vals[idx]
            })
            .collect()
    }
}

/// Bin index of `v` against strictly increasing upper-inclusive `edges`:
/// the first edge ≥ v, clamped to the last bin.
#[inline]
fn bin_value(v: f64, edges: &[f64]) -> u16 {
    match edges.binary_search_by(|e| e.partial_cmp(&v).unwrap()) {
        Ok(i) => i as u16,
        Err(i) => (i.min(edges.len() - 1)) as u16,
    }
}

/// Global quantile binning of the training matrix: per feature, up to
/// `max_bins` bin edges; returns (bin index matrix as u16, per-feature bin
/// upper edges).
pub(crate) fn quantile_bins(x: &Matrix, max_bins: usize) -> (Vec<Vec<u16>>, Vec<Vec<f64>>) {
    let mut binned = Vec::with_capacity(x.cols());
    let mut edges_all = Vec::with_capacity(x.cols());
    for f in 0..x.cols() {
        let edges = quantile_edges(x.col(f), max_bins);
        let bins: Vec<u16> = x.col(f).iter().map(|&v| bin_value(v, &edges)).collect();
        binned.push(bins);
        edges_all.push(edges);
    }
    (binned, edges_all)
}

/// A matrix pre-binned for histogram split finding: per-feature bin indices
/// plus the (strictly increasing) upper-inclusive bin edges.
struct BinnedMatrix {
    bins: Vec<Vec<u16>>,
    edges: Vec<Vec<f64>>,
}

/// Entries kept in the process-wide bin cache. Small: one entry per live
/// encoded training matrix; HPO trials against the same split all hit the
/// same entry.
const BIN_CACHE_CAPACITY: usize = 8;

/// Features at or above this count fan histogram accumulation / split scans
/// out over rayon. Below it the parallel dispatch overhead dominates (and
/// the trial-level engine already runs whole pipelines in parallel).
const PAR_FEATURE_THRESHOLD: usize = 16;

/// FNV-1a over the matrix dimensions and raw `f64` bit patterns.
fn matrix_fingerprint(x: &Matrix) -> u64 {
    let mut hash = fnv1a(b"gbt-bins");
    let mut mix = |v: u64| {
        for byte in v.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(x.rows() as u64);
    mix(x.cols() as u64);
    for v in x.as_slice() {
        mix(v.to_bits());
    }
    hash
}

/// Returns the binned form of `x`, memoized process-wide so bin edges are
/// fit once per (matrix content, `max_bins`) — every HPO trial sharing a
/// cached encoded matrix skips the per-feature sorts entirely.
fn binned_for(x: &Matrix, max_bins: usize) -> Arc<BinnedMatrix> {
    type BinKey = (u64, usize, usize, usize);
    type BinCache = Mutex<Vec<(BinKey, Arc<BinnedMatrix>)>>;
    static CACHE: OnceLock<BinCache> = OnceLock::new();
    let key: BinKey = (matrix_fingerprint(x), x.rows(), x.cols(), max_bins);
    let cache = CACHE.get_or_init(|| Mutex::new(Vec::new()));
    {
        let mut cache = cache.lock().expect("bin cache poisoned");
        if let Some(i) = cache.iter().position(|(k, _)| *k == key) {
            let entry = cache.remove(i);
            let out = Arc::clone(&entry.1);
            cache.push(entry); // most-recently-used at the back
            return out;
        }
    }
    // Bin outside the lock; a racing fit of the same matrix computes the
    // same bins (binning is deterministic), so losing the race is harmless.
    let (bins, edges) = quantile_bins(x, max_bins);
    let binned = Arc::new(BinnedMatrix { bins, edges });
    let mut cache = cache.lock().expect("bin cache poisoned");
    if !cache.iter().any(|(k, _)| *k == key) {
        if cache.len() >= BIN_CACHE_CAPACITY {
            cache.remove(0);
        }
        cache.push((key, Arc::clone(&binned)));
    }
    binned
}

/// Binned form of a chunked matrix for the chunk-streaming fit. Bin edges
/// are fit on a deterministic bottom-k row sample (ascending global row
/// order); each chunk is then binned against those edges in chunk order and
/// the per-feature bin vectors concatenate into exactly the layout
/// [`quantile_bins`] produces. Whenever `sample_bound >= rows` the sample
/// is every row, the per-feature value sets match the full columns, and the
/// edges — hence the bins, hence the fitted trees — are bit-identical to
/// the dense fit. Above the bound the edges are approximate but still
/// invariant to chunk size, because the sample is keyed by global row
/// index.
fn binned_chunked(
    x: &ChunkedMatrix,
    max_bins: usize,
    sample_bound: usize,
    seed: u64,
) -> BinnedMatrix {
    let sample = kgpip_tabular::sample_rows(x.rows(), sample_bound, seed);
    // Per-feature sampled values, gathered chunk-by-chunk in row order.
    let mut sampled: Vec<Vec<f64>> = vec![Vec::with_capacity(sample.len()); x.cols()];
    let mut cursor = sample.iter().peekable();
    let mut base = 0usize;
    for chunk in x.chunks() {
        let len = chunk.rows();
        while let Some(&&r) = cursor.peek() {
            if r < base || r >= base + len {
                break;
            }
            for (f, vals) in sampled.iter_mut().enumerate() {
                vals.push(chunk.get(r - base, f));
            }
            cursor.next();
        }
        base += len;
    }
    let edges: Vec<Vec<f64>> = sampled
        .into_iter()
        .map(|vals| quantile_edges(vals, max_bins))
        .collect();
    // Bin chunk-by-chunk, concatenating per feature in chunk order.
    let mut bins: Vec<Vec<u16>> = vec![Vec::with_capacity(x.rows()); x.cols()];
    for chunk in x.chunks() {
        for (f, (feature_bins, feature_edges)) in bins.iter_mut().zip(edges.iter()).enumerate() {
            for r in 0..chunk.rows() {
                feature_bins.push(bin_value(chunk.get(r, f), feature_edges));
            }
        }
    }
    BinnedMatrix { bins, edges }
}

/// Per-node histogram: `hist[feature][bin] = (Σg, Σh)` over the node's rows.
type Hist = Vec<Vec<(f64, f64)>>;

/// Builds a node's histogram, one feature at a time (rayon-parallel across
/// features past [`PAR_FEATURE_THRESHOLD`]). Within a feature, rows
/// accumulate in row order; features are independent — so the result is
/// bit-identical at any worker count.
// xlint: allow(unclamped-rayon): runs on the caller-installed pool (par_iter spawns nothing itself); the worker count was clamped by the Evaluator that built the pool
fn node_hist(bm: &BinnedMatrix, g: &[f64], h: &[f64], rows: &[usize]) -> Hist {
    let build = |f: usize| {
        let bins = &bm.bins[f];
        let mut hist = vec![(0.0f64, 0.0f64); bm.edges[f].len()];
        for &r in rows {
            let cell = &mut hist[bins[r] as usize];
            cell.0 += g[r];
            cell.1 += h[r];
        }
        hist
    };
    if bm.bins.len() >= PAR_FEATURE_THRESHOLD {
        let features: Vec<usize> = (0..bm.bins.len()).collect();
        features.par_iter().map(|&f| build(f)).collect()
    } else {
        (0..bm.bins.len()).map(build).collect()
    }
}

/// Sibling histogram by subtraction: `parent − child`, elementwise.
fn subtract_hist(parent: &Hist, child: &Hist) -> Hist {
    parent
        .iter()
        .zip(child)
        .map(|(p, c)| {
            p.iter()
                .zip(c)
                .map(|(&(pg, ph), &(cg, ch))| (pg - cg, ph - ch))
                .collect()
        })
        .collect()
}

/// Best `(gain, feature, bin)` split of a node given its histogram.
/// Deterministic total order: strictly higher gain wins; ties keep the
/// lowest feature, then the lowest bin. The per-feature scans are
/// independent (rayon-parallel past [`PAR_FEATURE_THRESHOLD`]) and the
/// reduction folds per-feature bests in feature order, so the winner is
/// bit-identical at any worker count.
// xlint: allow(unclamped-rayon): runs on the caller-installed pool (par_iter spawns nothing itself); the worker count was clamped by the Evaluator that built the pool
fn best_split_from_hist(
    hist: &Hist,
    g_sum: f64,
    h_sum: f64,
    cfg: &GbtConfig,
) -> Option<(f64, usize, usize)> {
    let scan = |f: usize| -> Option<(f64, usize, usize)> {
        let bins = &hist[f];
        let mut best: Option<(f64, usize, usize)> = None;
        let mut gl = 0.0;
        let mut hl = 0.0;
        for (b, &(bg, bh)) in bins.iter().enumerate().take(bins.len().saturating_sub(1)) {
            gl += bg;
            hl += bh;
            let hr = h_sum - hl;
            if hl < cfg.min_child_weight || hr < cfg.min_child_weight {
                continue;
            }
            let gain = split_gain(gl, hl, g_sum - gl, hr, cfg.lambda);
            if gain > cfg.gamma && best.is_none_or(|(prev, _, _)| gain > prev) {
                best = Some((gain, f, b));
            }
        }
        best
    };
    let per_feature: Vec<Option<(f64, usize, usize)>> = if hist.len() >= PAR_FEATURE_THRESHOLD {
        let features: Vec<usize> = (0..hist.len()).collect();
        features.par_iter().map(|&f| scan(f)).collect()
    } else {
        (0..hist.len()).map(scan).collect()
    };
    per_feature
        .into_iter()
        .flatten()
        .fold(None, |acc, cand| match acc {
            Some((best_gain, _, _)) if cand.0 <= best_gain => acc,
            _ => Some(cand),
        })
}

/// A frontier leaf that has a viable split waiting to be applied.
struct HistNode {
    node: usize,
    depth: usize,
    rows: Vec<usize>,
    hist: Hist,
    /// `(gain, feature, bin)` of this node's best split.
    split: (f64, usize, usize),
}

/// Leaf-wise (best-gain-first) histogram tree builder. Returns the tree
/// plus the in-bag leaf assignments — `(leaf node index, rows routed
/// there)` for every training row in `rows` — so the boosting loop can
/// update scores without re-traversing the tree. Assignment-by-bin equals
/// assignment-by-threshold: bin edges are upper-inclusive, so
/// `bin(x) ≤ b ⇔ x ≤ edges[b]`, exactly the routing `predict_row` applies.
fn build_hist(
    bm: &BinnedMatrix,
    g: &[f64],
    h: &[f64],
    rows: Vec<usize>,
    cfg: &GbtConfig,
) -> (GradTree, Vec<(usize, Vec<usize>)>) {
    let max_leaves = if cfg.max_leaves == 0 {
        usize::MAX
    } else {
        cfg.max_leaves
    };
    let mut nodes: Vec<GNode> = Vec::new();
    let mut frontier: Vec<HistNode> = Vec::new();
    let mut done: Vec<(usize, Vec<usize>)> = Vec::new();

    // Scans a fresh leaf: either it joins the frontier (has a viable split)
    // or it is final.
    let enqueue = |node: usize,
                   depth: usize,
                   rows: Vec<usize>,
                   g_sum: f64,
                   h_sum: f64,
                   hist: Hist,
                   frontier: &mut Vec<HistNode>,
                   done: &mut Vec<(usize, Vec<usize>)>| {
        match best_split_from_hist(&hist, g_sum, h_sum, cfg) {
            Some(split) => frontier.push(HistNode {
                node,
                depth,
                rows,
                hist,
                split,
            }),
            None => done.push((node, rows)),
        }
    };

    let g_sum: f64 = rows.iter().map(|&r| g[r]).sum();
    let h_sum: f64 = rows.iter().map(|&r| h[r]).sum();
    nodes.push(GNode::Leaf(leaf_weight(g_sum, h_sum, cfg.lambda)));
    if cfg.max_depth == 0 || rows.len() < 2 {
        done.push((0, rows));
    } else {
        let hist = node_hist(bm, g, h, &rows);
        enqueue(0, 0, rows, g_sum, h_sum, hist, &mut frontier, &mut done);
    }

    let mut leaves = 1usize;
    while leaves < max_leaves && !frontier.is_empty() {
        // Highest gain wins; on exact ties the earliest frontier entry.
        let mut best_i = 0usize;
        for i in 1..frontier.len() {
            if frontier[i].split.0 > frontier[best_i].split.0 {
                best_i = i;
            }
        }
        let cand = frontier.swap_remove(best_i);
        let (_, feature, bin) = cand.split;
        let (lrows, rrows): (Vec<usize>, Vec<usize>) = cand
            .rows
            .iter()
            .partition(|&&r| (bm.bins[feature][r] as usize) <= bin);
        if lrows.is_empty() || rrows.is_empty() {
            done.push((cand.node, cand.rows));
            continue;
        }
        // Leaf weights from direct row-order sums (not histogram bins), so
        // leaf values do not depend on the binning granularity's summation
        // order.
        let lg: f64 = lrows.iter().map(|&r| g[r]).sum();
        let lh: f64 = lrows.iter().map(|&r| h[r]).sum();
        let rg: f64 = rrows.iter().map(|&r| g[r]).sum();
        let rh: f64 = rrows.iter().map(|&r| h[r]).sum();
        let left = nodes.len();
        nodes.push(GNode::Leaf(leaf_weight(lg, lh, cfg.lambda)));
        let right = nodes.len();
        nodes.push(GNode::Leaf(leaf_weight(rg, rh, cfg.lambda)));
        nodes[cand.node] = GNode::Split {
            feature,
            threshold: bm.edges[feature][bin],
            left,
            right,
        };
        leaves += 1;

        let child_depth = cand.depth + 1;
        let l_splittable = child_depth < cfg.max_depth && lrows.len() >= 2;
        let r_splittable = child_depth < cfg.max_depth && rrows.len() >= 2;
        match (l_splittable, r_splittable) {
            (false, false) => {
                done.push((left, lrows));
                done.push((right, rrows));
            }
            (true, false) => {
                let lhist = node_hist(bm, g, h, &lrows);
                enqueue(
                    left,
                    child_depth,
                    lrows,
                    lg,
                    lh,
                    lhist,
                    &mut frontier,
                    &mut done,
                );
                done.push((right, rrows));
            }
            (false, true) => {
                done.push((left, lrows));
                let rhist = node_hist(bm, g, h, &rrows);
                enqueue(
                    right,
                    child_depth,
                    rrows,
                    rg,
                    rh,
                    rhist,
                    &mut frontier,
                    &mut done,
                );
            }
            (true, true) => {
                // Histogram subtraction: accumulate the smaller child
                // directly, derive the larger as parent − smaller.
                let (lhist, rhist) = if lrows.len() <= rrows.len() {
                    let lhist = node_hist(bm, g, h, &lrows);
                    let rhist = subtract_hist(&cand.hist, &lhist);
                    (lhist, rhist)
                } else {
                    let rhist = node_hist(bm, g, h, &rrows);
                    let lhist = subtract_hist(&cand.hist, &rhist);
                    (lhist, rhist)
                };
                enqueue(
                    left,
                    child_depth,
                    lrows,
                    lg,
                    lh,
                    lhist,
                    &mut frontier,
                    &mut done,
                );
                enqueue(
                    right,
                    child_depth,
                    rrows,
                    rg,
                    rh,
                    rhist,
                    &mut frontier,
                    &mut done,
                );
            }
        }
    }
    // Leaves still on the frontier when the cap hits stay leaves.
    for n in frontier {
        done.push((n.node, n.rows));
    }
    (GradTree { nodes }, done)
}

// ---------------------------------------------------------------------------
// Boosting loop
// ---------------------------------------------------------------------------

/// The gradient-boosting estimator.
#[derive(Debug)]
pub struct GradientBoosting {
    config: GbtConfig,
    /// `trees[round][class]` — one tree per class head per round.
    trees: Vec<Vec<GradTree>>,
    base_score: Vec<f64>,
    task: Option<Task>,
}

impl GradientBoosting {
    /// Creates an unfitted booster.
    pub fn new(config: GbtConfig) -> Self {
        GradientBoosting {
            config,
            trees: Vec::new(),
            base_score: Vec::new(),
            task: None,
        }
    }

    /// Total number of fitted trees across all rounds and heads.
    pub fn num_trees(&self) -> usize {
        self.trees.iter().map(Vec::len).sum()
    }

    /// Mean leaf count per tree (proxy for tree complexity in tests).
    pub fn mean_leaves(&self) -> f64 {
        let total: usize = self
            .trees
            .iter()
            .flat_map(|round| round.iter().map(GradTree::num_leaves))
            .sum();
        total as f64 / self.num_trees().max(1) as f64
    }

    /// Raw additive scores, one column per head.
    fn raw_scores(&self, x: &Matrix) -> Matrix {
        let heads = self.base_score.len();
        let mut out = Matrix::zeros(x.rows(), heads);
        for r in 0..x.rows() {
            for (c, b) in self.base_score.iter().enumerate() {
                out.set(r, c, *b);
            }
        }
        for round in &self.trees {
            for (c, tree) in round.iter().enumerate() {
                for r in 0..x.rows() {
                    let v = out.get(r, c) + self.config.learning_rate * tree.predict_row(x.row(r));
                    out.set(r, c, v);
                }
            }
        }
        out
    }
}

/// The rows a fit reads feature values from: either a dense matrix (the
/// classic path, required for exact splits) or a chunked one (the
/// streaming path, histogram mode only — only out-of-bag routing touches
/// individual rows, resolved chunk-locally).
enum FitRows<'a> {
    Dense(&'a Matrix),
    Chunked(&'a ChunkedMatrix),
}

impl FitRows<'_> {
    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        match self {
            FitRows::Dense(x) => x.row(r),
            FitRows::Chunked(x) => x.row(r),
        }
    }

    fn rows(&self) -> usize {
        match self {
            FitRows::Dense(x) => x.rows(),
            FitRows::Chunked(x) => x.rows(),
        }
    }
}

impl GradientBoosting {
    /// Fits from a chunked matrix without ever materializing the dense
    /// form (histogram configurations): bin edges come from a
    /// deterministic sample of at most `sample_bound` rows, each chunk is
    /// binned against them in chunk order, and the boosting loop then runs
    /// on the compact `u16` bins. Whenever `sample_bound >= rows` the
    /// fitted model is bit-identical to [`Estimator::fit`] on the
    /// concatenated matrix (`tests/gbt_chunked.rs` asserts this via
    /// `to_bits`); above the bound the edges are sample-approximate but
    /// still chunk-size invariant. Exact-split configurations need full
    /// per-feature sorts, so they concatenate and delegate to the dense
    /// fit.
    pub fn fit_chunked(
        &mut self,
        x: &ChunkedMatrix,
        y: &[f64],
        task: Task,
        sample_bound: usize,
    ) -> Result<()> {
        if !self.config.histogram {
            let dense = x.to_matrix();
            return self.fit(&dense, y, task);
        }
        if x.rows() == 0 || x.cols() == 0 {
            return Err(LearnError::Shape("gbt: empty training matrix".into()));
        }
        if x.rows() != y.len() {
            return Err(LearnError::Shape(format!(
                "gbt: {} rows vs {} targets",
                x.rows(),
                y.len()
            )));
        }
        if x.has_nan() {
            return Err(LearnError::Shape(
                "gbt: training matrix contains NaN; impute first".into(),
            ));
        }
        let binned = binned_chunked(
            x,
            self.config.max_bins.max(2),
            sample_bound.max(1),
            self.config.seed,
        );
        self.boost(&FitRows::Chunked(x), Some(Arc::new(binned)), y, task)
    }

    /// The shared additive-boosting loop; `binned` is `Some` exactly when
    /// the configuration is in histogram mode.
    fn boost(
        &mut self,
        x: &FitRows<'_>,
        binned: Option<Arc<BinnedMatrix>>,
        y: &[f64],
        task: Task,
    ) -> Result<()> {
        let n = x.rows();
        let heads = match task {
            Task::Regression | Task::Binary => 1,
            Task::MultiClass(k) => k,
        };
        // Base score.
        self.base_score = match task {
            Task::Regression => vec![y.iter().sum::<f64>() / n as f64],
            Task::Binary => {
                let p = (y.iter().sum::<f64>() / n as f64).clamp(1e-6, 1.0 - 1e-6);
                vec![(p / (1.0 - p)).ln()]
            }
            Task::MultiClass(k) => vec![0.0; k],
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        // Current raw scores, flat `[row * heads + head]`.
        let mut f_scores: Vec<f64> = Vec::with_capacity(n * heads);
        for _ in 0..n {
            f_scores.extend_from_slice(&self.base_score);
        }
        self.trees = Vec::with_capacity(self.config.n_estimators);
        for _round in 0..self.config.n_estimators {
            // Subsample rows once per round.
            let rows: Vec<usize> = if self.config.subsample < 1.0 {
                (0..n)
                    .filter(|_| rng.gen::<f64>() < self.config.subsample)
                    .collect()
            } else {
                (0..n).collect()
            };
            if rows.len() < 2 {
                continue;
            }
            let in_bag = rows.len() == n;
            let mut round_trees = Vec::with_capacity(heads);
            // Gradients for all heads computed from the *same* scores, flat
            // `[head * n + row]` so each head's slice is contiguous.
            let (g_all, h_all) = gradients(&f_scores, heads, y, task, self.config.second_order);
            for head in 0..heads {
                let g = &g_all[head * n..(head + 1) * n];
                let h = &h_all[head * n..(head + 1) * n];
                let tree = match &binned {
                    Some(bm) => {
                        let (tree, assignments) = build_hist(bm, g, h, rows.clone(), &self.config);
                        // In-bag rows take their leaf value straight from
                        // the assignment (identical to routing the row:
                        // bin(x) ≤ b ⇔ x ≤ edges[b]); out-of-bag rows are
                        // routed through the tree as before.
                        for (node, leaf_rows) in &assignments {
                            let GNode::Leaf(value) = tree.nodes[*node] else {
                                continue;
                            };
                            for &r in leaf_rows {
                                f_scores[r * heads + head] += self.config.learning_rate * value;
                            }
                        }
                        if !in_bag {
                            let mut bagged = vec![false; n];
                            for &r in &rows {
                                bagged[r] = true;
                            }
                            for (r, b) in bagged.iter().enumerate() {
                                if !b {
                                    f_scores[r * heads + head] +=
                                        self.config.learning_rate * tree.predict_row(x.row(r));
                                }
                            }
                        }
                        tree
                    }
                    None => {
                        let FitRows::Dense(xm) = x else {
                            return Err(LearnError::Shape(
                                "gbt: exact splits require a dense matrix".into(),
                            ));
                        };
                        let tree = build_exact(xm, g, h, rows.clone(), &self.config);
                        for r in 0..n {
                            f_scores[r * heads + head] +=
                                self.config.learning_rate * tree.predict_row(xm.row(r));
                        }
                        tree
                    }
                };
                round_trees.push(tree);
            }
            self.trees.push(round_trees);
        }
        self.task = Some(task);
        Ok(())
    }
}

impl Estimator for GradientBoosting {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("gbt", x, y)?;
        // Bin edges are fit once per (matrix content, max_bins) and shared
        // process-wide: HPO trials hammering the same cached encoded matrix
        // skip the per-feature sorts after the first fit.
        let binned: Option<Arc<BinnedMatrix>> = if self.config.histogram {
            Some(binned_for(x, self.config.max_bins.max(2)))
        } else {
            None
        };
        self.boost(&FitRows::Dense(x), binned, y, task)
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let task = self.task.ok_or(LearnError::NotFitted("gbt"))?;
        match task {
            Task::Regression => Ok(self.raw_scores(x).col(0)),
            _ => Ok(argmax_rows(&self.predict_proba(x)?)),
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let task = self.task.ok_or(LearnError::NotFitted("gbt"))?;
        match task {
            Task::Regression => Err(LearnError::UnsupportedTask("gbt (regression proba)")),
            Task::Binary => {
                let raw = self.raw_scores(x);
                let mut out = Matrix::zeros(x.rows(), 2);
                for r in 0..x.rows() {
                    let p = 1.0 / (1.0 + (-raw.get(r, 0)).exp());
                    out.set(r, 0, 1.0 - p);
                    out.set(r, 1, p);
                }
                Ok(out)
            }
            Task::MultiClass(_) => {
                let mut raw = self.raw_scores(x);
                super::softmax_rows(&mut raw);
                Ok(raw)
            }
        }
    }

    fn kind(&self) -> EstimatorKind {
        self.config.kind
    }
}

/// Per-row, per-head gradients and hessians of the task loss at the current
/// scores (`f_scores` flat `[row * heads + head]`). Returned flat as
/// `[head * n + row]` so each head's slice is contiguous for the tree
/// builders. With `second_order == false`, hessians are 1.
fn gradients(
    f_scores: &[f64],
    heads: usize,
    y: &[f64],
    task: Task,
    second_order: bool,
) -> (Vec<f64>, Vec<f64>) {
    let n = y.len();
    let mut g = vec![0.0f64; n * heads];
    let mut h = vec![0.0f64; n * heads];
    let hess = |p: f64| {
        if second_order {
            (p * (1.0 - p)).max(1e-6)
        } else {
            1.0
        }
    };
    for (r, &t) in y.iter().enumerate() {
        let fs = &f_scores[r * heads..(r + 1) * heads];
        match task {
            Task::Regression => {
                g[r] = fs[0] - t;
                h[r] = 1.0;
            }
            Task::Binary => {
                let p = 1.0 / (1.0 + (-fs[0]).exp());
                g[r] = p - t;
                h[r] = hess(p);
            }
            Task::MultiClass(k) => {
                let max = fs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = fs.iter().map(|v| (v - max).exp()).collect();
                let sum: f64 = exps.iter().sum();
                for c in 0..k {
                    let p = exps[c] / sum;
                    g[c * n + r] = p - f64::from(c == t as usize);
                    h[c * n + r] = hess(p);
                }
            }
        }
    }
    (g, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(kind: EstimatorKind) -> GbtConfig {
        GbtConfig {
            n_estimators: 30,
            learning_rate: 0.2,
            max_depth: 3,
            subsample: 1.0,
            lambda: if kind == EstimatorKind::GradientBoosting {
                0.0
            } else {
                1.0
            },
            gamma: 0.0,
            min_child_weight: 1.0,
            second_order: kind != EstimatorKind::GradientBoosting,
            histogram: kind == EstimatorKind::Lgbm,
            max_bins: 16,
            max_leaves: if kind == EstimatorKind::Lgbm { 15 } else { 0 },
            seed: 1,
            kind,
        }
    }

    fn friedman_like(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    ((i * 7) % 100) as f64 / 100.0,
                    ((i * 13) % 100) as f64 / 100.0,
                    ((i * 29) % 100) as f64 / 100.0,
                ]
            })
            .collect();
        let y = rows
            .iter()
            .map(|r| 10.0 * (std::f64::consts::PI * r[0] * r[1]).sin() + 5.0 * r[2])
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn xor(n: usize) -> (Matrix, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                vec![
                    f64::from(i % 2 == 0) + (i % 9) as f64 * 0.01,
                    f64::from((i / 2) % 2 == 0) + (i % 11) as f64 * 0.01,
                ]
            })
            .collect();
        let y = rows
            .iter()
            .map(|r| f64::from((r[0] > 0.5) != (r[1] > 0.5)))
            .collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn all_three_families_fit_nonlinear_regression() {
        let (x, y) = friedman_like(300);
        for kind in [
            EstimatorKind::GradientBoosting,
            EstimatorKind::XgBoost,
            EstimatorKind::Lgbm,
        ] {
            let mut m = GradientBoosting::new(cfg(kind));
            m.fit(&x, &y, Task::Regression).unwrap();
            let r2 = crate::metrics::r2(&y, &m.predict(&x).unwrap());
            assert!(r2 > 0.9, "{kind}: r2 = {r2}");
        }
    }

    #[test]
    fn all_three_families_fit_xor_classification() {
        let (x, y) = xor(200);
        for kind in [
            EstimatorKind::GradientBoosting,
            EstimatorKind::XgBoost,
            EstimatorKind::Lgbm,
        ] {
            let mut m = GradientBoosting::new(cfg(kind));
            m.fit(&x, &y, Task::Binary).unwrap();
            let acc = crate::metrics::accuracy(&y, &m.predict(&x).unwrap());
            assert!(acc > 0.97, "{kind}: acc = {acc}");
        }
    }

    #[test]
    fn multiclass_softmax_boosting() {
        let rows: Vec<Vec<f64>> = (0..240).map(|i| vec![(i % 30) as f64]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] < 10.0 {
                    0.0
                } else if r[0] < 20.0 {
                    1.0
                } else {
                    2.0
                }
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = GradientBoosting::new(cfg(EstimatorKind::XgBoost));
        m.fit(&x, &y, Task::MultiClass(3)).unwrap();
        assert!(crate::metrics::accuracy(&y, &m.predict(&x).unwrap()) > 0.97);
        // One tree per class per round.
        assert_eq!(m.num_trees(), 30 * 3);
        let proba = m.predict_proba(&x).unwrap();
        for r in 0..proba.rows() {
            assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn lambda_regularizes_leaf_weights() {
        let (x, y) = friedman_like(150);
        let weak = {
            let mut c = cfg(EstimatorKind::XgBoost);
            c.n_estimators = 1;
            c.learning_rate = 1.0;
            let mut m = GradientBoosting::new(c);
            m.fit(&x, &y, Task::Regression).unwrap();
            m
        };
        let strong = {
            let mut c = cfg(EstimatorKind::XgBoost);
            c.n_estimators = 1;
            c.learning_rate = 1.0;
            c.lambda = 1000.0;
            let mut m = GradientBoosting::new(c);
            m.fit(&x, &y, Task::Regression).unwrap();
            m
        };
        // Heavy lambda shrinks predictions toward the base score.
        let base = y.iter().sum::<f64>() / y.len() as f64;
        let dev = |m: &GradientBoosting| {
            m.predict(&x)
                .unwrap()
                .iter()
                .map(|p| (p - base).abs())
                .sum::<f64>()
        };
        assert!(dev(&strong) < dev(&weak) * 0.5);
    }

    #[test]
    fn gamma_prunes_splits() {
        let (x, y) = xor(100);
        let free = {
            let mut c = cfg(EstimatorKind::XgBoost);
            c.n_estimators = 5;
            let mut m = GradientBoosting::new(c);
            m.fit(&x, &y, Task::Binary).unwrap();
            m.mean_leaves()
        };
        let pruned = {
            let mut c = cfg(EstimatorKind::XgBoost);
            c.n_estimators = 5;
            c.gamma = 1e6;
            let mut m = GradientBoosting::new(c);
            m.fit(&x, &y, Task::Binary).unwrap();
            m.mean_leaves()
        };
        assert!(pruned < free, "gamma={pruned} vs free={free}");
        assert!((pruned - 1.0).abs() < 1e-9, "huge gamma keeps only roots");
    }

    #[test]
    fn max_leaves_caps_lgbm_trees() {
        let (x, y) = friedman_like(300);
        let mut c = cfg(EstimatorKind::Lgbm);
        c.max_leaves = 4;
        c.max_depth = 32;
        let mut m = GradientBoosting::new(c);
        m.fit(&x, &y, Task::Regression).unwrap();
        for round in &m.trees {
            for t in round {
                assert!(t.num_leaves() <= 4);
            }
        }
    }

    #[test]
    fn subsample_is_deterministic_per_seed() {
        let (x, y) = xor(150);
        let mut c = cfg(EstimatorKind::XgBoost);
        c.subsample = 0.7;
        let mut a = GradientBoosting::new(c.clone());
        let mut b = GradientBoosting::new(c);
        a.fit(&x, &y, Task::Binary).unwrap();
        b.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn in_bag_assignments_match_tree_routing() {
        let (x, y) = friedman_like(120);
        let c = cfg(EstimatorKind::Lgbm);
        let bm = binned_for(&x, c.max_bins);
        // First-round gradients at raw score 0: g = −y, h = 1.
        let g: Vec<f64> = y.iter().map(|v| -v).collect();
        let h = vec![1.0; y.len()];
        let rows: Vec<usize> = (0..x.rows()).collect();
        let (tree, assignments) = build_hist(&bm, &g, &h, rows, &c);
        let mut covered = vec![false; x.rows()];
        for (node, leaf_rows) in &assignments {
            let GNode::Leaf(value) = tree.nodes[*node] else {
                panic!("assignment points at a split node");
            };
            for &r in leaf_rows {
                assert!(!covered[r], "row {r} assigned twice");
                covered[r] = true;
                assert_eq!(
                    value.to_bits(),
                    tree.predict_row(x.row(r)).to_bits(),
                    "row {r}: assignment disagrees with tree routing"
                );
            }
        }
        assert!(covered.iter().all(|&c| c), "every in-bag row assigned");
    }

    #[test]
    fn quantile_bins_are_monotone_and_bounded() {
        let x = Matrix::from_rows(
            &(0..100)
                .map(|i| vec![(i as f64).powf(1.5)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let (binned, edges) = quantile_bins(&x, 8);
        assert!(edges[0].len() <= 8);
        // Bin index is monotone in the value.
        for w in binned[0].windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!((*binned[0].iter().max().unwrap() as usize) < edges[0].len());
    }

    #[test]
    fn histogram_and_exact_agree_roughly() {
        let (x, y) = friedman_like(200);
        let mut exact = GradientBoosting::new(cfg(EstimatorKind::XgBoost));
        exact.fit(&x, &y, Task::Regression).unwrap();
        let mut hist = GradientBoosting::new(cfg(EstimatorKind::Lgbm));
        hist.fit(&x, &y, Task::Regression).unwrap();
        let r2_exact = crate::metrics::r2(&y, &exact.predict(&x).unwrap());
        let r2_hist = crate::metrics::r2(&y, &hist.predict(&x).unwrap());
        assert!((r2_exact - r2_hist).abs() < 0.1, "{r2_exact} vs {r2_hist}");
    }
}
