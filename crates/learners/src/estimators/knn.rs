//! k-nearest-neighbours classification and regression (brute force).

use super::{argmax_rows, check_fit_inputs, Estimator, EstimatorKind};
use crate::matrix::Matrix;
use crate::{LearnError, Result};
use kgpip_tabular::Task;

/// Upper bound on stored training rows; larger training sets are uniformly
/// subsampled so prediction stays tractable inside HPO loops.
const MAX_STORED_ROWS: usize = 4096;

/// Brute-force k-NN with optional inverse-distance weighting.
#[derive(Debug)]
pub struct KNearestNeighbors {
    k: usize,
    distance_weighted: bool,
    train_x: Option<Matrix>,
    train_y: Vec<f64>,
    task: Option<Task>,
}

impl KNearestNeighbors {
    /// Creates a model with `k` neighbours; `distance_weighted` switches
    /// from uniform to 1/d voting.
    pub fn new(k: usize, distance_weighted: bool) -> Self {
        KNearestNeighbors {
            k: k.max(1),
            distance_weighted,
            train_x: None,
            train_y: Vec::new(),
            task: None,
        }
    }

    /// Indices and distances of the k nearest stored rows to `row`.
    fn neighbours(&self, row: &[f64]) -> Vec<(usize, f64)> {
        let x = self.train_x.as_ref().expect("checked by callers");
        let mut dists: Vec<(usize, f64)> = (0..x.rows())
            .map(|r| {
                let d = x
                    .row(r)
                    .iter()
                    .zip(row)
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>();
                (r, d)
            })
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.1.partial_cmp(&b.1).unwrap());
        dists.truncate(k);
        dists
    }
}

impl Estimator for KNearestNeighbors {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("knn", x, y)?;
        if x.rows() > MAX_STORED_ROWS {
            // Deterministic uniform subsample by stride.
            let stride = x.rows().div_ceil(MAX_STORED_ROWS);
            let rows: Vec<usize> = (0..x.rows()).step_by(stride).collect();
            self.train_x = Some(x.take_rows(&rows));
            self.train_y = rows.iter().map(|&r| y[r]).collect();
        } else {
            self.train_x = Some(x.clone());
            self.train_y = y.to_vec();
        }
        self.task = Some(task);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let task = self.task.ok_or(LearnError::NotFitted("knn"))?;
        if task.is_classification() {
            return Ok(argmax_rows(&self.predict_proba(x)?));
        }
        Ok((0..x.rows())
            .map(|r| {
                let nb = self.neighbours(x.row(r));
                if self.distance_weighted {
                    let mut num = 0.0;
                    let mut den = 0.0;
                    for (i, d) in nb {
                        let w = 1.0 / (d.sqrt() + 1e-9);
                        num += w * self.train_y[i];
                        den += w;
                    }
                    num / den
                } else {
                    nb.iter().map(|(i, _)| self.train_y[*i]).sum::<f64>() / nb.len() as f64
                }
            })
            .collect())
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let task = self.task.ok_or(LearnError::NotFitted("knn"))?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask("knn (regression proba)"));
        }
        let k = task.num_classes().max(2);
        let mut out = Matrix::zeros(x.rows(), k);
        for r in 0..x.rows() {
            let nb = self.neighbours(x.row(r));
            let mut total = 0.0;
            for (i, d) in &nb {
                let w = if self.distance_weighted {
                    1.0 / (d.sqrt() + 1e-9)
                } else {
                    1.0
                };
                let c = self.train_y[*i] as usize;
                if c < k {
                    out.set(r, c, out.get(r, c) + w);
                    total += w;
                }
            }
            if total > 0.0 {
                for c in 0..k {
                    out.set(r, c, out.get(r, c) / total);
                }
            }
        }
        Ok(out)
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Knn
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_memorizes_with_k1() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![10.0], vec![11.0]]).unwrap();
        let y = vec![0.0, 0.0, 1.0, 1.0];
        let mut m = KNearestNeighbors::new(1, false);
        m.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(m.predict(&x).unwrap(), y);
        let test = Matrix::from_rows(&[vec![0.4], vec![10.6]]).unwrap();
        assert_eq!(m.predict(&test).unwrap(), vec![0.0, 1.0]);
    }

    #[test]
    fn regression_averages_neighbours() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![2.0]]).unwrap();
        let y = vec![0.0, 10.0, 20.0];
        let mut m = KNearestNeighbors::new(2, false);
        m.fit(&x, &y, Task::Regression).unwrap();
        let p = m
            .predict(&Matrix::from_rows(&[vec![0.4]]).unwrap())
            .unwrap();
        // Neighbours are x=0 and x=1 -> mean 5.
        assert!((p[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn distance_weighting_pulls_toward_closer_point() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 10.0];
        let mut m = KNearestNeighbors::new(2, true);
        m.fit(&x, &y, Task::Regression).unwrap();
        let p = m
            .predict(&Matrix::from_rows(&[vec![0.1]]).unwrap())
            .unwrap();
        assert!(p[0] < 5.0, "weighted mean should lean to the nearer label");
    }

    #[test]
    fn proba_rows_sum_to_one() {
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0], vec![5.0]]).unwrap();
        let y = vec![0.0, 1.0, 2.0];
        let mut m = KNearestNeighbors::new(3, false);
        m.fit(&x, &y, Task::MultiClass(3)).unwrap();
        let proba = m.predict_proba(&x).unwrap();
        for r in 0..proba.rows() {
            assert!((proba.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn large_training_set_is_subsampled() {
        let n = MAX_STORED_ROWS * 2;
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        let mut m = KNearestNeighbors::new(3, false);
        m.fit(&Matrix::from_rows(&rows).unwrap(), &y, Task::Binary)
            .unwrap();
        assert!(m.train_x.as_ref().unwrap().rows() <= MAX_STORED_ROWS);
        // Still predicts without panicking.
        m.predict(&Matrix::from_rows(&[vec![5.0]]).unwrap())
            .unwrap();
    }

    #[test]
    fn not_fitted_errors() {
        let m = KNearestNeighbors::new(3, false);
        assert!(matches!(
            m.predict(&Matrix::zeros(1, 1)),
            Err(LearnError::NotFitted(_))
        ));
    }
}
