//! Linear models: ridge / OLS, lasso, logistic regression, linear SVM.

use super::{argmax_rows, check_fit_inputs, softmax_rows, Estimator, EstimatorKind};
use crate::matrix::{solve_spd, Matrix};
use crate::{LearnError, Result};
use kgpip_tabular::Task;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Appends a constant-1 intercept column.
fn with_intercept(x: &Matrix) -> Matrix {
    let ones = Matrix::from_vec(vec![1.0; x.rows()], x.rows(), 1).expect("shape");
    x.hcat(&ones).expect("row counts match")
}

// ---------------------------------------------------------------------------
// Ridge / OLS
// ---------------------------------------------------------------------------

/// Ridge regression solved in closed form via the normal equations; with
/// `alpha ≈ 0` this is ordinary least squares.
#[derive(Debug)]
pub struct RidgeRegression {
    alpha: f64,
    weights: Option<Vec<f64>>,
}

impl RidgeRegression {
    /// Creates a ridge model with L2 strength `alpha`.
    pub fn new(alpha: f64) -> Self {
        RidgeRegression {
            alpha,
            weights: None,
        }
    }

    /// The fitted coefficient vector (last entry = intercept).
    pub fn coefficients(&self) -> Option<&[f64]> {
        self.weights.as_deref()
    }
}

impl Estimator for RidgeRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("ridge", x, y)?;
        if task.is_classification() {
            return Err(LearnError::UnsupportedTask("ridge"));
        }
        let xi = with_intercept(x);
        let gram = xi.gram();
        let xty = xi.t_vec(y)?;
        self.weights = Some(solve_spd(&gram, &xty, self.alpha.max(1e-12))?);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self
            .weights
            .as_ref()
            .ok_or(LearnError::NotFitted("ridge"))?;
        with_intercept(x).matvec(w)
    }

    fn predict_proba(&self, _x: &Matrix) -> Result<Matrix> {
        Err(LearnError::UnsupportedTask("ridge"))
    }

    fn kind(&self) -> EstimatorKind {
        if self.alpha <= 1e-7 {
            EstimatorKind::LinearRegression
        } else {
            EstimatorKind::Ridge
        }
    }
}

// ---------------------------------------------------------------------------
// Lasso
// ---------------------------------------------------------------------------

/// Lasso regression via cyclic coordinate descent with soft-thresholding.
#[derive(Debug)]
pub struct LassoRegression {
    alpha: f64,
    max_iter: usize,
    weights: Option<Vec<f64>>,
    intercept: f64,
}

impl LassoRegression {
    /// Creates a lasso model with L1 strength `alpha`.
    pub fn new(alpha: f64, max_iter: usize) -> Self {
        LassoRegression {
            alpha,
            max_iter,
            weights: None,
            intercept: 0.0,
        }
    }

    /// Number of exactly-zero coefficients in the fitted model.
    pub fn num_zero_coefficients(&self) -> usize {
        self.weights
            .as_ref()
            .map(|w| w.iter().filter(|v| **v == 0.0).count())
            .unwrap_or(0)
    }
}

impl Estimator for LassoRegression {
    #[allow(clippy::needless_range_loop)] // residual/x indexed in lockstep
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("lasso", x, y)?;
        if task.is_classification() {
            return Err(LearnError::UnsupportedTask("lasso"));
        }
        let n = x.rows();
        let d = x.cols();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        // Center target; feature means for intercept recovery.
        let x_mean: Vec<f64> = (0..d)
            .map(|c| x.col(c).iter().sum::<f64>() / n as f64)
            .collect();
        let mut w = vec![0.0f64; d];
        let mut residual: Vec<f64> = y.iter().map(|v| v - y_mean).collect();
        // Per-feature squared norms of centered columns.
        let sq_norm: Vec<f64> = (0..d)
            .map(|c| {
                x.col(c)
                    .iter()
                    .map(|v| (v - x_mean[c]).powi(2))
                    .sum::<f64>()
            })
            .collect();
        let thresh = self.alpha * n as f64;
        for _ in 0..self.max_iter {
            let mut max_delta = 0.0f64;
            for j in 0..d {
                if sq_norm[j] < 1e-12 {
                    continue;
                }
                // rho = x_jᵀ(residual + w_j·x_j), with centered x_j.
                let mut rho = 0.0;
                for r in 0..n {
                    let xc = x.get(r, j) - x_mean[j];
                    rho += xc * (residual[r] + w[j] * xc);
                }
                let new_w = soft_threshold(rho, thresh) / sq_norm[j];
                let delta = new_w - w[j];
                if delta != 0.0 {
                    for r in 0..n {
                        residual[r] -= delta * (x.get(r, j) - x_mean[j]);
                    }
                    w[j] = new_w;
                    max_delta = max_delta.max(delta.abs());
                }
            }
            if max_delta < 1e-8 {
                break;
            }
        }
        self.intercept = y_mean - w.iter().zip(&x_mean).map(|(a, b)| a * b).sum::<f64>();
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let w = self
            .weights
            .as_ref()
            .ok_or(LearnError::NotFitted("lasso"))?;
        Ok(x.matvec(w)?
            .into_iter()
            .map(|v| v + self.intercept)
            .collect())
    }

    fn predict_proba(&self, _x: &Matrix) -> Result<Matrix> {
        Err(LearnError::UnsupportedTask("lasso"))
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::Lasso
    }
}

fn soft_threshold(v: f64, t: f64) -> f64 {
    if v > t {
        v - t
    } else if v < -t {
        v + t
    } else {
        0.0
    }
}

// ---------------------------------------------------------------------------
// Logistic regression
// ---------------------------------------------------------------------------

/// L2-regularized logistic regression trained by IRLS (Newton's method),
/// which converges in a handful of iterations regardless of feature scale.
/// Binary tasks fit a single sigmoid head; multi-class fits one-vs-rest
/// heads whose sigmoid outputs are normalized into probabilities.
#[derive(Debug)]
pub struct LogisticRegression {
    c: f64,
    max_iter: usize,
    /// Row-major (heads × (d+1)) weights including intercept; 1 head for
    /// binary, k heads (one-vs-rest) for multi-class.
    weights: Option<Vec<f64>>,
    classes: usize,
    dims: usize,
}

impl LogisticRegression {
    /// Creates a model with inverse regularization strength `c`.
    pub fn new(c: f64, max_iter: usize) -> Self {
        LogisticRegression {
            c,
            max_iter,
            weights: None,
            classes: 0,
            dims: 0,
        }
    }

    fn logits(&self, x: &Matrix) -> Result<Matrix> {
        let w = self
            .weights
            .as_ref()
            .ok_or(LearnError::NotFitted("logistic_regression"))?;
        let xi = with_intercept(x);
        let k = if self.classes == 2 { 1 } else { self.classes };
        let mut out = Matrix::zeros(x.rows(), k);
        for r in 0..x.rows() {
            let row = xi.row(r);
            for c in 0..k {
                let mut acc = 0.0;
                for (j, v) in row.iter().enumerate() {
                    acc += v * w[c * (self.dims + 1) + j];
                }
                out.set(r, c, acc);
            }
        }
        Ok(out)
    }
}

/// One binary IRLS (Newton) fit: returns a (d+1)-vector of weights for
/// targets in {0, 1}. `reg` is the L2 strength on the mean-loss scale.
#[allow(clippy::needless_range_loop)] // rows/targets indexed in lockstep
fn irls_binary(xi: &Matrix, targets: &[f64], reg: f64, max_iter: usize) -> Result<Vec<f64>> {
    let n = xi.rows();
    let dp1 = xi.cols();
    let mut w = vec![0.0f64; dp1];
    for _ in 0..max_iter.min(50) {
        // Gradient Xᵀ(p − y)/n + reg·w and Hessian XᵀWX/n + reg·I.
        let mut grad = vec![0.0f64; dp1];
        let mut hess = Matrix::zeros(dp1, dp1);
        for r in 0..n {
            let row = xi.row(r);
            let z: f64 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
            let p = 1.0 / (1.0 + (-z).exp());
            let err = p - targets[r];
            let wt = (p * (1.0 - p)).max(1e-6);
            for (j, vj) in row.iter().enumerate() {
                grad[j] += err * vj;
                for (k2, vk) in row.iter().enumerate().skip(j) {
                    let h = hess.get(j, k2) + wt * vj * vk;
                    hess.set(j, k2, h);
                }
            }
        }
        for j in 0..dp1 {
            grad[j] = grad[j] / n as f64 + reg * w[j];
            for k2 in 0..j {
                let v = hess.get(k2, j);
                hess.set(j, k2, v);
            }
        }
        for j in 0..dp1 {
            for k2 in 0..dp1 {
                let v = hess.get(j, k2) / n as f64;
                hess.set(j, k2, v);
            }
        }
        let step = solve_spd(&hess, &grad, reg.max(1e-8))?;
        let step_norm: f64 = step.iter().map(|s| s * s).sum::<f64>().sqrt();
        for (wv, s) in w.iter_mut().zip(&step) {
            *wv -= s;
        }
        if step_norm < 1e-8 {
            break;
        }
    }
    Ok(w)
}

impl Estimator for LogisticRegression {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("logistic_regression", x, y)?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask("logistic_regression"));
        }
        let k = task.num_classes().max(2);
        self.classes = k;
        self.dims = x.cols();
        let xi = with_intercept(x);
        let n = x.rows();
        let dp1 = self.dims + 1;
        let heads = if k == 2 { 1 } else { k };
        let reg = 1.0 / (self.c * n as f64);
        let mut w = Vec::with_capacity(heads * dp1);
        for head in 0..heads {
            let targets: Vec<f64> = if heads == 1 {
                y.to_vec()
            } else {
                y.iter().map(|&t| f64::from(t as usize == head)).collect()
            };
            w.extend(irls_binary(&xi, &targets, reg, self.max_iter)?);
        }
        self.weights = Some(w);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(argmax_rows(&self.predict_proba(x)?))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let logits = self.logits(x)?;
        if self.classes == 2 {
            let mut out = Matrix::zeros(x.rows(), 2);
            for r in 0..x.rows() {
                let p = 1.0 / (1.0 + (-logits.get(r, 0)).exp());
                out.set(r, 0, 1.0 - p);
                out.set(r, 1, p);
            }
            Ok(out)
        } else {
            // One-vs-rest sigmoid heads, normalized to a distribution.
            let mut out = Matrix::zeros(x.rows(), self.classes);
            for r in 0..x.rows() {
                let mut sum = 0.0;
                for c in 0..self.classes {
                    let p = 1.0 / (1.0 + (-logits.get(r, c)).exp());
                    out.set(r, c, p);
                    sum += p;
                }
                if sum > 0.0 {
                    for c in 0..self.classes {
                        out.set(r, c, out.get(r, c) / sum);
                    }
                }
            }
            Ok(out)
        }
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::LogisticRegression
    }
}

// ---------------------------------------------------------------------------
// Linear SVM
// ---------------------------------------------------------------------------

/// Linear SVM trained with Pegasos-style SGD on the hinge loss; multi-class
/// via one-vs-rest. Probability estimates use a logistic squash of the
/// margin (Platt-style with fixed scale).
#[derive(Debug)]
pub struct LinearSvm {
    c: f64,
    max_iter: usize,
    seed: u64,
    /// One weight vector (d+1, intercept last) per one-vs-rest head.
    heads: Vec<Vec<f64>>,
    classes: usize,
}

impl LinearSvm {
    /// Creates an SVM with inverse regularization `c`.
    pub fn new(c: f64, max_iter: usize, seed: u64) -> Self {
        LinearSvm {
            c,
            max_iter,
            seed,
            heads: Vec::new(),
            classes: 0,
        }
    }

    fn margins(&self, x: &Matrix) -> Result<Matrix> {
        if self.heads.is_empty() {
            return Err(LearnError::NotFitted("linear_svm"));
        }
        let xi = with_intercept(x);
        let mut out = Matrix::zeros(x.rows(), self.heads.len());
        for r in 0..x.rows() {
            let row = xi.row(r);
            for (h, w) in self.heads.iter().enumerate() {
                let m: f64 = row.iter().zip(w).map(|(a, b)| a * b).sum();
                out.set(r, h, m);
            }
        }
        Ok(out)
    }
}

impl Estimator for LinearSvm {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("linear_svm", x, y)?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask("linear_svm"));
        }
        let k = task.num_classes().max(2);
        self.classes = k;
        let xi = with_intercept(x);
        let n = x.rows();
        let dp1 = xi.cols();
        let lambda = 1.0 / (self.c * n as f64);
        let heads = if k == 2 { 1 } else { k };
        let mut rng = StdRng::seed_from_u64(self.seed);
        let epochs = self.max_iter.div_ceil(n).max(10);
        self.heads = (0..heads)
            .map(|h| {
                let mut w = vec![0.0f64; dp1];
                // Averaged Pegasos: the returned weights are the running
                // average over the second half of training, which removes
                // the last-iterate noise of plain Pegasos.
                let mut w_avg = vec![0.0f64; dp1];
                let mut avg_count = 0usize;
                let avg_start = epochs / 2;
                let mut order: Vec<usize> = (0..n).collect();
                let mut t = 1usize;
                for epoch in 0..epochs {
                    order.shuffle(&mut rng);
                    for &r in &order {
                        let target = if heads == 1 {
                            if y[r] > 0.5 {
                                1.0
                            } else {
                                -1.0
                            }
                        } else if (y[r] as usize) == h {
                            1.0
                        } else {
                            -1.0
                        };
                        let eta = 1.0 / (lambda * t as f64);
                        let row = xi.row(r);
                        let margin: f64 = row.iter().zip(&w).map(|(a, b)| a * b).sum();
                        // L2 shrink then hinge subgradient step.
                        let shrink = 1.0 - eta * lambda;
                        for wv in w.iter_mut() {
                            *wv *= shrink.max(0.0);
                        }
                        if target * margin < 1.0 {
                            for (wv, v) in w.iter_mut().zip(row) {
                                *wv += eta * target * v;
                            }
                        }
                        t += 1;
                        if epoch >= avg_start {
                            for (a, wv) in w_avg.iter_mut().zip(&w) {
                                *a += wv;
                            }
                            avg_count += 1;
                        }
                    }
                }
                if avg_count > 0 {
                    for a in w_avg.iter_mut() {
                        *a /= avg_count as f64;
                    }
                    w_avg
                } else {
                    w
                }
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let margins = self.margins(x)?;
        if self.classes == 2 {
            Ok((0..x.rows())
                .map(|r| f64::from(margins.get(r, 0) > 0.0))
                .collect())
        } else {
            Ok(argmax_rows(&margins))
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let margins = self.margins(x)?;
        if self.classes == 2 {
            let mut out = Matrix::zeros(x.rows(), 2);
            for r in 0..x.rows() {
                let p = 1.0 / (1.0 + (-2.0 * margins.get(r, 0)).exp());
                out.set(r, 0, 1.0 - p);
                out.set(r, 1, p);
            }
            Ok(out)
        } else {
            let mut out = margins;
            softmax_rows(&mut out);
            Ok(out)
        }
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::LinearSvm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_data(n: usize) -> (Matrix, Vec<f64>) {
        // y = 2x0 - 3x1 + 1
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 13) as f64 * 0.5, (i % 7) as f64 * 0.3])
            .collect();
        let y = rows.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 1.0).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn separable_binary(n: usize) -> (Matrix, Vec<f64>) {
        // Class 1 iff x0 + x1 > 6.
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![(i % 10) as f64, ((i * 3) % 10) as f64])
            .collect();
        let y = rows.iter().map(|r| f64::from(r[0] + r[1] > 6.0)).collect();
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn ols_recovers_exact_coefficients() {
        let (x, y) = linear_data(60);
        let mut m = RidgeRegression::new(1e-10);
        m.fit(&x, &y, Task::Regression).unwrap();
        let w = m.coefficients().unwrap();
        assert!((w[0] - 2.0).abs() < 1e-5, "slope x0: {w:?}");
        assert!((w[1] + 3.0).abs() < 1e-5, "slope x1: {w:?}");
        assert!((w[2] - 1.0).abs() < 1e-5, "intercept: {w:?}");
        let pred = m.predict(&x).unwrap();
        assert!(crate::metrics::r2(&y, &pred) > 0.999999);
    }

    #[test]
    fn ridge_shrinks_coefficients() {
        let (x, y) = linear_data(60);
        let mut weak = RidgeRegression::new(1e-10);
        let mut strong = RidgeRegression::new(1e4);
        weak.fit(&x, &y, Task::Regression).unwrap();
        strong.fit(&x, &y, Task::Regression).unwrap();
        let norm = |m: &RidgeRegression| {
            m.coefficients().unwrap()[..2]
                .iter()
                .map(|v| v * v)
                .sum::<f64>()
        };
        assert!(norm(&strong) < norm(&weak));
    }

    #[test]
    fn ridge_rejects_classification() {
        let (x, y) = linear_data(10);
        let mut m = RidgeRegression::new(1.0);
        assert!(matches!(
            m.fit(&x, &y, Task::Binary),
            Err(LearnError::UnsupportedTask(_))
        ));
    }

    #[test]
    fn lasso_zeroes_irrelevant_features() {
        // Feature 1 is pure noise; strong alpha should zero it.
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|i| vec![i as f64 * 0.1, ((i * 7919) % 13) as f64 * 0.01])
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 5.0 * r[0]).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = LassoRegression::new(0.5, 500);
        m.fit(&x, &y, Task::Regression).unwrap();
        assert!(m.num_zero_coefficients() >= 1);
        let pred = m.predict(&x).unwrap();
        assert!(crate::metrics::r2(&y, &pred) > 0.95);
    }

    #[test]
    fn logistic_separates_linear_data() {
        let (x, y) = separable_binary(120);
        let mut m = LogisticRegression::new(10.0, 300);
        m.fit(&x, &y, Task::Binary).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(crate::metrics::accuracy(&y, &pred) > 0.95);
        let proba = m.predict_proba(&x).unwrap();
        for r in 0..x.rows() {
            let s = proba.row(r).iter().sum::<f64>();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn logistic_multiclass() {
        // Three bands by x0.
        let rows: Vec<Vec<f64>> = (0..150).map(|i| vec![(i % 30) as f64, 1.0]).collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                if r[0] < 10.0 {
                    0.0
                } else if r[0] < 20.0 {
                    1.0
                } else {
                    2.0
                }
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = LogisticRegression::new(50.0, 500);
        m.fit(&x, &y, Task::MultiClass(3)).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(crate::metrics::accuracy(&y, &pred) > 0.9);
    }

    #[test]
    fn svm_separates_and_is_seed_deterministic() {
        let (x, y) = separable_binary(120);
        let mut a = LinearSvm::new(20.0, 2000, 42);
        let mut b = LinearSvm::new(20.0, 2000, 42);
        a.fit(&x, &y, Task::Binary).unwrap();
        b.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
        assert!(crate::metrics::accuracy(&y, &a.predict(&x).unwrap()) > 0.9);
    }

    #[test]
    fn svm_multiclass_ovr() {
        // Three well-separated blobs; each class is linearly separable from
        // the rest, which is the regime one-vs-rest hinge handles.
        let centers = [(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)];
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..150 {
            let c = i % 3;
            let (cx, cy) = centers[c];
            rows.push(vec![
                cx + ((i * 7) % 10) as f64 * 0.1,
                cy + ((i * 13) % 10) as f64 * 0.1,
            ]);
            y.push(c as f64);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = LinearSvm::new(20.0, 3000, 1);
        m.fit(&x, &y, Task::MultiClass(3)).unwrap();
        let pred = m.predict(&x).unwrap();
        assert!(crate::metrics::accuracy(&y, &pred) > 0.95);
    }

    #[test]
    fn predict_before_fit_errors() {
        let x = Matrix::zeros(1, 2);
        assert!(matches!(
            RidgeRegression::new(1.0).predict(&x),
            Err(LearnError::NotFitted(_))
        ));
        assert!(matches!(
            LogisticRegression::new(1.0, 10).predict(&x),
            Err(LearnError::NotFitted(_))
        ));
        assert!(matches!(
            LinearSvm::new(1.0, 10, 0).predict(&x),
            Err(LearnError::NotFitted(_))
        ));
    }
}
