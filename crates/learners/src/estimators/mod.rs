//! Estimators (learners) — the "learner" half of KGpip's pipeline
//! vocabulary.
//!
//! The kinds below cover the learner families visible in the paper's mined
//! pipelines (Figures 8–9): `xgboost` and `gradient_boost` dominate, with a
//! long tail of random forests, extra trees, decision trees, logistic
//! regression, linear models, SVMs, k-NN and naive Bayes. The XGBoost and
//! LightGBM families are reproduced as distinct boosting configurations —
//! second-order regularized exact boosting and histogram-binned leaf-wise
//! boosting respectively — because AutoML systems (and the paper's HPO
//! backends) treat them as different estimators with different cost
//! profiles.

pub mod gbt;
pub mod knn;
pub mod linear;
pub mod naive_bayes;
pub mod tree;

use crate::matrix::Matrix;
use crate::{LearnError, Result};
use kgpip_tabular::Task;
use std::collections::BTreeMap;

/// Flat numeric hyperparameter map. All hyperparameters are encoded as
/// `f64` (integers rounded, booleans as 0/1) so HPO engines can search a
/// uniform space.
pub type Params = BTreeMap<String, f64>;

/// A supervised learner with the uniform fit/predict contract.
pub trait Estimator: Send + Sync {
    /// Fits to a NaN-free matrix and target vector. For classification the
    /// targets are class indices `0..k`.
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()>;
    /// Predicts class indices (classification) or values (regression).
    fn predict(&self, x: &Matrix) -> Result<Vec<f64>>;
    /// Predicts class probabilities (n × k). Errors for regression tasks.
    fn predict_proba(&self, x: &Matrix) -> Result<Matrix>;
    /// The estimator's kind.
    fn kind(&self) -> EstimatorKind;
}

/// Identifier of a learner family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EstimatorKind {
    /// L2-regularized logistic regression (binary and softmax multi-class).
    LogisticRegression,
    /// Linear SVM trained with Pegasos-style SGD on the hinge loss.
    LinearSvm,
    /// Ordinary least squares (regression only).
    LinearRegression,
    /// Ridge regression (regression only).
    Ridge,
    /// Lasso regression via coordinate descent (regression only).
    Lasso,
    /// k-nearest neighbours.
    Knn,
    /// Gaussian naive Bayes (classification only).
    GaussianNb,
    /// Single CART decision tree.
    DecisionTree,
    /// Bootstrap-aggregated random forest.
    RandomForest,
    /// Extremely randomized trees.
    ExtraTrees,
    /// First-order gradient boosting (sklearn `GradientBoosting*` style).
    GradientBoosting,
    /// Second-order regularized boosting with exact splits (XGBoost style).
    XgBoost,
    /// Second-order histogram-binned leaf-wise boosting (LightGBM style).
    Lgbm,
}

impl EstimatorKind {
    /// All estimator kinds in a stable order.
    pub const ALL: [EstimatorKind; 13] = [
        EstimatorKind::LogisticRegression,
        EstimatorKind::LinearSvm,
        EstimatorKind::LinearRegression,
        EstimatorKind::Ridge,
        EstimatorKind::Lasso,
        EstimatorKind::Knn,
        EstimatorKind::GaussianNb,
        EstimatorKind::DecisionTree,
        EstimatorKind::RandomForest,
        EstimatorKind::ExtraTrees,
        EstimatorKind::GradientBoosting,
        EstimatorKind::XgBoost,
        EstimatorKind::Lgbm,
    ];

    /// Canonical snake_case name, matching the mined-pipeline vocabulary
    /// (the paper's figures label the boosting families `xgboost` and
    /// `gradient_boost`).
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::LogisticRegression => "logistic_regression",
            EstimatorKind::LinearSvm => "linear_svm",
            EstimatorKind::LinearRegression => "linear_regression",
            EstimatorKind::Ridge => "ridge",
            EstimatorKind::Lasso => "lasso",
            EstimatorKind::Knn => "knn",
            EstimatorKind::GaussianNb => "gaussian_nb",
            EstimatorKind::DecisionTree => "decision_tree",
            EstimatorKind::RandomForest => "random_forest",
            EstimatorKind::ExtraTrees => "extra_trees",
            EstimatorKind::GradientBoosting => "gradient_boost",
            EstimatorKind::XgBoost => "xgboost",
            EstimatorKind::Lgbm => "lgbm",
        }
    }

    /// Parses a canonical name.
    pub fn from_name(name: &str) -> Option<EstimatorKind> {
        EstimatorKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }

    /// Whether this estimator supports the given task.
    pub fn supports(&self, task: Task) -> bool {
        match self {
            EstimatorKind::LinearRegression | EstimatorKind::Ridge | EstimatorKind::Lasso => {
                !task.is_classification()
            }
            EstimatorKind::GaussianNb
            | EstimatorKind::LogisticRegression
            | EstimatorKind::LinearSvm => task.is_classification(),
            _ => true,
        }
    }

    /// Rough relative cost of one fit at default hyperparameters, used by
    /// cost-frugal HPO to order learners (1.0 = a single decision tree).
    pub fn relative_cost(&self) -> f64 {
        match self {
            EstimatorKind::GaussianNb => 0.1,
            EstimatorKind::LinearRegression | EstimatorKind::Ridge => 0.2,
            EstimatorKind::Lasso => 0.4,
            EstimatorKind::LogisticRegression | EstimatorKind::LinearSvm => 0.5,
            EstimatorKind::Knn => 0.6,
            EstimatorKind::DecisionTree => 1.0,
            EstimatorKind::Lgbm => 3.0,
            EstimatorKind::XgBoost => 5.0,
            EstimatorKind::GradientBoosting => 6.0,
            EstimatorKind::ExtraTrees => 8.0,
            EstimatorKind::RandomForest => 10.0,
        }
    }
}

impl std::fmt::Display for EstimatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Builds an estimator of the given kind from a flat parameter map.
/// Unknown keys are ignored; out-of-domain values error.
pub fn build_estimator(kind: EstimatorKind, params: &Params) -> Result<Box<dyn Estimator>> {
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    let get_pos = |key: &str, default: f64| -> Result<f64> {
        let v = get(key, default);
        if v <= 0.0 || !v.is_finite() {
            return Err(LearnError::InvalidParam(format!(
                "{}: `{key}` must be positive, got {v}",
                kind.name()
            )));
        }
        Ok(v)
    };
    Ok(match kind {
        EstimatorKind::LogisticRegression => Box::new(linear::LogisticRegression::new(
            get_pos("c", 1.0)?,
            get_pos("max_iter", 200.0)? as usize,
        )),
        EstimatorKind::LinearSvm => Box::new(linear::LinearSvm::new(
            get_pos("c", 1.0)?,
            get_pos("max_iter", 300.0)? as usize,
            get("seed", 0.0) as u64,
        )),
        EstimatorKind::LinearRegression => Box::new(linear::RidgeRegression::new(1e-8)),
        EstimatorKind::Ridge => Box::new(linear::RidgeRegression::new(get_pos("alpha", 1.0)?)),
        EstimatorKind::Lasso => Box::new(linear::LassoRegression::new(
            get_pos("alpha", 0.1)?,
            get_pos("max_iter", 300.0)? as usize,
        )),
        EstimatorKind::Knn => Box::new(knn::KNearestNeighbors::new(
            get_pos("n_neighbors", 5.0)? as usize,
            get("weights", 0.0) > 0.5,
        )),
        EstimatorKind::GaussianNb => Box::new(naive_bayes::GaussianNb::new(get_pos(
            "var_smoothing",
            1e-9,
        )?)),
        EstimatorKind::DecisionTree => Box::new(tree::DecisionTree::new(tree::TreeConfig {
            max_depth: get_pos("max_depth", 10.0)? as usize,
            min_samples_split: get_pos("min_samples_split", 2.0)? as usize,
            min_samples_leaf: get_pos("min_samples_leaf", 1.0)? as usize,
            max_features: get("max_features", 1.0).clamp(0.01, 1.0),
            random_thresholds: false,
            seed: get("seed", 0.0) as u64,
        })),
        EstimatorKind::RandomForest => Box::new(tree::Forest::new(
            get_pos("n_estimators", 50.0)? as usize,
            tree::TreeConfig {
                max_depth: get_pos("max_depth", 12.0)? as usize,
                min_samples_split: get_pos("min_samples_split", 2.0)? as usize,
                min_samples_leaf: get_pos("min_samples_leaf", 1.0)? as usize,
                max_features: get("max_features", 0.5).clamp(0.01, 1.0),
                random_thresholds: false,
                seed: get("seed", 0.0) as u64,
            },
            true,
            EstimatorKind::RandomForest,
        )),
        EstimatorKind::ExtraTrees => Box::new(tree::Forest::new(
            get_pos("n_estimators", 50.0)? as usize,
            tree::TreeConfig {
                max_depth: get_pos("max_depth", 12.0)? as usize,
                min_samples_split: get_pos("min_samples_split", 2.0)? as usize,
                min_samples_leaf: get_pos("min_samples_leaf", 1.0)? as usize,
                max_features: get("max_features", 0.5).clamp(0.01, 1.0),
                random_thresholds: true,
                seed: get("seed", 0.0) as u64,
            },
            false,
            EstimatorKind::ExtraTrees,
        )),
        EstimatorKind::GradientBoosting => Box::new(gbt::GradientBoosting::new(gbt::GbtConfig {
            n_estimators: get_pos("n_estimators", 60.0)? as usize,
            learning_rate: get_pos("learning_rate", 0.1)?,
            max_depth: get_pos("max_depth", 3.0)? as usize,
            subsample: get("subsample", 1.0).clamp(0.1, 1.0),
            lambda: 0.0,
            gamma: 0.0,
            min_child_weight: get_pos("min_child_weight", 1.0)?,
            second_order: false,
            histogram: get("exact", 0.0) < 0.5,
            max_bins: 256,
            max_leaves: 0,
            seed: get("seed", 0.0) as u64,
            kind: EstimatorKind::GradientBoosting,
        })),
        EstimatorKind::XgBoost => Box::new(gbt::GradientBoosting::new(gbt::GbtConfig {
            n_estimators: get_pos("n_estimators", 60.0)? as usize,
            learning_rate: get_pos("learning_rate", 0.1)?,
            max_depth: get_pos("max_depth", 6.0)? as usize,
            subsample: get("subsample", 1.0).clamp(0.1, 1.0),
            lambda: get("lambda", 1.0).max(0.0),
            gamma: get("gamma", 0.0).max(0.0),
            min_child_weight: get_pos("min_child_weight", 1.0)?,
            second_order: true,
            histogram: get("exact", 0.0) < 0.5,
            max_bins: 256,
            max_leaves: 0,
            seed: get("seed", 0.0) as u64,
            kind: EstimatorKind::XgBoost,
        })),
        EstimatorKind::Lgbm => Box::new(gbt::GradientBoosting::new(gbt::GbtConfig {
            n_estimators: get_pos("n_estimators", 60.0)? as usize,
            learning_rate: get_pos("learning_rate", 0.1)?,
            max_depth: get_pos("max_depth", 16.0)? as usize,
            subsample: get("subsample", 1.0).clamp(0.1, 1.0),
            lambda: get("lambda", 1.0).max(0.0),
            gamma: get("gamma", 0.0).max(0.0),
            min_child_weight: get_pos("min_child_weight", 1.0)?,
            second_order: true,
            histogram: get("exact", 0.0) < 0.5,
            max_bins: get_pos("max_bins", 32.0)? as usize,
            max_leaves: get_pos("max_leaves", 31.0)? as usize,
            seed: get("seed", 0.0) as u64,
            kind: EstimatorKind::Lgbm,
        })),
    })
}

/// Validates fit inputs shared by every estimator.
pub(crate) fn check_fit_inputs(name: &'static str, x: &Matrix, y: &[f64]) -> Result<()> {
    if x.rows() == 0 || x.cols() == 0 {
        return Err(LearnError::Shape(format!("{name}: empty training matrix")));
    }
    if x.rows() != y.len() {
        return Err(LearnError::Shape(format!(
            "{name}: {} rows vs {} targets",
            x.rows(),
            y.len()
        )));
    }
    if x.has_nan() {
        return Err(LearnError::Shape(format!(
            "{name}: training matrix contains NaN; impute first"
        )));
    }
    Ok(())
}

/// Row-wise softmax over a logits matrix, in place.
pub(crate) fn softmax_rows(logits: &mut Matrix) {
    for r in 0..logits.rows() {
        let row = logits.row_mut(r);
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
}

/// Argmax per row of a probability matrix → class indices.
pub(crate) fn argmax_rows(proba: &Matrix) -> Vec<f64> {
    (0..proba.rows())
        .map(|r| {
            let row = proba.row(r);
            row.iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i as f64)
                .unwrap_or(0.0)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_name_roundtrip() {
        for kind in EstimatorKind::ALL {
            assert_eq!(EstimatorKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(EstimatorKind::from_name("resnet"), None);
    }

    #[test]
    fn task_support_matrix() {
        assert!(!EstimatorKind::Ridge.supports(Task::Binary));
        assert!(EstimatorKind::Ridge.supports(Task::Regression));
        assert!(!EstimatorKind::GaussianNb.supports(Task::Regression));
        assert!(EstimatorKind::XgBoost.supports(Task::Regression));
        assert!(EstimatorKind::XgBoost.supports(Task::MultiClass(5)));
    }

    #[test]
    fn build_estimator_rejects_bad_params() {
        let mut p = Params::new();
        p.insert("c".into(), -1.0);
        assert!(build_estimator(EstimatorKind::LogisticRegression, &p).is_err());
        p.clear();
        p.insert("n_estimators".into(), 0.0);
        assert!(build_estimator(EstimatorKind::RandomForest, &p).is_err());
        assert!(build_estimator(EstimatorKind::Knn, &Params::new()).is_ok());
    }

    #[test]
    fn check_fit_inputs_catches_problems() {
        let x = Matrix::zeros(2, 2);
        assert!(check_fit_inputs("t", &x, &[1.0]).is_err());
        assert!(check_fit_inputs("t", &Matrix::zeros(0, 0), &[]).is_err());
        let mut nan = Matrix::zeros(1, 1);
        nan.set(0, 0, f64::NAN);
        assert!(check_fit_inputs("t", &nan, &[0.0]).is_err());
        assert!(check_fit_inputs("t", &x, &[0.0, 1.0]).is_ok());
    }

    #[test]
    fn softmax_and_argmax() {
        let mut m = Matrix::from_vec(vec![0.0, 100.0, 3.0, 1.0], 2, 2).unwrap();
        softmax_rows(&mut m);
        assert!(m.get(0, 1) > 0.999);
        assert!((m.row(0)[0] + m.row(0)[1] - 1.0).abs() < 1e-12);
        assert_eq!(argmax_rows(&m), vec![1.0, 0.0]);
    }

    #[test]
    fn relative_costs_are_ordered_sensibly() {
        assert!(
            EstimatorKind::GaussianNb.relative_cost() < EstimatorKind::RandomForest.relative_cost()
        );
        assert!(EstimatorKind::Lgbm.relative_cost() < EstimatorKind::XgBoost.relative_cost());
    }
}
