//! Gaussian naive Bayes classification.

use super::{argmax_rows, check_fit_inputs, Estimator, EstimatorKind};
use crate::matrix::Matrix;
use crate::{LearnError, Result};
use kgpip_tabular::Task;

/// Gaussian naive Bayes: per-class, per-feature normal likelihoods with
/// variance smoothing.
#[derive(Debug)]
pub struct GaussianNb {
    var_smoothing: f64,
    /// Per class: (log prior, per-feature mean, per-feature variance).
    classes: Vec<(f64, Vec<f64>, Vec<f64>)>,
}

impl GaussianNb {
    /// Creates a model; `var_smoothing` is added to every variance as a
    /// fraction of the largest feature variance (as in scikit-learn).
    pub fn new(var_smoothing: f64) -> Self {
        GaussianNb {
            var_smoothing,
            classes: Vec::new(),
        }
    }
}

impl Estimator for GaussianNb {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("gaussian_nb", x, y)?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask("gaussian_nb"));
        }
        let k = task.num_classes().max(2);
        let d = x.cols();
        let n = x.rows();
        // Global max variance for smoothing scale.
        let mut max_var = 0.0f64;
        for c in 0..d {
            let col = x.col(c);
            let mean = col.iter().sum::<f64>() / n as f64;
            let var = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
            max_var = max_var.max(var);
        }
        let eps = self.var_smoothing * max_var.max(1e-12);

        self.classes = (0..k)
            .map(|class| {
                let rows: Vec<usize> = (0..n).filter(|&r| y[r] as usize == class).collect();
                if rows.is_empty() {
                    // Unobserved class: flat prior-less fallback with global stats.
                    return (f64::NEG_INFINITY, vec![0.0; d], vec![eps.max(1e-9); d]);
                }
                let m = rows.len() as f64;
                let mut mean = vec![0.0f64; d];
                for &r in &rows {
                    for (j, v) in x.row(r).iter().enumerate() {
                        mean[j] += v;
                    }
                }
                for v in &mut mean {
                    *v /= m;
                }
                let mut var = vec![0.0f64; d];
                for &r in &rows {
                    for (j, v) in x.row(r).iter().enumerate() {
                        var[j] += (v - mean[j]).powi(2);
                    }
                }
                for v in &mut var {
                    *v = *v / m + eps;
                    if *v < 1e-12 {
                        *v = 1e-12;
                    }
                }
                ((m / n as f64).ln(), mean, var)
            })
            .collect();
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok(argmax_rows(&self.predict_proba(x)?))
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        if self.classes.is_empty() {
            return Err(LearnError::NotFitted("gaussian_nb"));
        }
        let k = self.classes.len();
        let mut out = Matrix::zeros(x.rows(), k);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mut log_post: Vec<f64> = self
                .classes
                .iter()
                .map(|(prior, mean, var)| {
                    if prior.is_infinite() {
                        return f64::NEG_INFINITY;
                    }
                    let mut lp = *prior;
                    for ((v, m), s2) in row.iter().zip(mean).zip(var) {
                        lp -= 0.5 * ((2.0 * std::f64::consts::PI * s2).ln() + (v - m).powi(2) / s2);
                    }
                    lp
                })
                .collect();
            let max = log_post.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let mut sum = 0.0;
            for lp in log_post.iter_mut() {
                *lp = (*lp - max).exp();
                sum += *lp;
            }
            for (c, lp) in log_post.iter().enumerate() {
                out.set(r, c, lp / sum);
            }
        }
        Ok(out)
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::GaussianNb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_gaussian_blobs() {
        // Class 0 around (0,0), class 1 around (5,5).
        let rows: Vec<Vec<f64>> = (0..100)
            .map(|i| {
                let base = if i < 50 { 0.0 } else { 5.0 };
                vec![
                    base + ((i * 37) % 10) as f64 * 0.1,
                    base + ((i * 53) % 10) as f64 * 0.1,
                ]
            })
            .collect();
        let y: Vec<f64> = (0..100).map(|i| f64::from(i >= 50)).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = GaussianNb::new(1e-9);
        m.fit(&x, &y, Task::Binary).unwrap();
        assert!(crate::metrics::accuracy(&y, &m.predict(&x).unwrap()) > 0.99);
    }

    #[test]
    fn priors_matter_for_ambiguous_points() {
        // 90/10 imbalance; a point equidistant from both means should go to
        // the majority class.
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            rows.push(vec![0.0 + (i % 3) as f64 * 0.01]);
            y.push(0.0);
        }
        for i in 0..10 {
            rows.push(vec![1.0 + (i % 3) as f64 * 0.01]);
            y.push(1.0);
        }
        let x = Matrix::from_rows(&rows).unwrap();
        let mut m = GaussianNb::new(1e-2);
        m.fit(&x, &y, Task::Binary).unwrap();
        let p = m
            .predict_proba(&Matrix::from_rows(&[vec![0.5]]).unwrap())
            .unwrap();
        assert!(p.get(0, 0) > p.get(0, 1), "prior favours majority class");
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let x = Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 0.1],
            vec![1.0, 0.9],
        ])
        .unwrap();
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut m = GaussianNb::new(1e-9);
        m.fit(&x, &y, Task::Binary).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!(crate::metrics::accuracy(&y, &m.predict(&x).unwrap()) > 0.99);
    }

    #[test]
    fn rejects_regression() {
        let mut m = GaussianNb::new(1e-9);
        assert!(matches!(
            m.fit(&Matrix::zeros(2, 1), &[0.0, 1.0], Task::Regression),
            Err(LearnError::UnsupportedTask(_))
        ));
    }

    #[test]
    fn unseen_class_gets_zero_probability() {
        // Task declares 3 classes but class 2 never appears.
        let x = Matrix::from_rows(&[vec![0.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 1.0];
        let mut m = GaussianNb::new(1e-9);
        m.fit(&x, &y, Task::MultiClass(3)).unwrap();
        let p = m.predict_proba(&x).unwrap();
        assert_eq!(p.get(0, 2), 0.0);
        assert!((p.row(0).iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }
}
