//! CART decision trees and tree ensembles (random forest, extra trees).

use super::{argmax_rows, check_fit_inputs, Estimator, EstimatorKind};
use crate::matrix::Matrix;
use crate::{LearnError, Result};
use kgpip_tabular::Task;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Hyperparameters shared by single trees and per-tree inside ensembles.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples each child must retain.
    pub min_samples_leaf: usize,
    /// Fraction of features considered per split (0, 1].
    pub max_features: f64,
    /// Extra-trees mode: draw one random threshold per candidate feature
    /// instead of scanning all cut points.
    pub random_thresholds: bool,
    /// RNG seed for feature subsampling / random thresholds.
    pub seed: u64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 10,
            min_samples_split: 2,
            min_samples_leaf: 1,
            max_features: 1.0,
            random_thresholds: false,
            seed: 0,
        }
    }
}

/// A node of a fitted tree, stored in a flat arena.
#[derive(Debug, Clone)]
enum Node {
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
    /// Class distribution (classification) or `[mean]` (regression).
    Leaf(Vec<f64>),
}

/// A fitted CART tree.
#[derive(Debug, Clone)]
struct FittedTree {
    nodes: Vec<Node>,
    outputs: usize,
}

impl FittedTree {
    fn predict_row(&self, row: &[f64]) -> &[f64] {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
                Node::Leaf(v) => return v,
            }
        }
    }

    fn depth_from(&self, at: usize) -> usize {
        match &self.nodes[at] {
            Node::Leaf(_) => 0,
            Node::Split { left, right, .. } => {
                1 + self.depth_from(*left).max(self.depth_from(*right))
            }
        }
    }
}

/// Impurity accumulator: gini for classification, variance for regression.
enum Criterion {
    Gini { classes: usize },
    Mse,
}

impl Criterion {
    fn leaf_value(&self, y: &[f64], rows: &[usize]) -> Vec<f64> {
        match self {
            Criterion::Gini { classes } => {
                let mut dist = vec![0.0f64; *classes];
                for &r in rows {
                    let c = y[r] as usize;
                    if c < *classes {
                        dist[c] += 1.0;
                    }
                }
                let total: f64 = dist.iter().sum();
                if total > 0.0 {
                    for v in &mut dist {
                        *v /= total;
                    }
                }
                dist
            }
            Criterion::Mse => {
                let mean = rows.iter().map(|&r| y[r]).sum::<f64>() / rows.len().max(1) as f64;
                vec![mean]
            }
        }
    }

    fn outputs(&self) -> usize {
        match self {
            Criterion::Gini { classes } => *classes,
            Criterion::Mse => 1,
        }
    }
}

/// State for an incremental best-split scan of one feature.
struct SplitScan {
    /// Classification: left class counts; regression: (sum, sumsq) packed.
    left: Vec<f64>,
    right: Vec<f64>,
    left_n: usize,
    right_n: usize,
}

impl SplitScan {
    fn init(criterion: &Criterion, y: &[f64], rows: &[usize]) -> SplitScan {
        match criterion {
            Criterion::Gini { classes } => {
                let mut right = vec![0.0; *classes];
                for &r in rows {
                    let c = y[r] as usize;
                    if c < *classes {
                        right[c] += 1.0;
                    }
                }
                SplitScan {
                    left: vec![0.0; *classes],
                    right,
                    left_n: 0,
                    right_n: rows.len(),
                }
            }
            Criterion::Mse => {
                let sum: f64 = rows.iter().map(|&r| y[r]).sum();
                let sumsq: f64 = rows.iter().map(|&r| y[r] * y[r]).sum();
                SplitScan {
                    left: vec![0.0, 0.0],
                    right: vec![sum, sumsq],
                    left_n: 0,
                    right_n: rows.len(),
                }
            }
        }
    }

    fn move_left(&mut self, criterion: &Criterion, yv: f64) {
        match criterion {
            Criterion::Gini { classes } => {
                let c = yv as usize;
                if c < *classes {
                    self.left[c] += 1.0;
                    self.right[c] -= 1.0;
                }
            }
            Criterion::Mse => {
                self.left[0] += yv;
                self.left[1] += yv * yv;
                self.right[0] -= yv;
                self.right[1] -= yv * yv;
            }
        }
        self.left_n += 1;
        self.right_n -= 1;
    }

    /// Weighted impurity of the current partition (lower is better).
    fn impurity(&self, criterion: &Criterion) -> f64 {
        match criterion {
            Criterion::Gini { .. } => {
                let gini = |counts: &[f64], n: usize| -> f64 {
                    if n == 0 {
                        return 0.0;
                    }
                    let nf = n as f64;
                    1.0 - counts.iter().map(|c| (c / nf) * (c / nf)).sum::<f64>()
                };
                let total = (self.left_n + self.right_n) as f64;
                (self.left_n as f64 * gini(&self.left, self.left_n)
                    + self.right_n as f64 * gini(&self.right, self.right_n))
                    / total
            }
            Criterion::Mse => {
                let var_part = |acc: &[f64], n: usize| -> f64 {
                    if n == 0 {
                        return 0.0;
                    }
                    let nf = n as f64;
                    // n * variance = sumsq - sum^2/n
                    acc[1] - acc[0] * acc[0] / nf
                };
                let total = (self.left_n + self.right_n) as f64;
                (var_part(&self.left, self.left_n) + var_part(&self.right, self.right_n)) / total
            }
        }
    }
}

fn build_tree(
    x: &Matrix,
    y: &[f64],
    rows: Vec<usize>,
    config: &TreeConfig,
    criterion: &Criterion,
    rng: &mut StdRng,
) -> FittedTree {
    let mut nodes = Vec::new();
    build_node(x, y, rows, 0, config, criterion, rng, &mut nodes);
    FittedTree {
        nodes,
        outputs: criterion.outputs(),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node(
    x: &Matrix,
    y: &[f64],
    rows: Vec<usize>,
    depth: usize,
    config: &TreeConfig,
    criterion: &Criterion,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> usize {
    let make_leaf = |nodes: &mut Vec<Node>, rows: &[usize]| -> usize {
        nodes.push(Node::Leaf(criterion.leaf_value(y, rows)));
        nodes.len() - 1
    };
    if depth >= config.max_depth || rows.len() < config.min_samples_split || is_pure(y, &rows) {
        return make_leaf(nodes, &rows);
    }
    // Feature subset for this node.
    let d = x.cols();
    let n_feats = ((config.max_features * d as f64).ceil() as usize).clamp(1, d);
    let mut feats: Vec<usize> = (0..d).collect();
    if n_feats < d {
        feats.shuffle(rng);
        feats.truncate(n_feats);
    }

    let mut best: Option<(f64, usize, f64)> = None; // (impurity, feature, threshold)
    for &f in &feats {
        let candidate = if config.random_thresholds {
            random_threshold_split(x, y, &rows, f, config, criterion, rng)
        } else {
            best_exact_split(x, y, &rows, f, config, criterion)
        };
        if let Some((imp, thr)) = candidate {
            if best.is_none_or(|(bi, _, _)| imp < bi) {
                best = Some((imp, f, thr));
            }
        }
    }
    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes, &rows);
    };
    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.iter().partition(|&&r| x.get(r, feature) <= threshold);
    if left_rows.len() < config.min_samples_leaf || right_rows.len() < config.min_samples_leaf {
        return make_leaf(nodes, &rows);
    }
    let at = nodes.len();
    nodes.push(Node::Leaf(Vec::new())); // placeholder, patched below
    let left = build_node(x, y, left_rows, depth + 1, config, criterion, rng, nodes);
    let right = build_node(x, y, right_rows, depth + 1, config, criterion, rng, nodes);
    nodes[at] = Node::Split {
        feature,
        threshold,
        left,
        right,
    };
    at
}

fn is_pure(y: &[f64], rows: &[usize]) -> bool {
    rows.windows(2).all(|w| y[w[0]] == y[w[1]]) || rows.len() <= 1
}

/// Exhaustive scan of all cut points on one feature; returns the best
/// (weighted impurity, threshold) honouring `min_samples_leaf`.
fn best_exact_split(
    x: &Matrix,
    y: &[f64],
    rows: &[usize],
    feature: usize,
    config: &TreeConfig,
    criterion: &Criterion,
) -> Option<(f64, f64)> {
    let mut order: Vec<usize> = rows.to_vec();
    order.sort_by(|&a, &b| x.get(a, feature).partial_cmp(&x.get(b, feature)).unwrap());
    let mut scan = SplitScan::init(criterion, y, rows);
    let mut best: Option<(f64, f64)> = None;
    for w in 0..order.len() - 1 {
        let r = order[w];
        scan.move_left(criterion, y[r]);
        let v = x.get(r, feature);
        let next = x.get(order[w + 1], feature);
        if v == next {
            continue; // can't cut between equal values
        }
        if scan.left_n < config.min_samples_leaf || scan.right_n < config.min_samples_leaf {
            continue;
        }
        let imp = scan.impurity(criterion);
        let thr = v + (next - v) * 0.5;
        if best.is_none_or(|(bi, _)| imp < bi) {
            best = Some((imp, thr));
        }
    }
    best
}

/// Extra-trees split: one uniform random threshold in the feature's range.
fn random_threshold_split(
    x: &Matrix,
    y: &[f64],
    rows: &[usize],
    feature: usize,
    config: &TreeConfig,
    criterion: &Criterion,
    rng: &mut StdRng,
) -> Option<(f64, f64)> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &r in rows {
        let v = x.get(r, feature);
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if hi <= lo {
        return None;
    }
    let thr = rng.gen_range(lo..hi);
    let mut scan = SplitScan::init(criterion, y, rows);
    for &r in rows {
        if x.get(r, feature) <= thr {
            scan.move_left(criterion, y[r]);
        }
    }
    if scan.left_n < config.min_samples_leaf || scan.right_n < config.min_samples_leaf {
        return None;
    }
    Some((scan.impurity(criterion), thr))
}

// ---------------------------------------------------------------------------
// DecisionTree estimator
// ---------------------------------------------------------------------------

/// A single CART decision tree for classification (gini) or regression
/// (variance reduction).
#[derive(Debug)]
pub struct DecisionTree {
    config: TreeConfig,
    tree: Option<FittedTree>,
    task: Option<Task>,
}

impl DecisionTree {
    /// Creates an unfitted tree with the given configuration.
    pub fn new(config: TreeConfig) -> Self {
        DecisionTree {
            config,
            tree: None,
            task: None,
        }
    }

    /// Depth of the fitted tree (0 for a single leaf).
    pub fn depth(&self) -> Option<usize> {
        self.tree.as_ref().map(|t| t.depth_from(0))
    }
}

impl Estimator for DecisionTree {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("decision_tree", x, y)?;
        let criterion = if task.is_classification() {
            Criterion::Gini {
                classes: task.num_classes().max(2),
            }
        } else {
            Criterion::Mse
        };
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.tree = Some(build_tree(
            x,
            y,
            (0..x.rows()).collect(),
            &self.config,
            &criterion,
            &mut rng,
        ));
        self.task = Some(task);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let task = self.task.ok_or(LearnError::NotFitted("decision_tree"))?;
        if task.is_classification() {
            Ok(argmax_rows(&self.predict_proba(x)?))
        } else {
            let tree = self.tree.as_ref().unwrap();
            Ok((0..x.rows())
                .map(|r| tree.predict_row(x.row(r))[0])
                .collect())
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let task = self.task.ok_or(LearnError::NotFitted("decision_tree"))?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask(
                "decision_tree (regression proba)",
            ));
        }
        let tree = self.tree.as_ref().unwrap();
        let mut out = Matrix::zeros(x.rows(), tree.outputs);
        for r in 0..x.rows() {
            let dist = tree.predict_row(x.row(r));
            for (c, v) in dist.iter().enumerate() {
                out.set(r, c, *v);
            }
        }
        Ok(out)
    }

    fn kind(&self) -> EstimatorKind {
        EstimatorKind::DecisionTree
    }
}

// ---------------------------------------------------------------------------
// Forest ensembles
// ---------------------------------------------------------------------------

/// A bagged ensemble of CART trees: random forest (bootstrap + feature
/// subsets) or extra trees (no bootstrap, random thresholds).
#[derive(Debug)]
pub struct Forest {
    n_estimators: usize,
    config: TreeConfig,
    bootstrap: bool,
    kind: EstimatorKind,
    trees: Vec<FittedTree>,
    task: Option<Task>,
}

impl Forest {
    /// Creates an unfitted forest.
    pub fn new(
        n_estimators: usize,
        config: TreeConfig,
        bootstrap: bool,
        kind: EstimatorKind,
    ) -> Self {
        Forest {
            n_estimators: n_estimators.max(1),
            config,
            bootstrap,
            kind,
            trees: Vec::new(),
            task: None,
        }
    }

    /// Number of fitted trees.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Per-tree raw predictions for each row: regression values, or the
    /// argmax class per tree for classification. Exposes the ensemble's
    /// spread, which SMAC-style surrogates use as an uncertainty estimate.
    pub fn predict_per_tree(&self, x: &Matrix) -> Result<Vec<Vec<f64>>> {
        let task = self.task.ok_or(LearnError::NotFitted("forest"))?;
        Ok(self
            .trees
            .iter()
            .map(|tree| {
                (0..x.rows())
                    .map(|r| {
                        let v = tree.predict_row(x.row(r));
                        if task.is_classification() {
                            v.iter()
                                .enumerate()
                                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                                .map(|(c, _)| c as f64)
                                .unwrap_or(0.0)
                        } else {
                            v[0]
                        }
                    })
                    .collect()
            })
            .collect())
    }

    fn aggregate(&self, x: &Matrix, outputs: usize) -> Matrix {
        let mut out = Matrix::zeros(x.rows(), outputs);
        for tree in &self.trees {
            for r in 0..x.rows() {
                let v = tree.predict_row(x.row(r));
                for (c, p) in v.iter().enumerate() {
                    out.set(r, c, out.get(r, c) + p);
                }
            }
        }
        let k = self.trees.len() as f64;
        for r in 0..out.rows() {
            for v in out.row_mut(r) {
                *v /= k;
            }
        }
        out
    }
}

impl Estimator for Forest {
    fn fit(&mut self, x: &Matrix, y: &[f64], task: Task) -> Result<()> {
        check_fit_inputs("forest", x, y)?;
        let criterion = if task.is_classification() {
            Criterion::Gini {
                classes: task.num_classes().max(2),
            }
        } else {
            Criterion::Mse
        };
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        self.trees = (0..self.n_estimators)
            .map(|_| {
                let rows: Vec<usize> = if self.bootstrap {
                    (0..n).map(|_| rng.gen_range(0..n)).collect()
                } else {
                    (0..n).collect()
                };
                build_tree(x, y, rows, &self.config, &criterion, &mut rng)
            })
            .collect();
        self.task = Some(task);
        Ok(())
    }

    fn predict(&self, x: &Matrix) -> Result<Vec<f64>> {
        let task = self.task.ok_or(LearnError::NotFitted("forest"))?;
        if task.is_classification() {
            Ok(argmax_rows(&self.predict_proba(x)?))
        } else {
            Ok(self.aggregate(x, 1).col(0))
        }
    }

    fn predict_proba(&self, x: &Matrix) -> Result<Matrix> {
        let task = self.task.ok_or(LearnError::NotFitted("forest"))?;
        if !task.is_classification() {
            return Err(LearnError::UnsupportedTask("forest (regression proba)"));
        }
        Ok(self.aggregate(x, task.num_classes().max(2)))
    }

    fn kind(&self) -> EstimatorKind {
        self.kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// XOR-ish data no linear model can fit but a depth-2 tree can.
    fn xor_data() -> (Matrix, Vec<f64>) {
        let mut rows = Vec::new();
        let mut y = Vec::new();
        for i in 0..200 {
            let a = f64::from(i % 2 == 0);
            let b = f64::from((i / 2) % 2 == 0);
            // Small jitter so values are not identical.
            rows.push(vec![a + (i % 5) as f64 * 0.01, b + (i % 7) as f64 * 0.01]);
            y.push(f64::from((a > 0.5) != (b > 0.5)));
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    #[test]
    fn tree_fits_xor() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, Task::Binary).unwrap();
        assert!(crate::metrics::accuracy(&y, &t.predict(&x).unwrap()) > 0.98);
        assert!(t.depth().unwrap() >= 2);
    }

    #[test]
    fn tree_regression_fits_step_function() {
        let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut t = DecisionTree::new(TreeConfig {
            max_depth: 2,
            ..TreeConfig::default()
        });
        t.fit(&x, &y, Task::Regression).unwrap();
        let pred = t.predict(&x).unwrap();
        assert!(crate::metrics::r2(&y, &pred) > 0.99);
    }

    #[test]
    fn max_depth_limits_tree() {
        let (x, y) = xor_data();
        let mut stump = DecisionTree::new(TreeConfig {
            max_depth: 1,
            ..TreeConfig::default()
        });
        stump.fit(&x, &y, Task::Binary).unwrap();
        assert!(stump.depth().unwrap() <= 1);
        // A stump cannot solve XOR.
        assert!(crate::metrics::accuracy(&y, &stump.predict(&x).unwrap()) < 0.8);
    }

    #[test]
    fn min_samples_leaf_prevents_tiny_leaves() {
        let (x, y) = xor_data();
        let mut t = DecisionTree::new(TreeConfig {
            min_samples_leaf: 60,
            ..TreeConfig::default()
        });
        t.fit(&x, &y, Task::Binary).unwrap();
        // With 200 rows and 60-per-leaf minimum, depth is strongly limited.
        assert!(t.depth().unwrap() <= 2);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]).unwrap();
        let y = vec![1.0, 1.0, 1.0];
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(t.depth().unwrap(), 0);
    }

    #[test]
    fn forest_beats_single_stump_and_is_deterministic() {
        let (x, y) = xor_data();
        let config = TreeConfig {
            max_depth: 4,
            max_features: 0.7,
            seed: 9,
            ..TreeConfig::default()
        };
        let mut f1 = Forest::new(20, config.clone(), true, EstimatorKind::RandomForest);
        let mut f2 = Forest::new(20, config, true, EstimatorKind::RandomForest);
        f1.fit(&x, &y, Task::Binary).unwrap();
        f2.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(f1.num_trees(), 20);
        assert_eq!(f1.predict(&x).unwrap(), f2.predict(&x).unwrap());
        assert!(crate::metrics::accuracy(&y, &f1.predict(&x).unwrap()) > 0.95);
    }

    #[test]
    fn extra_trees_regression() {
        let rows: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 40) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| (r[0] * 0.3).sin() * 5.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut f = Forest::new(
            30,
            TreeConfig {
                max_depth: 8,
                random_thresholds: true,
                seed: 3,
                ..TreeConfig::default()
            },
            false,
            EstimatorKind::ExtraTrees,
        );
        f.fit(&x, &y, Task::Regression).unwrap();
        assert!(crate::metrics::r2(&y, &f.predict(&x).unwrap()) > 0.95);
    }

    #[test]
    fn forest_proba_rows_sum_to_one() {
        let (x, y) = xor_data();
        let mut f = Forest::new(10, TreeConfig::default(), true, EstimatorKind::RandomForest);
        f.fit(&x, &y, Task::Binary).unwrap();
        let p = f.predict_proba(&x).unwrap();
        for r in 0..p.rows() {
            assert!((p.row(r).iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_features_yield_single_leaf() {
        let x = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0], vec![1.0]]).unwrap();
        let y = vec![0.0, 1.0, 0.0, 1.0];
        let mut t = DecisionTree::new(TreeConfig::default());
        t.fit(&x, &y, Task::Binary).unwrap();
        assert_eq!(t.depth().unwrap(), 0, "no valid split on constant data");
        let p = t.predict_proba(&x).unwrap();
        assert!((p.get(0, 0) - 0.5).abs() < 1e-9);
    }
}
