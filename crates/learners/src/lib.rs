//! Classical machine-learning learners, preprocessors and metrics built
//! from scratch for the KGpip reproduction.
//!
//! The paper's mined pipelines are composed of estimators and transformers
//! from Scikit-learn, XGBoost and LightGBM (paper §3.4: "namely,
//! Scikit-learn, XGBoost, and LGBM ... the most popular libraries supported
//! by most AutoML systems"). None of those exist in Rust, so this crate
//! implements the learner families the paper's Figures 8–9 report —
//! gradient boosting, XGBoost-style second-order boosting, LightGBM-style
//! histogram boosting, random forests, extra trees, decision trees,
//! logistic/linear models, SVMs, k-NN, naive Bayes — plus the preprocessor
//! vocabulary (scalers, one-hot, imputation, variance filtering, PCA,
//! feature selection, text hashing) and the paper's evaluation metrics
//! (macro F1 for classification, R² for regression; paper §4.3).
//!
//! The public surface is deliberately uniform so the HPO engines can drive
//! any learner generically:
//!
//! * [`Matrix`] — dense row-major `f64` matrices,
//! * [`encode::FeatureEncoder`] — `DataFrame` → `Matrix` (ordinal codes for
//!   categoricals, hashing vectorizer for text, NaN for missing),
//! * [`Transformer`] / [`TransformerKind`] — fit/transform preprocessors,
//! * [`Estimator`] / [`EstimatorKind`] — fit/predict learners built from a
//!   flat numeric parameter map ([`Params`]),
//! * [`Pipeline`] — a preprocessor chain plus an estimator, the executable
//!   form of a KGpip "pipeline skeleton" (paper §3.6),
//! * [`metrics`] — macro-F1, accuracy, log-loss, R², MSE, MAE.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod encode;
pub mod estimators;
pub mod matrix;
pub mod metrics;
pub mod pipeline;
pub mod preprocess;

pub use cache::TransformCache;
pub use encode::{EncodedDataset, FeatureEncoder};
pub use estimators::{build_estimator, Estimator, EstimatorKind, Params};
pub use matrix::{ChunkedMatrix, Matrix};
pub use pipeline::Pipeline;
pub use preprocess::{build_transformer, Transformer, TransformerKind};

/// Errors produced by learners and transformers.
#[derive(Debug, Clone, PartialEq)]
pub enum LearnError {
    /// Input matrix/target shapes disagree or are empty.
    Shape(String),
    /// An estimator was asked to predict before being fitted.
    NotFitted(&'static str),
    /// A hyperparameter value is outside its legal domain.
    InvalidParam(String),
    /// The task type is unsupported by this estimator.
    UnsupportedTask(&'static str),
}

impl std::fmt::Display for LearnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LearnError::Shape(m) => write!(f, "shape error: {m}"),
            LearnError::NotFitted(name) => write!(f, "`{name}` used before fit"),
            LearnError::InvalidParam(m) => write!(f, "invalid hyperparameter: {m}"),
            LearnError::UnsupportedTask(name) => write!(f, "task unsupported by `{name}`"),
        }
    }
}

impl std::error::Error for LearnError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LearnError>;
