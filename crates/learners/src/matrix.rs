//! Dense row-major `f64` matrices — the numeric interchange format between
//! encoders, preprocessors and estimators.

use crate::{LearnError, Result};

/// A dense row-major matrix. Missing values are represented as NaN until an
/// imputer removes them; estimators require NaN-free input.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    rows: usize,
    cols: usize,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    pub fn from_vec(data: Vec<f64>, rows: usize, cols: usize) -> Result<Matrix> {
        if data.len() != rows * cols {
            return Err(LearnError::Shape(format!(
                "data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Matrix { data, rows, cols })
    }

    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a matrix from rows of equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Matrix> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LearnError::Shape(format!(
                    "row {i} has length {}, expected {cols}",
                    r.len()
                )));
            }
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            data,
            rows: rows.len(),
            cols,
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Selects rows into a new matrix (rows may repeat).
    pub fn take_rows(&self, rows: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(rows.len() * self.cols);
        for &r in rows {
            data.extend_from_slice(self.row(r));
        }
        Matrix {
            data,
            rows: rows.len(),
            cols: self.cols,
        }
    }

    /// Selects columns into a new matrix.
    pub fn take_cols(&self, cols: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * cols.len());
        for r in 0..self.rows {
            let row = self.row(r);
            for &c in cols {
                data.push(row[c]);
            }
        }
        Matrix {
            data,
            rows: self.rows,
            cols: cols.len(),
        }
    }

    /// Horizontally concatenates two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> Result<Matrix> {
        if self.rows != other.rows {
            return Err(LearnError::Shape(format!(
                "hcat: {} rows vs {} rows",
                self.rows, other.rows
            )));
        }
        let cols = self.cols + other.cols;
        let mut data = Vec::with_capacity(self.rows * cols);
        for r in 0..self.rows {
            data.extend_from_slice(self.row(r));
            data.extend_from_slice(other.row(r));
        }
        Ok(Matrix {
            data,
            rows: self.rows,
            cols,
        })
    }

    /// True when any element is NaN (i.e. missing values remain).
    pub fn has_nan(&self) -> bool {
        self.data.iter().any(|x| x.is_nan())
    }

    /// Matrix-vector product `self · v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if v.len() != self.cols {
            return Err(LearnError::Shape(format!(
                "matvec: vector length {} != cols {}",
                v.len(),
                self.cols
            )));
        }
        Ok((0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum::<f64>())
            .collect())
    }

    /// Gram matrix `selfᵀ · self` (cols × cols), used by linear solvers.
    #[allow(clippy::needless_range_loop)] // triangular index pattern
    pub fn gram(&self) -> Matrix {
        let c = self.cols;
        let mut out = Matrix::zeros(c, c);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..c {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..c {
                    let v = out.get(i, j) + ri * row[j];
                    out.set(i, j, v);
                }
            }
        }
        for i in 0..c {
            for j in 0..i {
                let v = out.get(j, i);
                out.set(i, j, v);
            }
        }
        out
    }

    /// `selfᵀ · y` for a target vector `y` (length = rows).
    #[allow(clippy::needless_range_loop)] // y and rows indexed in lockstep
    pub fn t_vec(&self, y: &[f64]) -> Result<Vec<f64>> {
        if y.len() != self.rows {
            return Err(LearnError::Shape(format!(
                "t_vec: vector length {} != rows {}",
                y.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let yr = y[r];
            if yr == 0.0 {
                continue;
            }
            for (o, x) in out.iter_mut().zip(self.row(r)) {
                *o += x * yr;
            }
        }
        Ok(out)
    }
}

/// A row-chunked matrix: the learners-side mirror of the tabular crate's
/// `ChunkedFrame`. Rows live in fixed-size row-major chunks so consumers
/// that fold chunk-by-chunk (the histogram GBT binner, streamed holdout
/// scoring) never materialize the full dense matrix. `to_matrix` restores
/// the exact dense form — chunking changes cost, never content.
#[derive(Debug, Clone)]
pub struct ChunkedMatrix {
    chunks: Vec<Matrix>,
    /// Global row index where each chunk starts (same length as `chunks`).
    starts: Vec<usize>,
    rows: usize,
    cols: usize,
}

impl ChunkedMatrix {
    /// Assembles a chunked matrix; every chunk must have the same column
    /// count.
    pub fn from_chunks(chunks: Vec<Matrix>) -> Result<ChunkedMatrix> {
        let cols = chunks.first().map(Matrix::cols).unwrap_or(0);
        if let Some(bad) = chunks.iter().find(|c| c.cols() != cols) {
            return Err(LearnError::Shape(format!(
                "chunked matrix: chunk has {} cols, expected {cols}",
                bad.cols()
            )));
        }
        let mut starts = Vec::with_capacity(chunks.len());
        let mut rows = 0usize;
        for c in &chunks {
            starts.push(rows);
            rows += c.rows();
        }
        Ok(ChunkedMatrix {
            chunks,
            starts,
            rows,
            cols,
        })
    }

    /// Splits a dense matrix into chunks of `chunk_rows` rows.
    pub fn from_matrix(x: &Matrix, chunk_rows: usize) -> ChunkedMatrix {
        let chunk_rows = chunk_rows.max(1);
        let mut chunks = Vec::new();
        let mut at = 0usize;
        while at < x.rows() {
            let len = chunk_rows.min(x.rows() - at);
            let idx: Vec<usize> = (at..at + len).collect();
            chunks.push(x.take_rows(&idx));
            at += len;
        }
        ChunkedMatrix::from_chunks(chunks).expect("uniform chunks by construction")
    }

    /// Total rows across all chunks.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The chunks, in row order.
    pub fn chunks(&self) -> &[Matrix] {
        &self.chunks
    }

    /// Borrow of global row `r` from whichever chunk holds it.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        let k = self.starts.partition_point(|&s| s <= r) - 1;
        self.chunks[k].row(r - self.starts[k])
    }

    /// Concatenates the chunks back into the exact dense matrix.
    pub fn to_matrix(&self) -> Matrix {
        let mut data = Vec::with_capacity(self.rows * self.cols);
        for c in &self.chunks {
            data.extend_from_slice(c.as_slice());
        }
        Matrix {
            data,
            rows: self.rows,
            cols: self.cols,
        }
    }

    /// True when any element of any chunk is NaN.
    pub fn has_nan(&self) -> bool {
        self.chunks.iter().any(Matrix::has_nan)
    }
}

/// Solves the symmetric positive-definite system `a · x = b` via Cholesky
/// decomposition; adds `ridge` to the diagonal for conditioning.
pub fn solve_spd(a: &Matrix, b: &[f64], ridge: f64) -> Result<Vec<f64>> {
    let n = a.rows();
    if a.cols() != n || b.len() != n {
        return Err(LearnError::Shape("solve_spd expects square system".into()));
    }
    // Cholesky: a = L·Lᵀ.
    let mut l = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a.get(i, j) + if i == j { ridge } else { 0.0 };
            for k in 0..j {
                sum -= l[i * n + k] * l[j * n + k];
            }
            if i == j {
                if sum <= 0.0 {
                    // Not positive definite even with ridge: bump and retry once.
                    return solve_spd(a, b, (ridge.max(1e-8)) * 10.0);
                }
                l[i * n + j] = sum.sqrt();
            } else {
                l[i * n + j] = sum / l[j * n + j];
            }
        }
    }
    // Forward solve L·z = b.
    let mut z = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i * n + k] * z[k];
        }
        z[i] = sum / l[i * n + i];
    }
    // Back solve Lᵀ·x = z.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = z[i];
        for k in i + 1..n {
            sum -= l[k * n + i] * x[k];
        }
        x[i] = sum / l[i * n + i];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert!(Matrix::from_vec(vec![1.0], 2, 3).is_err());
    }

    #[test]
    fn from_rows_validates_lengths() {
        assert!(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]).is_err());
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
    }

    #[test]
    fn take_rows_and_cols() {
        let m = Matrix::from_vec((0..12).map(|i| i as f64).collect(), 3, 4).unwrap();
        let r = m.take_rows(&[2, 0]);
        assert_eq!(r.row(0), &[8.0, 9.0, 10.0, 11.0]);
        let c = m.take_cols(&[3, 1]);
        assert_eq!(c.row(0), &[3.0, 1.0]);
        assert_eq!(c.cols(), 2);
    }

    #[test]
    fn hcat_checks_rows() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(a.hcat(&b).is_err());
        let c = a.hcat(&Matrix::zeros(2, 2)).unwrap();
        assert_eq!(c.cols(), 3);
    }

    #[test]
    fn matvec_and_gram() {
        let m = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        assert_eq!(m.matvec(&[1.0, 1.0]).unwrap(), vec![3.0, 7.0]);
        let g = m.gram();
        // [[1,3],[2,4]]·[[1,2],[3,4]] = [[10,14],[14,20]]
        assert_eq!(g.get(0, 0), 10.0);
        assert_eq!(g.get(0, 1), 14.0);
        assert_eq!(g.get(1, 0), 14.0);
        assert_eq!(g.get(1, 1), 20.0);
        assert_eq!(m.t_vec(&[1.0, 1.0]).unwrap(), vec![4.0, 6.0]);
    }

    #[test]
    fn solve_spd_recovers_solution() {
        // a = [[4,1],[1,3]], x = [1,2] -> b = [6,7]
        let a = Matrix::from_vec(vec![4.0, 1.0, 1.0, 3.0], 2, 2).unwrap();
        let x = solve_spd(&a, &[6.0, 7.0], 0.0).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_spd_handles_singular_with_ridge() {
        // Rank-deficient matrix; ridge escalation must still return something
        // finite.
        let a = Matrix::from_vec(vec![1.0, 1.0, 1.0, 1.0], 2, 2).unwrap();
        let x = solve_spd(&a, &[2.0, 2.0], 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn chunked_matrix_roundtrips_and_locates_rows() {
        let m = Matrix::from_vec((0..20).map(|i| i as f64).collect(), 5, 4).unwrap();
        for chunk_rows in [1, 2, 3, 100] {
            let cm = ChunkedMatrix::from_matrix(&m, chunk_rows);
            assert_eq!(cm.rows(), 5);
            assert_eq!(cm.cols(), 4);
            assert_eq!(cm.to_matrix(), m, "chunk_rows {chunk_rows}");
            for r in 0..5 {
                assert_eq!(cm.row(r), m.row(r), "row {r} at chunk_rows {chunk_rows}");
            }
        }
        assert!(!ChunkedMatrix::from_matrix(&m, 2).has_nan());
        let mut nan = m.clone();
        nan.set(4, 3, f64::NAN);
        assert!(ChunkedMatrix::from_matrix(&nan, 2).has_nan());
        assert!(
            ChunkedMatrix::from_chunks(vec![Matrix::zeros(1, 2), Matrix::zeros(1, 3)]).is_err()
        );
    }

    #[test]
    fn nan_detection() {
        let mut m = Matrix::zeros(2, 2);
        assert!(!m.has_nan());
        m.set(1, 1, f64::NAN);
        assert!(m.has_nan());
    }
}
