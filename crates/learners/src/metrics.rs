//! Evaluation metrics.
//!
//! Paper §4.3: "We used Macro F1 for classification tasks to account for
//! data imbalance, if any, and use R² for regression tasks, as in FLAML."

use crate::Matrix;

/// Classification accuracy. `y_true`/`y_pred` are class indices.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true
        .iter()
        .zip(y_pred)
        .filter(|(a, b)| (**a - **b).abs() < 0.5)
        .count();
    hits as f64 / y_true.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes. Classes absent from both
/// the truth and the predictions contribute an F1 of 0, matching
/// scikit-learn's default for macro averaging with explicit labels.
pub fn macro_f1(y_true: &[f64], y_pred: &[f64], num_classes: usize) -> f64 {
    if y_true.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        let (t, p) = (t as usize, p as usize);
        if t >= num_classes || p >= num_classes {
            continue;
        }
        if t == p {
            tp[t] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let mut f1_sum = 0.0;
    for c in 0..num_classes {
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        if denom > 0 {
            f1_sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    f1_sum / num_classes as f64
}

/// Coefficient of determination R². Can be negative for models worse than
/// predicting the mean; 1.0 is perfect.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        // Constant target: perfect iff residuals vanish.
        return if ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Multi-class logarithmic loss. `proba` is n×k with rows summing to ~1;
/// probabilities are clipped to `[1e-15, 1-1e-15]`.
pub fn log_loss(y_true: &[f64], proba: &Matrix) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, &t) in y_true.iter().enumerate() {
        let c = (t as usize).min(proba.cols().saturating_sub(1));
        let p = proba.get(r, c).clamp(1e-15, 1.0 - 1e-15);
        total -= p.ln();
    }
    total / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        let t = vec![0.0, 1.0, 2.0, 0.0];
        assert!((macro_f1(&t, &t, 3) - 1.0).abs() < 1e-12);
        let wrong = vec![1.0, 2.0, 0.0, 1.0];
        assert_eq!(macro_f1(&t, &wrong, 3), 0.0);
    }

    #[test]
    fn macro_f1_accounts_for_imbalance() {
        // 9 of class 0, 1 of class 1; predicting all-zero gets high accuracy
        // but macro-F1 only ~0.47.
        let mut t = vec![0.0; 9];
        t.push(1.0);
        let p = vec![0.0; 10];
        assert!(accuracy(&t, &p) > 0.89);
        let f1 = macro_f1(&t, &p, 2);
        assert!(
            f1 < 0.5,
            "macro F1 {f1} should punish ignoring the minority"
        );
    }

    #[test]
    fn macro_f1_matches_hand_computation() {
        // Class 0: tp=1 fp=1 fn=0 -> f1 = 2/3
        // Class 1: tp=1 fp=0 fn=1 -> f1 = 2/3
        let t = vec![0.0, 1.0, 1.0];
        let p = vec![0.0, 1.0, 0.0];
        assert!((macro_f1(&t, &p, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_properties() {
        let y = vec![1.0, 2.0, 3.0];
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        // Predicting the mean gives exactly 0.
        let mean_pred = vec![2.0; 3];
        assert!(r2(&y, &mean_pred).abs() < 1e-12);
        // Worse than the mean goes negative.
        assert!(r2(&y, &[3.0, 2.0, 1.0]) < 0.0);
    }

    #[test]
    fn r2_constant_target() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 5.0], &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn mse_mae() {
        assert_eq!(mse(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
        assert_eq!(mae(&[0.0, 0.0], &[2.0, -2.0]), 2.0);
    }

    #[test]
    fn log_loss_clips() {
        let proba = Matrix::from_vec(vec![1.0, 0.0], 1, 2).unwrap();
        // True class has probability 0 -> clipped, finite loss.
        let ll = log_loss(&[1.0], &proba);
        assert!(ll.is_finite() && ll > 10.0);
        // Confident correct prediction -> near-zero loss.
        let good = Matrix::from_vec(vec![0.01, 0.99], 1, 2).unwrap();
        assert!(log_loss(&[1.0], &good) < 0.02);
    }
}
