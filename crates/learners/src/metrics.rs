//! Evaluation metrics.
//!
//! Paper §4.3: "We used Macro F1 for classification tasks to account for
//! data imbalance, if any, and use R² for regression tasks, as in FLAML."

use crate::Matrix;

/// Classification accuracy. `y_true`/`y_pred` are class indices.
pub fn accuracy(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let hits = y_true
        .iter()
        .zip(y_pred)
        .filter(|(a, b)| (**a - **b).abs() < 0.5)
        .count();
    hits as f64 / y_true.len() as f64
}

/// Macro-averaged F1 over `num_classes` classes. Classes absent from both
/// the truth and the predictions contribute an F1 of 0, matching
/// scikit-learn's default for macro averaging with explicit labels.
pub fn macro_f1(y_true: &[f64], y_pred: &[f64], num_classes: usize) -> f64 {
    if y_true.is_empty() || num_classes == 0 {
        return 0.0;
    }
    let mut tp = vec![0usize; num_classes];
    let mut fp = vec![0usize; num_classes];
    let mut fnn = vec![0usize; num_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        let (t, p) = (t as usize, p as usize);
        if t >= num_classes || p >= num_classes {
            continue;
        }
        if t == p {
            tp[t] += 1;
        } else {
            fp[p] += 1;
            fnn[t] += 1;
        }
    }
    let mut f1_sum = 0.0;
    for c in 0..num_classes {
        let denom = 2 * tp[c] + fp[c] + fnn[c];
        if denom > 0 {
            f1_sum += 2.0 * tp[c] as f64 / denom as f64;
        }
    }
    f1_sum / num_classes as f64
}

/// Coefficient of determination R². Can be negative for models worse than
/// predicting the mean; 1.0 is perfect.
pub fn r2(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum();
    if ss_tot <= f64::EPSILON {
        // Constant target: perfect iff residuals vanish.
        return if ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
    }
    1.0 - ss_res / ss_tot
}

/// Streaming accumulator for the paper's holdout metrics (macro-F1 for
/// classification, R² for regression): feed `(target, prediction)` blocks
/// in row order and [`finish`](ScoreAccumulator::finish) to exactly the
/// value [`macro_f1`] / [`r2`] compute on the concatenated vectors.
///
/// Exactness argument: macro-F1 reduces to integer tp/fp/fn counts
/// (order-free); R²'s `ss_tot` and mean are computed from the full target
/// up front with the same left folds `r2` uses, and `ss_res` accumulates
/// element-by-element into one running sum — the identical floating-point
/// operation sequence as the unstreamed `.sum()`, just interrupted at
/// block boundaries.
#[derive(Debug, Clone)]
pub enum ScoreAccumulator {
    /// Classification: macro-F1 count vectors.
    Classification {
        /// Per-class true positives.
        tp: Vec<usize>,
        /// Per-class false positives.
        fp: Vec<usize>,
        /// Per-class false negatives.
        fnn: Vec<usize>,
        /// Total rows pushed (to mirror `macro_f1`'s empty-input guard).
        rows: usize,
    },
    /// Regression: R² with the target mean/ss_tot fixed up front.
    Regression {
        /// `ss_tot` of the full target (precomputed).
        ss_tot: f64,
        /// Running residual sum of squares.
        ss_res: f64,
        /// Total rows pushed.
        rows: usize,
    },
}

impl ScoreAccumulator {
    /// Creates an accumulator for `num_classes` classes (macro-F1).
    pub fn classification(num_classes: usize) -> ScoreAccumulator {
        ScoreAccumulator::Classification {
            tp: vec![0; num_classes],
            fp: vec![0; num_classes],
            fnn: vec![0; num_classes],
            rows: 0,
        }
    }

    /// Creates an R² accumulator from the full target vector (the mean and
    /// total sum of squares need all targets; predictions then stream).
    pub fn regression(y_true: &[f64]) -> ScoreAccumulator {
        let ss_tot = if y_true.is_empty() {
            0.0
        } else {
            let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
            y_true.iter().map(|y| (y - mean).powi(2)).sum()
        };
        ScoreAccumulator::Regression {
            ss_tot,
            ss_res: 0.0,
            rows: 0,
        }
    }

    /// Accumulates one block of aligned targets and predictions, in row
    /// order.
    pub fn push(&mut self, y_true: &[f64], y_pred: &[f64]) {
        match self {
            ScoreAccumulator::Classification { tp, fp, fnn, rows } => {
                let num_classes = tp.len();
                for (&t, &p) in y_true.iter().zip(y_pred) {
                    *rows += 1;
                    let (t, p) = (t as usize, p as usize);
                    if t >= num_classes || p >= num_classes {
                        continue;
                    }
                    if t == p {
                        tp[t] += 1;
                    } else {
                        fp[p] += 1;
                        fnn[t] += 1;
                    }
                }
            }
            ScoreAccumulator::Regression { ss_res, rows, .. } => {
                for (y, p) in y_true.iter().zip(y_pred) {
                    *rows += 1;
                    *ss_res += (y - p).powi(2);
                }
            }
        }
    }

    /// The final metric value, identical to the unstreamed computation.
    pub fn finish(&self) -> f64 {
        match self {
            ScoreAccumulator::Classification { tp, fp, fnn, rows } => {
                let num_classes = tp.len();
                if *rows == 0 || num_classes == 0 {
                    return 0.0;
                }
                let mut f1_sum = 0.0;
                for c in 0..num_classes {
                    let denom = 2 * tp[c] + fp[c] + fnn[c];
                    if denom > 0 {
                        f1_sum += 2.0 * tp[c] as f64 / denom as f64;
                    }
                }
                f1_sum / num_classes as f64
            }
            ScoreAccumulator::Regression {
                ss_tot,
                ss_res,
                rows,
            } => {
                if *rows == 0 {
                    return 0.0;
                }
                if *ss_tot <= f64::EPSILON {
                    return if *ss_res <= f64::EPSILON { 1.0 } else { 0.0 };
                }
                1.0 - ss_res / ss_tot
            }
        }
    }
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    y_true
        .iter()
        .zip(y_pred)
        .map(|(y, p)| (y - p).abs())
        .sum::<f64>()
        / y_true.len() as f64
}

/// Multi-class logarithmic loss. `proba` is n×k with rows summing to ~1;
/// probabilities are clipped to `[1e-15, 1-1e-15]`.
pub fn log_loss(y_true: &[f64], proba: &Matrix) -> f64 {
    if y_true.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for (r, &t) in y_true.iter().enumerate() {
        let c = (t as usize).min(proba.cols().saturating_sub(1));
        let p = proba.get(r, c).clamp(1e-15, 1.0 - 1e-15);
        total -= p.ln();
    }
    total / y_true.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn macro_f1_perfect_and_worst() {
        let t = vec![0.0, 1.0, 2.0, 0.0];
        assert!((macro_f1(&t, &t, 3) - 1.0).abs() < 1e-12);
        let wrong = vec![1.0, 2.0, 0.0, 1.0];
        assert_eq!(macro_f1(&t, &wrong, 3), 0.0);
    }

    #[test]
    fn macro_f1_accounts_for_imbalance() {
        // 9 of class 0, 1 of class 1; predicting all-zero gets high accuracy
        // but macro-F1 only ~0.47.
        let mut t = vec![0.0; 9];
        t.push(1.0);
        let p = vec![0.0; 10];
        assert!(accuracy(&t, &p) > 0.89);
        let f1 = macro_f1(&t, &p, 2);
        assert!(
            f1 < 0.5,
            "macro F1 {f1} should punish ignoring the minority"
        );
    }

    #[test]
    fn macro_f1_matches_hand_computation() {
        // Class 0: tp=1 fp=1 fn=0 -> f1 = 2/3
        // Class 1: tp=1 fp=0 fn=1 -> f1 = 2/3
        let t = vec![0.0, 1.0, 1.0];
        let p = vec![0.0, 1.0, 0.0];
        assert!((macro_f1(&t, &p, 2) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn r2_properties() {
        let y = vec![1.0, 2.0, 3.0];
        assert!((r2(&y, &y) - 1.0).abs() < 1e-12);
        // Predicting the mean gives exactly 0.
        let mean_pred = vec![2.0; 3];
        assert!(r2(&y, &mean_pred).abs() < 1e-12);
        // Worse than the mean goes negative.
        assert!(r2(&y, &[3.0, 2.0, 1.0]) < 0.0);
    }

    #[test]
    fn r2_constant_target() {
        assert_eq!(r2(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
        assert_eq!(r2(&[5.0, 5.0], &[4.0, 6.0]), 0.0);
    }

    #[test]
    fn streamed_scores_match_unstreamed_bit_for_bit() {
        let t: Vec<f64> = (0..37).map(|i| ((i * 7) % 5) as f64).collect();
        let p: Vec<f64> = (0..37).map(|i| ((i * 3) % 5) as f64).collect();
        for block in [1, 4, 10, 100] {
            let mut acc = ScoreAccumulator::classification(5);
            for (tb, pb) in t.chunks(block).zip(p.chunks(block)) {
                acc.push(tb, pb);
            }
            assert_eq!(
                acc.finish().to_bits(),
                macro_f1(&t, &p, 5).to_bits(),
                "block {block}"
            );
        }
        let yt: Vec<f64> = (0..37).map(|i| i as f64 * 0.37 + (i % 3) as f64).collect();
        let yp: Vec<f64> = yt.iter().map(|v| v * 0.9 + 0.1).collect();
        for block in [1, 4, 10, 100] {
            let mut acc = ScoreAccumulator::regression(&yt);
            for (tb, pb) in yt.chunks(block).zip(yp.chunks(block)) {
                acc.push(tb, pb);
            }
            assert_eq!(
                acc.finish().to_bits(),
                r2(&yt, &yp).to_bits(),
                "block {block}"
            );
        }
    }

    #[test]
    fn streamed_score_edge_cases() {
        assert_eq!(ScoreAccumulator::classification(3).finish(), 0.0);
        assert_eq!(ScoreAccumulator::regression(&[]).finish(), 0.0);
        // Constant target mirrors r2's constant-target rule.
        let mut acc = ScoreAccumulator::regression(&[5.0, 5.0]);
        acc.push(&[5.0, 5.0], &[5.0, 5.0]);
        assert_eq!(acc.finish(), 1.0);
        let mut acc = ScoreAccumulator::regression(&[5.0, 5.0]);
        acc.push(&[5.0, 5.0], &[4.0, 6.0]);
        assert_eq!(acc.finish(), 0.0);
    }

    #[test]
    fn mse_mae() {
        assert_eq!(mse(&[0.0, 0.0], &[1.0, -1.0]), 1.0);
        assert_eq!(mae(&[0.0, 0.0], &[2.0, -2.0]), 2.0);
    }

    #[test]
    fn log_loss_clips() {
        let proba = Matrix::from_vec(vec![1.0, 0.0], 1, 2).unwrap();
        // True class has probability 0 -> clipped, finite loss.
        let ll = log_loss(&[1.0], &proba);
        assert!(ll.is_finite() && ll > 10.0);
        // Confident correct prediction -> near-zero loss.
        let good = Matrix::from_vec(vec![0.01, 0.99], 1, 2).unwrap();
        assert!(log_loss(&[1.0], &good) < 0.02);
    }
}
