//! Executable ML pipelines: a preprocessor chain plus an estimator.
//!
//! This is the runnable form of a KGpip "pipeline skeleton" (paper §3.6:
//! "each skeleton is a set of pre-processors and an estimator"). Fitting a
//! pipeline on a [`Dataset`]:
//!
//! 1. encodes the feature frame ([`FeatureEncoder`]: numeric passthrough,
//!    ordinal categorical codes, hashed text),
//! 2. guarantees NaN-free input by prepending a mean imputer whenever the
//!    encoded matrix still contains missing values and the user chain does
//!    not start with an imputer (paper §3.6 step 4: "imputing missing
//!    values"),
//! 3. fits each transformer in order, threading feature roles through,
//! 4. fits the estimator on the transformed matrix.

use crate::cache::{ChainKey, ChainState, StepId, TransformCache};
use crate::encode::{EncodedDataset, FeatureEncoder, FeatureRole};
use crate::estimators::{build_estimator, Estimator, EstimatorKind, Params};
use crate::matrix::Matrix;
use crate::preprocess::{build_transformer, Transformer, TransformerKind};
use crate::{metrics, LearnError, Result};
use kgpip_tabular::{Dataset, Task};
use std::sync::Arc;

/// Declarative description of a pipeline: transformer steps then estimator,
/// each with hyperparameters. This is what HPO engines and the KGpip graph
/// generator produce.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Ordered preprocessor steps.
    pub transformers: Vec<(TransformerKind, Params)>,
    /// Final estimator.
    pub estimator: EstimatorKind,
    /// Estimator hyperparameters.
    pub params: Params,
}

impl PipelineSpec {
    /// A bare-estimator spec with default hyperparameters.
    pub fn bare(estimator: EstimatorKind) -> PipelineSpec {
        PipelineSpec {
            transformers: Vec::new(),
            estimator,
            params: Params::new(),
        }
    }

    /// Human-readable `transformer > ... > estimator` string.
    pub fn describe(&self) -> String {
        let mut parts: Vec<&'static str> =
            self.transformers.iter().map(|(k, _)| k.name()).collect();
        parts.push(self.estimator.name());
        parts.join(" > ")
    }
}

/// A fitted (or fittable) pipeline.
pub struct Pipeline {
    spec: PipelineSpec,
    encoder: Option<FeatureEncoder>,
    steps: Vec<Box<dyn Transformer>>,
    estimator: Box<dyn Estimator>,
    task: Option<Task>,
}

impl Pipeline {
    /// Instantiates a pipeline from a spec (estimator hyperparameters are
    /// validated here).
    pub fn from_spec(spec: PipelineSpec) -> Result<Pipeline> {
        let estimator = build_estimator(spec.estimator, &spec.params)?;
        Ok(Pipeline {
            spec,
            encoder: None,
            steps: Vec::new(),
            estimator,
            task: None,
        })
    }

    /// The spec this pipeline was built from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Fits the full chain to a dataset.
    pub fn fit(&mut self, ds: &Dataset) -> Result<()> {
        if !self.spec.estimator.supports(ds.task) {
            return Err(LearnError::UnsupportedTask(self.spec.estimator.name()));
        }
        let encoder = FeatureEncoder::fit(&ds.features);
        let mut x = encoder.transform(&ds.features)?;
        let mut roles = encoder.roles().to_vec();
        self.encoder = Some(encoder);
        self.steps.clear();

        // Guarantee NaN-free input for estimators.
        let user_starts_with_imputer = self
            .spec
            .transformers
            .first()
            .is_some_and(|(k, _)| *k == TransformerKind::SimpleImputer);
        if x.has_nan() && !user_starts_with_imputer {
            let mut imputer = build_transformer(TransformerKind::SimpleImputer, &Params::new())?;
            roles = imputer.fit(&x, &ds.target, &roles)?;
            x = imputer.transform(&x)?;
            self.steps.push(imputer);
        }
        for (kind, params) in &self.spec.transformers {
            let mut step = build_transformer(*kind, params)?;
            roles = step.fit(&x, &ds.target, &roles)?;
            x = step.transform(&x)?;
            self.steps.push(step);
        }
        // A transformer chain can reintroduce nothing, but be defensive: the
        // estimator contract is NaN-free.
        if x.has_nan() {
            let mut imputer = build_transformer(TransformerKind::SimpleImputer, &Params::new())?;
            imputer.fit(&x, &ds.target, &roles)?;
            x = imputer.transform(&x)?;
            self.steps.push(imputer);
        }
        self.estimator.fit(&x, &ds.target, ds.task)?;
        self.task = Some(ds.task);
        Ok(())
    }

    /// Applies the fitted transformer chain to a feature frame.
    fn transform(&self, ds: &Dataset) -> Result<Matrix> {
        let encoder = self
            .encoder
            .as_ref()
            .ok_or(LearnError::NotFitted("pipeline"))?;
        let mut x = encoder.transform(&ds.features)?;
        for step in &self.steps {
            x = step.transform(&x)?;
        }
        // NaN can appear at predict time even if absent at fit time.
        if x.has_nan() {
            for r in 0..x.rows() {
                for c in 0..x.cols() {
                    if x.get(r, c).is_nan() {
                        x.set(r, c, 0.0);
                    }
                }
            }
        }
        Ok(x)
    }

    /// Predicts class indices / regression values for a dataset's features.
    pub fn predict(&self, ds: &Dataset) -> Result<Vec<f64>> {
        let x = self.transform(ds)?;
        self.estimator.predict(&x)
    }

    /// Predicts class probabilities (classification only).
    pub fn predict_proba(&self, ds: &Dataset) -> Result<Matrix> {
        let x = self.transform(ds)?;
        self.estimator.predict_proba(&x)
    }

    /// Fits on `train` and scores on `valid` with the paper's metrics:
    /// macro-F1 for classification, R² for regression.
    pub fn fit_score(&mut self, train: &Dataset, valid: &Dataset) -> Result<f64> {
        self.fit(train)?;
        let pred = self.predict(valid)?;
        Ok(score_predictions(valid, &pred))
    }

    /// The trial hot path: fits the chain + estimator on a pre-encoded
    /// training split and predicts a pre-encoded test split, optionally
    /// memoizing transformer-chain prefixes in `cache`.
    ///
    /// Produces bit-for-bit the predictions of [`fit`] + [`predict`] on the
    /// source datasets (both splits encoded with the *training* encoder,
    /// the same implicit-imputer rules, the same predict-time NaN fill) —
    /// it only skips re-encoding the raw frames and, on cache hits,
    /// re-fitting chain prefixes. The fitted transformer steps are *not*
    /// retained (a cache hit never materializes them), so the pipeline is
    /// not usable for later [`predict`] calls on raw frames; callers that
    /// need a deployable pipeline use [`fit`].
    ///
    /// [`fit`]: Pipeline::fit
    /// [`predict`]: Pipeline::predict
    pub fn fit_predict_encoded(
        &mut self,
        train: &EncodedDataset,
        test: &EncodedDataset,
        cache: Option<&TransformCache>,
    ) -> Result<Vec<f64>> {
        let pred_input = self.fit_encoded(train, test, cache)?;
        self.estimator.predict(&pred_input)
    }

    /// The shared fit phase of the encoded trial paths: runs the effective
    /// chain, fits the estimator, and returns the transformed (NaN-filled
    /// when needed) test matrix ready for prediction.
    fn fit_encoded(
        &mut self,
        train: &EncodedDataset,
        test: &EncodedDataset,
        cache: Option<&TransformCache>,
    ) -> Result<Arc<Matrix>> {
        if !self.spec.estimator.supports(train.task()) {
            return Err(LearnError::UnsupportedTask(self.spec.estimator.name()));
        }
        // Bare-estimator fast path: with no transformer steps and a NaN-free
        // training matrix, the effective chain is provably empty (no
        // implicit imputer can trigger), so the encoded matrices feed the
        // estimator directly — no chain-key hashing, no cache probes, no
        // per-trial NaN rescans.
        let bare = self.spec.transformers.is_empty() && !train.has_nan();
        let (x_train, x_test) = if bare {
            (Arc::clone(train.x()), Arc::clone(test.x()))
        } else {
            run_chain(&self.spec.transformers, train, test, cache)?
        };
        self.estimator.fit(&x_train, train.target(), train.task())?;
        self.task = Some(train.task());
        let test_has_nan = if bare {
            test.has_nan()
        } else {
            x_test.has_nan()
        };
        // Predict-time NaN fill, as in `transform` (clone only when needed).
        Ok(if test_has_nan {
            let mut filled = (*x_test).clone();
            for r in 0..filled.rows() {
                for c in 0..filled.cols() {
                    if filled.get(r, c).is_nan() {
                        filled.set(r, c, 0.0);
                    }
                }
            }
            Arc::new(filled)
        } else {
            x_test
        })
    }

    /// [`fit_predict_encoded`] + the paper's metric on the test split.
    ///
    /// [`fit_predict_encoded`]: Pipeline::fit_predict_encoded
    pub fn fit_score_encoded(
        &mut self,
        train: &EncodedDataset,
        valid: &EncodedDataset,
        cache: Option<&TransformCache>,
    ) -> Result<f64> {
        let pred = self.fit_predict_encoded(train, valid, cache)?;
        Ok(score_parts(valid.task(), valid.target(), &pred))
    }

    /// [`fit_score_encoded`] with the holdout predicted in blocks of
    /// `block_rows` rows: the metric accumulates through
    /// [`metrics::ScoreAccumulator`] as each block's predictions arrive, so
    /// no full prediction vector (or per-block matrix larger than
    /// `block_rows × cols`) is ever resident. Every estimator predicts
    /// row-independently and the accumulator replays the unstreamed metric's
    /// exact floating-point fold, so the score is bit-identical to
    /// [`fit_score_encoded`] at any block size.
    ///
    /// [`fit_score_encoded`]: Pipeline::fit_score_encoded
    pub fn fit_score_encoded_streamed(
        &mut self,
        train: &EncodedDataset,
        valid: &EncodedDataset,
        cache: Option<&TransformCache>,
        block_rows: usize,
    ) -> Result<f64> {
        let pred_input = self.fit_encoded(train, valid, cache)?;
        let block_rows = block_rows.max(1);
        let target = valid.target();
        let mut acc = match valid.task() {
            Task::Regression => metrics::ScoreAccumulator::regression(target),
            task => metrics::ScoreAccumulator::classification(task.num_classes().max(2)),
        };
        let mut at = 0usize;
        while at < pred_input.rows() {
            let len = block_rows.min(pred_input.rows() - at);
            let idx: Vec<usize> = (at..at + len).collect();
            let block = pred_input.take_rows(&idx);
            let pred = self.estimator.predict(&block)?;
            acc.push(&target[at..at + len], &pred);
            at += len;
        }
        Ok(acc.finish())
    }
}

/// Runs the *effective* transformer chain (implicit imputers included) on
/// pre-encoded train/test matrices, memoizing each chain prefix in `cache`
/// when given. Mirrors `Pipeline::fit` exactly: an imputer is prepended
/// when the training matrix has NaN and the user chain does not start with
/// one, and a defensive imputer is appended when NaN survives the chain.
fn run_chain(
    transformers: &[(TransformerKind, Params)],
    train: &EncodedDataset,
    test: &EncodedDataset,
    cache: Option<&TransformCache>,
) -> Result<(Arc<Matrix>, Arc<Matrix>)> {
    let mut x_train = Arc::clone(train.x());
    let mut x_test = Arc::clone(test.x());
    let mut roles: Arc<Vec<FeatureRole>> = Arc::clone(train.roles());
    let mut applied: Vec<StepId> = Vec::with_capacity(transformers.len() + 2);
    let default_params = Params::new();

    let mut apply = |kind: TransformerKind,
                     params: &Params,
                     x_train: &mut Arc<Matrix>,
                     x_test: &mut Arc<Matrix>,
                     roles: &mut Arc<Vec<FeatureRole>>|
     -> Result<()> {
        applied.push(StepId::new(kind, params));
        let key = cache.map(|_| ChainKey {
            train_fingerprint: train.fingerprint(),
            valid_fingerprint: test.fingerprint(),
            steps: applied.clone(),
        });
        if let (Some(cache), Some(key)) = (cache, key.as_ref()) {
            if let Some(state) = cache.get(key) {
                *x_train = state.x_train;
                *x_test = state.x_valid;
                *roles = state.roles;
                return Ok(());
            }
        }
        let mut step = build_transformer(kind, params)?;
        *roles = Arc::new(step.fit(x_train, train.target(), roles)?);
        *x_train = Arc::new(step.transform(x_train)?);
        *x_test = Arc::new(step.transform(x_test)?);
        if let (Some(cache), Some(key)) = (cache, key) {
            cache.insert(
                key,
                ChainState {
                    x_train: Arc::clone(x_train),
                    x_valid: Arc::clone(x_test),
                    roles: Arc::clone(roles),
                },
            );
        }
        Ok(())
    };

    let user_starts_with_imputer = transformers
        .first()
        .is_some_and(|(k, _)| *k == TransformerKind::SimpleImputer);
    // `x_train` is still the encoded matrix here, so the precomputed flag
    // answers the implicit-imputer question without a scan.
    if train.has_nan() && !user_starts_with_imputer {
        apply(
            TransformerKind::SimpleImputer,
            &default_params,
            &mut x_train,
            &mut x_test,
            &mut roles,
        )?;
    }
    for (kind, params) in transformers {
        apply(*kind, params, &mut x_train, &mut x_test, &mut roles)?;
    }
    if x_train.has_nan() {
        apply(
            TransformerKind::SimpleImputer,
            &default_params,
            &mut x_train,
            &mut x_test,
            &mut roles,
        )?;
    }
    Ok((x_train, x_test))
}

/// Scores predictions with the paper's metric for the dataset's task.
pub fn score_predictions(ds: &Dataset, pred: &[f64]) -> f64 {
    score_parts(ds.task, &ds.target, pred)
}

/// [`score_predictions`] for callers holding a task + target without a
/// `Dataset` (the encoded trial hot path).
pub fn score_parts(task: Task, target: &[f64], pred: &[f64]) -> f64 {
    match task {
        Task::Regression => metrics::r2(target, pred),
        task => metrics::macro_f1(target, pred, task.num_classes().max(2)),
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec.describe())
            .field("fitted", &self.task.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_tabular::{Column, DataFrame};

    fn toy_classification(n: usize) -> Dataset {
        // Class = x0 > 5, with a categorical helper and missing values.
        let x0: Vec<Option<f64>> = (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    None
                } else {
                    Some((i % 10) as f64)
                }
            })
            .collect();
        let cat: Vec<Option<&str>> = (0..n)
            .map(|i| Some(if i % 10 > 5 { "high" } else { "low" }))
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 10 > 5)).collect();
        let features = DataFrame::from_columns(vec![
            ("x0".to_string(), Column::numeric(x0)),
            ("cat".to_string(), Column::categorical(cat)),
        ])
        .unwrap();
        Dataset::new("toy", features, y, Task::Binary).unwrap()
    }

    fn toy_regression(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let features =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("toyreg", features, y, Task::Regression).unwrap()
    }

    #[test]
    fn bare_pipeline_handles_missing_values() {
        let ds = toy_classification(200);
        let mut p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::DecisionTree)).unwrap();
        p.fit(&ds).unwrap();
        let pred = p.predict(&ds).unwrap();
        assert!(metrics::macro_f1(&ds.target, &pred, 2) > 0.9);
    }

    #[test]
    fn chained_transformers_run_in_order() {
        let ds = toy_classification(200);
        let spec = PipelineSpec {
            transformers: vec![
                (TransformerKind::SimpleImputer, Params::new()),
                (TransformerKind::OneHotEncoder, Params::new()),
                (TransformerKind::StandardScaler, Params::new()),
            ],
            estimator: EstimatorKind::LogisticRegression,
            params: Params::new(),
        };
        let mut p = Pipeline::from_spec(spec).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.9, "score = {score}");
        assert_eq!(
            p.spec().describe(),
            "simple_imputer > one_hot_encoder > standard_scaler > logistic_regression"
        );
    }

    #[test]
    fn regression_pipeline_scores_r2() {
        let ds = toy_regression(100);
        let mut p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::Ridge)).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.999, "r2 = {score}");
    }

    #[test]
    fn unsupported_task_is_rejected_at_fit() {
        let ds = toy_regression(50);
        let mut p =
            Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::LogisticRegression)).unwrap();
        assert!(matches!(p.fit(&ds), Err(LearnError::UnsupportedTask(_))));
    }

    #[test]
    fn predict_before_fit_errors() {
        let ds = toy_regression(50);
        let p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::Ridge)).unwrap();
        assert!(matches!(p.predict(&ds), Err(LearnError::NotFitted(_))));
    }

    #[test]
    fn dimension_changing_transformers_compose() {
        let ds = toy_classification(150);
        let mut params = Params::new();
        params.insert("n_components".into(), 2.0);
        let spec = PipelineSpec {
            transformers: vec![
                (TransformerKind::PolynomialFeatures, Params::new()),
                (TransformerKind::Pca, params),
            ],
            estimator: EstimatorKind::Knn,
            params: Params::new(),
        };
        let mut p = Pipeline::from_spec(spec).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.7, "score = {score}");
    }

    #[test]
    fn streamed_encoded_score_is_bit_identical_at_any_block_size() {
        // toy_classification has missing values (implicit-imputer chain);
        // toy_regression is NaN-free and bare (the fast path).
        let cases = [
            (toy_classification(120), EstimatorKind::DecisionTree),
            (toy_regression(120), EstimatorKind::Ridge),
        ];
        for (ds, estimator) in cases {
            let train = EncodedDataset::from_dataset(&ds).unwrap();
            let valid = EncodedDataset::with_encoder(train.encoder(), &ds).unwrap();
            let mut p = Pipeline::from_spec(PipelineSpec::bare(estimator)).unwrap();
            let base = p.fit_score_encoded(&train, &valid, None).unwrap();
            for block_rows in [1, 7, 1000] {
                let mut q = Pipeline::from_spec(PipelineSpec::bare(estimator)).unwrap();
                let streamed = q
                    .fit_score_encoded_streamed(&train, &valid, None, block_rows)
                    .unwrap();
                assert_eq!(
                    streamed.to_bits(),
                    base.to_bits(),
                    "{} at block_rows {block_rows}",
                    estimator.name()
                );
            }
        }
    }

    #[test]
    fn score_predictions_dispatches_on_task() {
        let cls = toy_classification(60);
        let reg = toy_regression(60);
        assert!((score_predictions(&cls, &cls.target) - 1.0).abs() < 1e-12);
        assert!((score_predictions(&reg, &reg.target) - 1.0).abs() < 1e-12);
    }
}
