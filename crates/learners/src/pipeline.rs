//! Executable ML pipelines: a preprocessor chain plus an estimator.
//!
//! This is the runnable form of a KGpip "pipeline skeleton" (paper §3.6:
//! "each skeleton is a set of pre-processors and an estimator"). Fitting a
//! pipeline on a [`Dataset`]:
//!
//! 1. encodes the feature frame ([`FeatureEncoder`]: numeric passthrough,
//!    ordinal categorical codes, hashed text),
//! 2. guarantees NaN-free input by prepending a mean imputer whenever the
//!    encoded matrix still contains missing values and the user chain does
//!    not start with an imputer (paper §3.6 step 4: "imputing missing
//!    values"),
//! 3. fits each transformer in order, threading feature roles through,
//! 4. fits the estimator on the transformed matrix.

use crate::encode::FeatureEncoder;
use crate::estimators::{build_estimator, Estimator, EstimatorKind, Params};
use crate::matrix::Matrix;
use crate::preprocess::{build_transformer, Transformer, TransformerKind};
use crate::{metrics, LearnError, Result};
use kgpip_tabular::{Dataset, Task};

/// Declarative description of a pipeline: transformer steps then estimator,
/// each with hyperparameters. This is what HPO engines and the KGpip graph
/// generator produce.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Ordered preprocessor steps.
    pub transformers: Vec<(TransformerKind, Params)>,
    /// Final estimator.
    pub estimator: EstimatorKind,
    /// Estimator hyperparameters.
    pub params: Params,
}

impl PipelineSpec {
    /// A bare-estimator spec with default hyperparameters.
    pub fn bare(estimator: EstimatorKind) -> PipelineSpec {
        PipelineSpec {
            transformers: Vec::new(),
            estimator,
            params: Params::new(),
        }
    }

    /// Human-readable `transformer > ... > estimator` string.
    pub fn describe(&self) -> String {
        let mut parts: Vec<&'static str> =
            self.transformers.iter().map(|(k, _)| k.name()).collect();
        parts.push(self.estimator.name());
        parts.join(" > ")
    }
}

/// A fitted (or fittable) pipeline.
pub struct Pipeline {
    spec: PipelineSpec,
    encoder: Option<FeatureEncoder>,
    steps: Vec<Box<dyn Transformer>>,
    estimator: Box<dyn Estimator>,
    task: Option<Task>,
}

impl Pipeline {
    /// Instantiates a pipeline from a spec (estimator hyperparameters are
    /// validated here).
    pub fn from_spec(spec: PipelineSpec) -> Result<Pipeline> {
        let estimator = build_estimator(spec.estimator, &spec.params)?;
        Ok(Pipeline {
            spec,
            encoder: None,
            steps: Vec::new(),
            estimator,
            task: None,
        })
    }

    /// The spec this pipeline was built from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// Fits the full chain to a dataset.
    pub fn fit(&mut self, ds: &Dataset) -> Result<()> {
        if !self.spec.estimator.supports(ds.task) {
            return Err(LearnError::UnsupportedTask(self.spec.estimator.name()));
        }
        let encoder = FeatureEncoder::fit(&ds.features);
        let mut x = encoder.transform(&ds.features)?;
        let mut roles = encoder.roles().to_vec();
        self.encoder = Some(encoder);
        self.steps.clear();

        // Guarantee NaN-free input for estimators.
        let user_starts_with_imputer = self
            .spec
            .transformers
            .first()
            .is_some_and(|(k, _)| *k == TransformerKind::SimpleImputer);
        if x.has_nan() && !user_starts_with_imputer {
            let mut imputer = build_transformer(TransformerKind::SimpleImputer, &Params::new())?;
            roles = imputer.fit(&x, &ds.target, &roles)?;
            x = imputer.transform(&x)?;
            self.steps.push(imputer);
        }
        for (kind, params) in &self.spec.transformers {
            let mut step = build_transformer(*kind, params)?;
            roles = step.fit(&x, &ds.target, &roles)?;
            x = step.transform(&x)?;
            self.steps.push(step);
        }
        // A transformer chain can reintroduce nothing, but be defensive: the
        // estimator contract is NaN-free.
        if x.has_nan() {
            let mut imputer = build_transformer(TransformerKind::SimpleImputer, &Params::new())?;
            imputer.fit(&x, &ds.target, &roles)?;
            x = imputer.transform(&x)?;
            self.steps.push(imputer);
        }
        self.estimator.fit(&x, &ds.target, ds.task)?;
        self.task = Some(ds.task);
        Ok(())
    }

    /// Applies the fitted transformer chain to a feature frame.
    fn transform(&self, ds: &Dataset) -> Result<Matrix> {
        let encoder = self
            .encoder
            .as_ref()
            .ok_or(LearnError::NotFitted("pipeline"))?;
        let mut x = encoder.transform(&ds.features)?;
        for step in &self.steps {
            x = step.transform(&x)?;
        }
        // NaN can appear at predict time even if absent at fit time.
        if x.has_nan() {
            for r in 0..x.rows() {
                for c in 0..x.cols() {
                    if x.get(r, c).is_nan() {
                        x.set(r, c, 0.0);
                    }
                }
            }
        }
        Ok(x)
    }

    /// Predicts class indices / regression values for a dataset's features.
    pub fn predict(&self, ds: &Dataset) -> Result<Vec<f64>> {
        let x = self.transform(ds)?;
        self.estimator.predict(&x)
    }

    /// Predicts class probabilities (classification only).
    pub fn predict_proba(&self, ds: &Dataset) -> Result<Matrix> {
        let x = self.transform(ds)?;
        self.estimator.predict_proba(&x)
    }

    /// Fits on `train` and scores on `valid` with the paper's metrics:
    /// macro-F1 for classification, R² for regression.
    pub fn fit_score(&mut self, train: &Dataset, valid: &Dataset) -> Result<f64> {
        self.fit(train)?;
        let pred = self.predict(valid)?;
        Ok(score_predictions(valid, &pred))
    }
}

/// Scores predictions with the paper's metric for the dataset's task.
pub fn score_predictions(ds: &Dataset, pred: &[f64]) -> f64 {
    match ds.task {
        Task::Regression => metrics::r2(&ds.target, pred),
        task => metrics::macro_f1(&ds.target, pred, task.num_classes().max(2)),
    }
}

impl std::fmt::Debug for Pipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pipeline")
            .field("spec", &self.spec.describe())
            .field("fitted", &self.task.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_tabular::{Column, DataFrame};

    fn toy_classification(n: usize) -> Dataset {
        // Class = x0 > 5, with a categorical helper and missing values.
        let x0: Vec<Option<f64>> = (0..n)
            .map(|i| {
                if i % 17 == 0 {
                    None
                } else {
                    Some((i % 10) as f64)
                }
            })
            .collect();
        let cat: Vec<Option<&str>> = (0..n)
            .map(|i| Some(if i % 10 > 5 { "high" } else { "low" }))
            .collect();
        let y: Vec<f64> = (0..n).map(|i| f64::from(i % 10 > 5)).collect();
        let features = DataFrame::from_columns(vec![
            ("x0".to_string(), Column::numeric(x0)),
            ("cat".to_string(), Column::categorical(cat)),
        ])
        .unwrap();
        Dataset::new("toy", features, y, Task::Binary).unwrap()
    }

    fn toy_regression(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let features =
            DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        Dataset::new("toyreg", features, y, Task::Regression).unwrap()
    }

    #[test]
    fn bare_pipeline_handles_missing_values() {
        let ds = toy_classification(200);
        let mut p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::DecisionTree)).unwrap();
        p.fit(&ds).unwrap();
        let pred = p.predict(&ds).unwrap();
        assert!(metrics::macro_f1(&ds.target, &pred, 2) > 0.9);
    }

    #[test]
    fn chained_transformers_run_in_order() {
        let ds = toy_classification(200);
        let spec = PipelineSpec {
            transformers: vec![
                (TransformerKind::SimpleImputer, Params::new()),
                (TransformerKind::OneHotEncoder, Params::new()),
                (TransformerKind::StandardScaler, Params::new()),
            ],
            estimator: EstimatorKind::LogisticRegression,
            params: Params::new(),
        };
        let mut p = Pipeline::from_spec(spec).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.9, "score = {score}");
        assert_eq!(
            p.spec().describe(),
            "simple_imputer > one_hot_encoder > standard_scaler > logistic_regression"
        );
    }

    #[test]
    fn regression_pipeline_scores_r2() {
        let ds = toy_regression(100);
        let mut p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::Ridge)).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.999, "r2 = {score}");
    }

    #[test]
    fn unsupported_task_is_rejected_at_fit() {
        let ds = toy_regression(50);
        let mut p =
            Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::LogisticRegression)).unwrap();
        assert!(matches!(p.fit(&ds), Err(LearnError::UnsupportedTask(_))));
    }

    #[test]
    fn predict_before_fit_errors() {
        let ds = toy_regression(50);
        let p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::Ridge)).unwrap();
        assert!(matches!(p.predict(&ds), Err(LearnError::NotFitted(_))));
    }

    #[test]
    fn dimension_changing_transformers_compose() {
        let ds = toy_classification(150);
        let mut params = Params::new();
        params.insert("n_components".into(), 2.0);
        let spec = PipelineSpec {
            transformers: vec![
                (TransformerKind::PolynomialFeatures, Params::new()),
                (TransformerKind::Pca, params),
            ],
            estimator: EstimatorKind::Knn,
            params: Params::new(),
        };
        let mut p = Pipeline::from_spec(spec).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        assert!(score > 0.7, "score = {score}");
    }

    #[test]
    fn score_predictions_dispatches_on_task() {
        let cls = toy_classification(60);
        let reg = toy_regression(60);
        assert!((score_predictions(&cls, &cls.target) - 1.0).abs() < 1e-12);
        assert!((score_predictions(&reg, &reg.target) - 1.0).abs() < 1e-12);
    }
}
