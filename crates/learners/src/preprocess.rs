//! Preprocessing transformers — the "transformer" half of KGpip's pipeline
//! vocabulary (paper Figures 8–9 list scalers, one-hot encoding, PCA,
//! feature selection among the mined transformers).
//!
//! All transformers implement [`Transformer`]: `fit` observes training data
//! (and the target, for supervised selectors) and returns the output
//! feature roles; `transform` maps matrices of the fitted width.

use crate::encode::FeatureRole;
use crate::matrix::Matrix;
use crate::{LearnError, Result};
use std::collections::BTreeMap;

/// Identifier of a transformer family. The names mirror the
/// sklearn-equivalent vocabulary mined from notebooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TransformerKind {
    /// Mean/median/mode imputation of NaN cells.
    SimpleImputer,
    /// Zero-mean unit-variance scaling.
    StandardScaler,
    /// Min-max scaling to [0, 1].
    MinMaxScaler,
    /// Median/IQR scaling, robust to outliers.
    RobustScaler,
    /// Row-wise L2 normalization.
    Normalizer,
    /// One-hot expansion of categorical code columns.
    OneHotEncoder,
    /// Drops features with variance below a threshold.
    VarianceThreshold,
    /// Keeps the k features most correlated with the target.
    SelectKBest,
    /// Principal component analysis projection.
    Pca,
    /// Degree-2 polynomial interaction features.
    PolynomialFeatures,
}

impl TransformerKind {
    /// All transformer kinds, in a stable order.
    pub const ALL: [TransformerKind; 10] = [
        TransformerKind::SimpleImputer,
        TransformerKind::StandardScaler,
        TransformerKind::MinMaxScaler,
        TransformerKind::RobustScaler,
        TransformerKind::Normalizer,
        TransformerKind::OneHotEncoder,
        TransformerKind::VarianceThreshold,
        TransformerKind::SelectKBest,
        TransformerKind::Pca,
        TransformerKind::PolynomialFeatures,
    ];

    /// Canonical snake_case name (matches the mined-pipeline vocabulary).
    pub fn name(&self) -> &'static str {
        match self {
            TransformerKind::SimpleImputer => "simple_imputer",
            TransformerKind::StandardScaler => "standard_scaler",
            TransformerKind::MinMaxScaler => "min_max_scaler",
            TransformerKind::RobustScaler => "robust_scaler",
            TransformerKind::Normalizer => "normalizer",
            TransformerKind::OneHotEncoder => "one_hot_encoder",
            TransformerKind::VarianceThreshold => "variance_threshold",
            TransformerKind::SelectKBest => "select_k_best",
            TransformerKind::Pca => "pca",
            TransformerKind::PolynomialFeatures => "polynomial_features",
        }
    }

    /// Parses a canonical name back into a kind.
    pub fn from_name(name: &str) -> Option<TransformerKind> {
        TransformerKind::ALL
            .iter()
            .copied()
            .find(|k| k.name() == name)
    }
}

impl std::fmt::Display for TransformerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Flat numeric hyperparameter map (shared with estimators).
pub type TParams = BTreeMap<String, f64>;

/// A fit/transform preprocessor.
pub trait Transformer: Send + Sync {
    /// Fits to training data, returning the roles of the output columns.
    /// `y` is used only by supervised selectors.
    fn fit(&mut self, x: &Matrix, y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>>;
    /// Transforms a matrix with the fitted state.
    fn transform(&self, x: &Matrix) -> Result<Matrix>;
    /// Canonical name.
    fn name(&self) -> &'static str;
}

/// Builds a transformer of the given kind from a flat parameter map.
/// Unknown parameters are ignored; out-of-domain values error.
pub fn build_transformer(kind: TransformerKind, params: &TParams) -> Result<Box<dyn Transformer>> {
    let get = |key: &str, default: f64| params.get(key).copied().unwrap_or(default);
    Ok(match kind {
        TransformerKind::SimpleImputer => {
            let strategy = get("strategy", 0.0);
            if !(0.0..=2.0).contains(&strategy) {
                return Err(LearnError::InvalidParam(format!(
                    "simple_imputer strategy must be 0 (mean), 1 (median) or 2 (mode), got {strategy}"
                )));
            }
            Box::new(SimpleImputer::new(strategy as u8))
        }
        TransformerKind::StandardScaler => Box::new(StandardScaler::default()),
        TransformerKind::MinMaxScaler => Box::new(MinMaxScaler::default()),
        TransformerKind::RobustScaler => Box::new(RobustScaler::default()),
        TransformerKind::Normalizer => Box::new(Normalizer),
        TransformerKind::OneHotEncoder => {
            Box::new(OneHotEncoder::new(get("max_cardinality", 32.0) as usize))
        }
        TransformerKind::VarianceThreshold => {
            let t = get("threshold", 0.0);
            if t < 0.0 {
                return Err(LearnError::InvalidParam(format!(
                    "variance_threshold must be >= 0, got {t}"
                )));
            }
            Box::new(VarianceThreshold::new(t))
        }
        TransformerKind::SelectKBest => {
            let k = get("k", 10.0);
            if k < 1.0 {
                return Err(LearnError::InvalidParam(format!(
                    "select_k_best k must be >= 1, got {k}"
                )));
            }
            Box::new(SelectKBest::new(k as usize))
        }
        TransformerKind::Pca => {
            let n = get("n_components", 8.0);
            if n < 1.0 {
                return Err(LearnError::InvalidParam(format!(
                    "pca n_components must be >= 1, got {n}"
                )));
            }
            Box::new(Pca::new(n as usize))
        }
        TransformerKind::PolynomialFeatures => {
            Box::new(PolynomialFeatures::new(get("max_output", 64.0) as usize))
        }
    })
}

fn check_width(name: &'static str, x: &Matrix, expected: usize) -> Result<()> {
    if x.cols() != expected {
        return Err(LearnError::Shape(format!(
            "{name}: expected {expected} columns, got {}",
            x.cols()
        )));
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// SimpleImputer
// ---------------------------------------------------------------------------

/// Fills NaN cells with a per-column statistic: 0 = mean, 1 = median,
/// 2 = most frequent.
#[derive(Debug)]
pub struct SimpleImputer {
    strategy: u8,
    fill: Vec<f64>,
}

impl SimpleImputer {
    /// Creates an imputer with the given strategy code.
    pub fn new(strategy: u8) -> Self {
        SimpleImputer {
            strategy,
            fill: Vec::new(),
        }
    }
}

impl Transformer for SimpleImputer {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.fill = (0..x.cols())
            .map(|c| {
                let present: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
                if present.is_empty() {
                    return 0.0;
                }
                match self.strategy {
                    1 => {
                        let mut s = present.clone();
                        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
                        s[s.len() / 2]
                    }
                    2 => {
                        let mut counts: BTreeMap<u64, (usize, f64)> = BTreeMap::new();
                        for v in &present {
                            let e = counts.entry(v.to_bits()).or_insert((0, *v));
                            e.0 += 1;
                        }
                        counts
                            .values()
                            .max_by_key(|(n, _)| *n)
                            .map(|(_, v)| *v)
                            .unwrap_or(0.0)
                    }
                    _ => present.iter().sum::<f64>() / present.len() as f64,
                }
            })
            .collect();
        Ok(roles.to_vec())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("simple_imputer", x, self.fill.len())?;
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                if out.get(r, c).is_nan() {
                    out.set(r, c, self.fill[c]);
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "simple_imputer"
    }
}

// ---------------------------------------------------------------------------
// Scalers
// ---------------------------------------------------------------------------

/// Zero-mean, unit-variance scaling per column (NaN-aware at fit).
#[derive(Debug, Default)]
pub struct StandardScaler {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Transformer for StandardScaler {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.mean.clear();
        self.std.clear();
        for c in 0..x.cols() {
            let vals: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            let n = vals.len().max(1) as f64;
            let mean = vals.iter().sum::<f64>() / n;
            let var = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
            self.mean.push(mean);
            self.std.push(var.sqrt().max(1e-12));
        }
        Ok(roles.to_vec())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("standard_scaler", x, self.mean.len())?;
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c);
                out.set(r, c, (v - self.mean[c]) / self.std[c]);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "standard_scaler"
    }
}

/// Min-max scaling of each column to [0, 1].
#[derive(Debug, Default)]
pub struct MinMaxScaler {
    min: Vec<f64>,
    range: Vec<f64>,
}

impl Transformer for MinMaxScaler {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.min.clear();
        self.range.clear();
        for c in 0..x.cols() {
            let vals: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            let min = vals.iter().copied().fold(f64::INFINITY, f64::min);
            let max = vals.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let (min, max) = if min.is_finite() {
                (min, max)
            } else {
                (0.0, 1.0)
            };
            self.min.push(min);
            self.range.push((max - min).max(1e-12));
        }
        Ok(roles.to_vec())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("min_max_scaler", x, self.min.len())?;
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c);
                out.set(r, c, (v - self.min[c]) / self.range[c]);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "min_max_scaler"
    }
}

/// Median/IQR scaling, robust to outliers.
#[derive(Debug, Default)]
pub struct RobustScaler {
    median: Vec<f64>,
    iqr: Vec<f64>,
}

impl Transformer for RobustScaler {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.median.clear();
        self.iqr.clear();
        for c in 0..x.cols() {
            let mut vals: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            if vals.is_empty() {
                self.median.push(0.0);
                self.iqr.push(1.0);
                continue;
            }
            vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q =
                |p: f64| vals[((p * (vals.len() - 1) as f64).round() as usize).min(vals.len() - 1)];
            self.median.push(q(0.5));
            self.iqr.push((q(0.75) - q(0.25)).max(1e-12));
        }
        Ok(roles.to_vec())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("robust_scaler", x, self.median.len())?;
        let mut out = x.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                let v = out.get(r, c);
                out.set(r, c, (v - self.median[c]) / self.iqr[c]);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "robust_scaler"
    }
}

/// Row-wise L2 normalization (stateless).
#[derive(Debug)]
pub struct Normalizer;

impl Transformer for Normalizer {
    fn fit(&mut self, _x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        Ok(roles.to_vec())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        let mut out = x.clone();
        for r in 0..out.rows() {
            let norm = out.row(r).iter().map(|v| v * v).sum::<f64>().sqrt();
            if norm > 1e-12 {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "normalizer"
    }
}

// ---------------------------------------------------------------------------
// OneHotEncoder
// ---------------------------------------------------------------------------

/// Expands categorical-code columns (cardinality ≤ `max_cardinality`) into
/// one-hot indicator groups; other columns pass through. Codes unseen at
/// fit time (or NaN) produce an all-zero group.
#[derive(Debug)]
pub struct OneHotEncoder {
    max_cardinality: usize,
    /// Per input column: None = passthrough, Some(k) = expand to k dims.
    plan: Vec<Option<usize>>,
}

impl OneHotEncoder {
    /// Creates an encoder expanding columns up to the given cardinality.
    pub fn new(max_cardinality: usize) -> Self {
        OneHotEncoder {
            max_cardinality: max_cardinality.max(2),
            plan: Vec::new(),
        }
    }
}

impl Transformer for OneHotEncoder {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        if roles.len() != x.cols() {
            return Err(LearnError::Shape(format!(
                "one_hot_encoder: {} roles for {} columns",
                roles.len(),
                x.cols()
            )));
        }
        self.plan = roles
            .iter()
            .map(|role| match role {
                FeatureRole::CategoricalCode { cardinality }
                    if *cardinality >= 2 && *cardinality <= self.max_cardinality =>
                {
                    Some(*cardinality)
                }
                _ => None,
            })
            .collect();
        let mut out_roles = Vec::new();
        for (role, plan) in roles.iter().zip(&self.plan) {
            match plan {
                Some(k) => out_roles.extend(std::iter::repeat_n(FeatureRole::Numeric, *k)),
                None => out_roles.push(*role),
            }
        }
        Ok(out_roles)
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("one_hot_encoder", x, self.plan.len())?;
        let out_cols: usize = self.plan.iter().map(|p| p.unwrap_or(1)).sum();
        let mut out = Matrix::zeros(x.rows(), out_cols);
        for r in 0..x.rows() {
            let mut c_out = 0usize;
            for (c_in, plan) in self.plan.iter().enumerate() {
                let v = x.get(r, c_in);
                match plan {
                    Some(k) => {
                        if !v.is_nan() {
                            let code = v as usize;
                            if v >= 0.0 && code < *k {
                                out.set(r, c_out + code, 1.0);
                            }
                        }
                        c_out += k;
                    }
                    None => {
                        out.set(r, c_out, v);
                        c_out += 1;
                    }
                }
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "one_hot_encoder"
    }
}

// ---------------------------------------------------------------------------
// VarianceThreshold
// ---------------------------------------------------------------------------

/// Drops features whose training variance is at or below a threshold. If
/// every feature would be dropped, the highest-variance one is kept so the
/// pipeline still produces a usable matrix.
#[derive(Debug)]
pub struct VarianceThreshold {
    threshold: f64,
    keep: Vec<usize>,
    fitted_cols: usize,
}

impl VarianceThreshold {
    /// Creates a filter with the given variance threshold.
    pub fn new(threshold: f64) -> Self {
        VarianceThreshold {
            threshold,
            keep: Vec::new(),
            fitted_cols: 0,
        }
    }
}

impl Transformer for VarianceThreshold {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.fitted_cols = x.cols();
        let mut variances = Vec::with_capacity(x.cols());
        for c in 0..x.cols() {
            let vals: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
            let n = vals.len().max(1) as f64;
            let mean = vals.iter().sum::<f64>() / n;
            variances.push(vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n);
        }
        self.keep = (0..x.cols())
            .filter(|&c| variances[c] > self.threshold)
            .collect();
        if self.keep.is_empty() && x.cols() > 0 {
            let best = variances
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap_or(0);
            self.keep.push(best);
        }
        Ok(self.keep.iter().map(|&c| roles[c]).collect())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("variance_threshold", x, self.fitted_cols)?;
        Ok(x.take_cols(&self.keep))
    }

    fn name(&self) -> &'static str {
        "variance_threshold"
    }
}

// ---------------------------------------------------------------------------
// SelectKBest
// ---------------------------------------------------------------------------

/// Keeps the `k` features with the highest absolute Pearson correlation
/// with the target (a univariate filter in the spirit of sklearn's
/// `SelectKBest(f_classif)`).
#[derive(Debug)]
pub struct SelectKBest {
    k: usize,
    keep: Vec<usize>,
    fitted_cols: usize,
}

impl SelectKBest {
    /// Creates a selector keeping `k` features.
    pub fn new(k: usize) -> Self {
        SelectKBest {
            k: k.max(1),
            keep: Vec::new(),
            fitted_cols: 0,
        }
    }
}

impl Transformer for SelectKBest {
    fn fit(&mut self, x: &Matrix, y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        if y.len() != x.rows() {
            return Err(LearnError::Shape(format!(
                "select_k_best: target length {} != rows {}",
                y.len(),
                x.rows()
            )));
        }
        self.fitted_cols = x.cols();
        let n = x.rows().max(1) as f64;
        let y_mean = y.iter().sum::<f64>() / n;
        let y_std = (y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n).sqrt();
        let mut scored: Vec<(usize, f64)> = (0..x.cols())
            .map(|c| {
                let col = x.col(c);
                let vals: Vec<f64> = col
                    .iter()
                    .map(|v| if v.is_nan() { 0.0 } else { *v })
                    .collect();
                let mean = vals.iter().sum::<f64>() / n;
                let std = (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n).sqrt();
                if std < 1e-12 || y_std < 1e-12 {
                    return (c, 0.0);
                }
                let cov = vals
                    .iter()
                    .zip(y)
                    .map(|(v, t)| (v - mean) * (t - y_mean))
                    .sum::<f64>()
                    / n;
                (c, (cov / (std * y_std)).abs())
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        self.keep = scored
            .iter()
            .take(self.k.min(x.cols()))
            .map(|(c, _)| *c)
            .collect();
        self.keep.sort_unstable();
        Ok(self.keep.iter().map(|&c| roles[c]).collect())
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("select_k_best", x, self.fitted_cols)?;
        Ok(x.take_cols(&self.keep))
    }

    fn name(&self) -> &'static str {
        "select_k_best"
    }
}

// ---------------------------------------------------------------------------
// PCA
// ---------------------------------------------------------------------------

/// Principal component analysis via Jacobi eigendecomposition of the
/// covariance matrix. Input is centered; components are ordered by
/// decreasing eigenvalue.
#[derive(Debug)]
pub struct Pca {
    n_components: usize,
    mean: Vec<f64>,
    /// Row-major (n_components × input_dims) projection.
    components: Vec<f64>,
    input_dims: usize,
    out_dims: usize,
}

impl Pca {
    /// Creates a PCA projecting onto up to `n_components` components.
    pub fn new(n_components: usize) -> Self {
        Pca {
            n_components: n_components.max(1),
            mean: Vec::new(),
            components: Vec::new(),
            input_dims: 0,
            out_dims: 0,
        }
    }
}

/// Jacobi eigendecomposition of a symmetric matrix stored row-major.
/// Returns (eigenvalues, row-major eigenvector matrix with eigenvectors in
/// columns).
fn jacobi_eigen(a: &mut [f64], n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut v = vec![0.0; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }
    for _sweep in 0..64 {
        // Largest off-diagonal magnitude.
        let mut off = 0.0f64;
        for i in 0..n {
            for j in i + 1..n {
                off = off.max(a[i * n + j].abs());
            }
        }
        if off < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-15 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = 0.5 * (aqq - app) / apq;
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let eigenvalues: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    (eigenvalues, v)
}

impl Transformer for Pca {
    fn fit(&mut self, x: &Matrix, _y: &[f64], _roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        let d = x.cols();
        self.input_dims = d;
        let n = x.rows().max(1) as f64;
        self.mean = (0..d)
            .map(|c| {
                let vals: Vec<f64> = x.col(c).into_iter().filter(|v| !v.is_nan()).collect();
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            })
            .collect();
        // Covariance of centered data (NaN treated as the mean → zero after
        // centering).
        let mut cov = vec![0.0f64; d * d];
        for r in 0..x.rows() {
            let row: Vec<f64> = (0..d)
                .map(|c| {
                    let v = x.get(r, c);
                    if v.is_nan() {
                        0.0
                    } else {
                        v - self.mean[c]
                    }
                })
                .collect();
            for i in 0..d {
                if row[i] == 0.0 {
                    continue;
                }
                for j in i..d {
                    cov[i * d + j] += row[i] * row[j];
                }
            }
        }
        for i in 0..d {
            for j in 0..i {
                cov[i * d + j] = cov[j * d + i];
            }
        }
        for v in &mut cov {
            *v /= n;
        }
        let (eigenvalues, vecs) = jacobi_eigen(&mut cov, d);
        let mut order: Vec<usize> = (0..d).collect();
        order.sort_by(|&a, &b| eigenvalues[b].partial_cmp(&eigenvalues[a]).unwrap());
        self.out_dims = self.n_components.min(d);
        self.components = Vec::with_capacity(self.out_dims * d);
        for &k in order.iter().take(self.out_dims) {
            for i in 0..d {
                self.components.push(vecs[i * d + k]);
            }
        }
        Ok(vec![FeatureRole::Numeric; self.out_dims])
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("pca", x, self.input_dims)?;
        let d = self.input_dims;
        let mut out = Matrix::zeros(x.rows(), self.out_dims);
        for r in 0..x.rows() {
            for k in 0..self.out_dims {
                let mut acc = 0.0;
                for i in 0..d {
                    let v = x.get(r, i);
                    let centered = if v.is_nan() { 0.0 } else { v - self.mean[i] };
                    acc += centered * self.components[k * d + i];
                }
                out.set(r, k, acc);
            }
        }
        Ok(out)
    }

    fn name(&self) -> &'static str {
        "pca"
    }
}

// ---------------------------------------------------------------------------
// PolynomialFeatures
// ---------------------------------------------------------------------------

/// Appends degree-2 interaction and square terms, capped at `max_output`
/// total output columns (original features always kept).
#[derive(Debug)]
pub struct PolynomialFeatures {
    max_output: usize,
    pairs: Vec<(usize, usize)>,
    fitted_cols: usize,
}

impl PolynomialFeatures {
    /// Creates the expansion with an output-width cap.
    pub fn new(max_output: usize) -> Self {
        PolynomialFeatures {
            max_output: max_output.max(1),
            pairs: Vec::new(),
            fitted_cols: 0,
        }
    }
}

impl Transformer for PolynomialFeatures {
    fn fit(&mut self, x: &Matrix, _y: &[f64], roles: &[FeatureRole]) -> Result<Vec<FeatureRole>> {
        self.fitted_cols = x.cols();
        self.pairs.clear();
        let budget = self.max_output.saturating_sub(x.cols());
        'outer: for i in 0..x.cols() {
            for j in i..x.cols() {
                if self.pairs.len() >= budget {
                    break 'outer;
                }
                self.pairs.push((i, j));
            }
        }
        let mut out_roles = roles.to_vec();
        out_roles.extend(std::iter::repeat_n(FeatureRole::Numeric, self.pairs.len()));
        Ok(out_roles)
    }

    fn transform(&self, x: &Matrix) -> Result<Matrix> {
        check_width("polynomial_features", x, self.fitted_cols)?;
        let extra = Matrix::from_rows(
            &(0..x.rows())
                .map(|r| {
                    let row = x.row(r);
                    self.pairs.iter().map(|&(i, j)| row[i] * row[j]).collect()
                })
                .collect::<Vec<Vec<f64>>>(),
        )?;
        if extra.cols() == 0 {
            return Ok(x.clone());
        }
        x.hcat(&extra)
    }

    fn name(&self) -> &'static str {
        "polynomial_features"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roles_numeric(n: usize) -> Vec<FeatureRole> {
        vec![FeatureRole::Numeric; n]
    }

    #[test]
    fn imputer_mean_median_mode() {
        // Column 0: [NaN, 1, 3, 5, 3] -> mean 3, median 3, mode 3.
        // Column 1: [NaN, 0, 0, 9, 0] -> mean 2.25, median 0, mode 0.
        let x = Matrix::from_vec(
            vec![f64::NAN, f64::NAN, 1.0, 0.0, 3.0, 0.0, 5.0, 9.0, 3.0, 0.0],
            5,
            2,
        )
        .unwrap();
        for (strategy, e0, e1) in [(0u8, 3.0, 2.25), (1, 3.0, 0.0), (2, 3.0, 0.0)] {
            let mut imp = SimpleImputer::new(strategy);
            imp.fit(&x, &[], &roles_numeric(2)).unwrap();
            let out = imp.transform(&x).unwrap();
            assert!(!out.has_nan());
            assert_eq!(out.get(0, 0), e0, "strategy {strategy} col0");
            assert_eq!(out.get(0, 1), e1, "strategy {strategy} col1");
        }
    }

    #[test]
    fn standard_scaler_zero_mean_unit_var() {
        let x = Matrix::from_vec(vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0], 3, 2).unwrap();
        let mut s = StandardScaler::default();
        s.fit(&x, &[], &roles_numeric(2)).unwrap();
        let out = s.transform(&x).unwrap();
        for c in 0..2 {
            let col = out.col(c);
            let mean: f64 = col.iter().sum::<f64>() / 3.0;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn minmax_scaler_bounds() {
        let x = Matrix::from_vec(vec![-5.0, 0.0, 5.0], 3, 1).unwrap();
        let mut s = MinMaxScaler::default();
        s.fit(&x, &[], &roles_numeric(1)).unwrap();
        let out = s.transform(&x).unwrap();
        assert_eq!(out.col(0), vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn robust_scaler_ignores_outlier() {
        let x = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0, 1000.0], 5, 1).unwrap();
        let mut s = RobustScaler::default();
        s.fit(&x, &[], &roles_numeric(1)).unwrap();
        let out = s.transform(&x).unwrap();
        // Median 3, IQR = q75-q25 = 4-2 = 2; so 1000 -> huge, 3 -> 0.
        assert_eq!(out.get(2, 0), 0.0);
        assert!(out.get(4, 0) > 100.0);
    }

    #[test]
    fn normalizer_unit_rows() {
        let x = Matrix::from_vec(vec![3.0, 4.0, 0.0, 0.0], 2, 2).unwrap();
        let out = Normalizer.transform(&x).unwrap();
        assert!((out.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((out.get(0, 1) - 0.8).abs() < 1e-12);
        // Zero rows are left untouched.
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn one_hot_expands_categorical_codes_only() {
        let x = Matrix::from_vec(vec![0.0, 7.5, 1.0, 8.5, 2.0, 9.5], 3, 2).unwrap();
        let roles = vec![
            FeatureRole::CategoricalCode { cardinality: 3 },
            FeatureRole::Numeric,
        ];
        let mut enc = OneHotEncoder::new(32);
        let out_roles = enc.fit(&x, &[], &roles).unwrap();
        assert_eq!(out_roles.len(), 4);
        let out = enc.transform(&x).unwrap();
        assert_eq!(out.row(0), &[1.0, 0.0, 0.0, 7.5]);
        assert_eq!(out.row(2), &[0.0, 0.0, 1.0, 9.5]);
    }

    #[test]
    fn one_hot_unseen_code_is_all_zero() {
        let x = Matrix::from_vec(vec![0.0, 1.0], 2, 1).unwrap();
        let roles = vec![FeatureRole::CategoricalCode { cardinality: 2 }];
        let mut enc = OneHotEncoder::new(32);
        enc.fit(&x, &[], &roles).unwrap();
        let test = Matrix::from_vec(vec![5.0, f64::NAN], 2, 1).unwrap();
        let out = enc.transform(&test).unwrap();
        assert_eq!(out.row(0), &[0.0, 0.0]);
        assert_eq!(out.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn one_hot_skips_high_cardinality() {
        let x = Matrix::zeros(2, 1);
        let roles = vec![FeatureRole::CategoricalCode { cardinality: 100 }];
        let mut enc = OneHotEncoder::new(32);
        let out_roles = enc.fit(&x, &[], &roles).unwrap();
        assert_eq!(out_roles, roles, "high-cardinality passes through");
    }

    #[test]
    fn variance_threshold_drops_constant() {
        let x = Matrix::from_vec(vec![5.0, 1.0, 5.0, 2.0, 5.0, 3.0], 3, 2).unwrap();
        let mut vt = VarianceThreshold::new(0.0);
        let out_roles = vt.fit(&x, &[], &roles_numeric(2)).unwrap();
        assert_eq!(out_roles.len(), 1);
        let out = vt.transform(&x).unwrap();
        assert_eq!(out.col(0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn variance_threshold_keeps_best_when_all_would_drop() {
        let x = Matrix::from_vec(vec![1.0, 5.0, 1.0, 5.0], 2, 2).unwrap();
        let mut vt = VarianceThreshold::new(100.0);
        let out_roles = vt.fit(&x, &[], &roles_numeric(2)).unwrap();
        assert_eq!(out_roles.len(), 1, "never emits an empty matrix");
    }

    #[test]
    fn select_k_best_prefers_correlated_feature() {
        // Feature 0 = y exactly, feature 1 = noise-ish constant pattern.
        let y = vec![1.0, 2.0, 3.0, 4.0];
        let x = Matrix::from_vec(vec![1.0, 9.0, 2.0, 1.0, 3.0, 9.0, 4.0, 1.0], 4, 2).unwrap();
        let mut sel = SelectKBest::new(1);
        sel.fit(&x, &y, &roles_numeric(2)).unwrap();
        let out = sel.transform(&x).unwrap();
        assert_eq!(out.col(0), y);
    }

    #[test]
    fn pca_finds_dominant_direction() {
        // Points along y = x; first component should capture ~all variance.
        let rows: Vec<Vec<f64>> = (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                vec![t, t + 0.001 * ((i % 3) as f64)]
            })
            .collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut pca = Pca::new(1);
        let out_roles = pca.fit(&x, &[], &roles_numeric(2)).unwrap();
        assert_eq!(out_roles.len(), 1);
        let out = pca.transform(&x).unwrap();
        // Projection variance should be close to total variance of the data.
        let proj = out.col(0);
        let mean = proj.iter().sum::<f64>() / proj.len() as f64;
        let var_proj: f64 =
            proj.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / proj.len() as f64;
        let total_var: f64 = (0..2)
            .map(|c| {
                let col = x.col(c);
                let m = col.iter().sum::<f64>() / col.len() as f64;
                col.iter().map(|v| (v - m).powi(2)).sum::<f64>() / col.len() as f64
            })
            .sum();
        assert!(var_proj / total_var > 0.99);
    }

    #[test]
    fn pca_caps_components_at_input_dims() {
        let x = Matrix::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let mut pca = Pca::new(10);
        let out_roles = pca.fit(&x, &[], &roles_numeric(2)).unwrap();
        assert_eq!(out_roles.len(), 2);
    }

    #[test]
    fn polynomial_features_appends_products() {
        let x = Matrix::from_vec(vec![2.0, 3.0], 1, 2).unwrap();
        let mut poly = PolynomialFeatures::new(10);
        let out_roles = poly.fit(&x, &[], &roles_numeric(2)).unwrap();
        // 2 original + 3 pairs (0,0), (0,1), (1,1).
        assert_eq!(out_roles.len(), 5);
        let out = poly.transform(&x).unwrap();
        assert_eq!(out.row(0), &[2.0, 3.0, 4.0, 6.0, 9.0]);
    }

    #[test]
    fn polynomial_features_respects_cap() {
        let x = Matrix::zeros(1, 10);
        let mut poly = PolynomialFeatures::new(12);
        let out_roles = poly.fit(&x, &[], &roles_numeric(10)).unwrap();
        assert_eq!(out_roles.len(), 12);
    }

    #[test]
    fn build_transformer_validates_params() {
        let mut p = TParams::new();
        p.insert("threshold".into(), -1.0);
        assert!(build_transformer(TransformerKind::VarianceThreshold, &p).is_err());
        p.clear();
        p.insert("k".into(), 0.0);
        assert!(build_transformer(TransformerKind::SelectKBest, &p).is_err());
        assert!(build_transformer(TransformerKind::StandardScaler, &TParams::new()).is_ok());
    }

    #[test]
    fn kind_name_roundtrip() {
        for kind in TransformerKind::ALL {
            assert_eq!(TransformerKind::from_name(kind.name()), Some(kind));
        }
        assert_eq!(TransformerKind::from_name("nope"), None);
    }

    #[test]
    fn transform_rejects_wrong_width() {
        let x = Matrix::zeros(2, 3);
        let mut s = StandardScaler::default();
        s.fit(&x, &[], &roles_numeric(3)).unwrap();
        assert!(s.transform(&Matrix::zeros(2, 2)).is_err());
    }
}
