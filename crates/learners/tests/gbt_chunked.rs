//! Chunk-streaming GBT fit identity (mirrors `gbt_determinism.rs`).
//!
//! `fit_chunked` bins each chunk against sample-fit edges instead of
//! materializing the dense matrix. Whenever the edge sample covers every
//! row, the fitted model — and every prediction — must be bit-for-bit
//! identical to the dense fit at any chunk size; above the bound the model
//! may differ from the dense fit (the edges are approximate) but must
//! still be invariant to the chunk size.

use kgpip_learners::estimators::gbt::{GbtConfig, GradientBoosting};
use kgpip_learners::{ChunkedMatrix, Estimator, EstimatorKind, Matrix};
use kgpip_tabular::Task;

const FEATURES: usize = 8;

fn matrix(n: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..FEATURES)
                .map(|f| (((i * (2 * f + 3) + f * f) % 89) as f64) / 89.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

fn regression_target(x: &Matrix) -> Vec<f64> {
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            10.0 * (std::f64::consts::PI * row[0] * row[1]).sin() + 5.0 * row[2]
        })
        .collect()
}

fn lgbm_config(subsample: f64) -> GbtConfig {
    GbtConfig {
        n_estimators: 15,
        learning_rate: 0.2,
        max_depth: 16,
        subsample,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 1.0,
        second_order: true,
        histogram: true,
        max_bins: 16,
        max_leaves: 31,
        seed: 7,
        kind: EstimatorKind::Lgbm,
    }
}

fn predict_bits(model: &GradientBoosting, x: &Matrix) -> Vec<u64> {
    model
        .predict(x)
        .unwrap()
        .into_iter()
        .map(f64::to_bits)
        .collect()
}

#[test]
fn chunked_fit_matches_dense_fit_under_full_coverage() {
    let x = matrix(150);
    let y = regression_target(&x);
    let cfg = lgbm_config(1.0);
    let mut dense = GradientBoosting::new(cfg.clone());
    dense.fit(&x, &y, Task::Regression).unwrap();
    let baseline = predict_bits(&dense, &x);
    for chunk_rows in [1, 7, 64, 1000] {
        let cm = ChunkedMatrix::from_matrix(&x, chunk_rows);
        let mut chunked = GradientBoosting::new(cfg.clone());
        chunked
            .fit_chunked(&cm, &y, Task::Regression, 10_000)
            .unwrap();
        assert_eq!(
            baseline,
            predict_bits(&chunked, &x),
            "chunk_rows {chunk_rows} diverged from the dense fit"
        );
    }
}

#[test]
fn subsampled_chunked_fit_routes_out_of_bag_rows_identically() {
    // subsample < 1 exercises the out-of-bag predict_row path, which in
    // the chunked fit resolves rows chunk-locally.
    let x = matrix(120);
    let y: Vec<f64> = (0..x.rows())
        .map(|r| f64::from(x.get(r, 0) + x.get(r, 5) > 1.0))
        .collect();
    let cfg = lgbm_config(0.7);
    let mut dense = GradientBoosting::new(cfg.clone());
    dense.fit(&x, &y, Task::Binary).unwrap();
    let baseline = predict_bits(&dense, &x);
    for chunk_rows in [1, 7, 64] {
        let cm = ChunkedMatrix::from_matrix(&x, chunk_rows);
        let mut chunked = GradientBoosting::new(cfg.clone());
        chunked.fit_chunked(&cm, &y, Task::Binary, 10_000).unwrap();
        assert_eq!(
            baseline,
            predict_bits(&chunked, &x),
            "chunk_rows {chunk_rows} diverged from the dense fit"
        );
    }
}

#[test]
fn sampled_edges_are_chunk_size_invariant_above_the_bound() {
    let x = matrix(200);
    let y = regression_target(&x);
    let cfg = lgbm_config(1.0);
    let fit_at = |chunk_rows: usize| -> Vec<u64> {
        let cm = ChunkedMatrix::from_matrix(&x, chunk_rows);
        let mut m = GradientBoosting::new(cfg.clone());
        m.fit_chunked(&cm, &y, Task::Regression, 50).unwrap();
        predict_bits(&m, &x)
    };
    let reference = fit_at(1);
    for chunk_rows in [7, 64, 1000] {
        assert_eq!(reference, fit_at(chunk_rows), "chunk_rows {chunk_rows}");
    }
    // The sampled model still learns the signal.
    let cm = ChunkedMatrix::from_matrix(&x, 64);
    let mut m = GradientBoosting::new(cfg);
    m.fit_chunked(&cm, &y, Task::Regression, 50).unwrap();
    let r2 = {
        let p = m.predict(&x).unwrap();
        let mean = y.iter().sum::<f64>() / y.len() as f64;
        let ss_res: f64 = y.iter().zip(&p).map(|(t, q)| (t - q).powi(2)).sum();
        let ss_tot: f64 = y.iter().map(|t| (t - mean).powi(2)).sum();
        1.0 - ss_res / ss_tot
    };
    assert!(r2 > 0.8, "sampled-edge fit r2 = {r2}");
}

#[test]
fn exact_configurations_delegate_to_the_dense_fit() {
    let x = matrix(100);
    let y = regression_target(&x);
    let mut cfg = lgbm_config(1.0);
    cfg.histogram = false;
    cfg.max_depth = 3;
    cfg.kind = EstimatorKind::XgBoost;
    let mut dense = GradientBoosting::new(cfg.clone());
    dense.fit(&x, &y, Task::Regression).unwrap();
    let cm = ChunkedMatrix::from_matrix(&x, 16);
    let mut chunked = GradientBoosting::new(cfg);
    chunked
        .fit_chunked(&cm, &y, Task::Regression, 10_000)
        .unwrap();
    assert_eq!(predict_bits(&dense, &x), predict_bits(&chunked, &x));
}

#[test]
fn chunked_fit_validates_inputs() {
    let x = matrix(10);
    let cm = ChunkedMatrix::from_matrix(&x, 4);
    let mut m = GradientBoosting::new(lgbm_config(1.0));
    // Target length mismatch.
    assert!(m
        .fit_chunked(&cm, &[0.0; 3], Task::Regression, 100)
        .is_err());
    // NaN features are rejected just like the dense path.
    let mut bad = matrix(10);
    bad.set(3, 2, f64::NAN);
    let bad_cm = ChunkedMatrix::from_matrix(&bad, 4);
    assert!(m
        .fit_chunked(&bad_cm, &[0.0; 10], Task::Regression, 100)
        .is_err());
}
