//! Histogram-GBT parallel determinism (mirrors
//! `crates/graphgen/tests/determinism.rs`).
//!
//! The histogram engine fans per-feature histogram accumulation and split
//! scans over rayon once the feature count crosses its parallel threshold.
//! Every reduction has a fixed order (per-feature work is independent;
//! per-feature bests fold in feature order), so a fitted model — and every
//! prediction — must be bit-for-bit identical at any worker count.

use kgpip_learners::estimators::gbt::{GbtConfig, GradientBoosting};
use kgpip_learners::{Estimator, EstimatorKind, Matrix};
use kgpip_tabular::Task;

/// Enough features to cross the engine's parallel-scan threshold.
const FEATURES: usize = 24;

fn wide_matrix(n: usize) -> Matrix {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..FEATURES)
                .map(|f| (((i * (2 * f + 3) + f * f) % 97) as f64) / 97.0)
                .collect()
        })
        .collect();
    Matrix::from_rows(&rows).unwrap()
}

fn regression_target(x: &Matrix) -> Vec<f64> {
    (0..x.rows())
        .map(|r| {
            let row = x.row(r);
            10.0 * (std::f64::consts::PI * row[0] * row[1]).sin() + 5.0 * row[2] - 3.0 * row[17]
        })
        .collect()
}

fn lgbm_config(subsample: f64) -> GbtConfig {
    GbtConfig {
        n_estimators: 20,
        learning_rate: 0.2,
        max_depth: 16,
        subsample,
        lambda: 1.0,
        gamma: 0.0,
        min_child_weight: 1.0,
        second_order: true,
        histogram: true,
        max_bins: 32,
        max_leaves: 31,
        seed: 7,
        kind: EstimatorKind::Lgbm,
    }
}

/// Fits `cfg` on (x, y) under a rayon pool of `workers` threads and
/// returns the predictions' raw bits.
fn fit_predict_bits(
    cfg: &GbtConfig,
    x: &Matrix,
    y: &[f64],
    task: Task,
    workers: usize,
) -> Vec<u64> {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("thread pool construction");
    pool.install(|| {
        let mut model = GradientBoosting::new(cfg.clone());
        model.fit(x, y, task).unwrap();
        model
            .predict(x)
            .unwrap()
            .into_iter()
            .map(f64::to_bits)
            .collect()
    })
}

#[test]
fn regression_fit_is_bit_identical_across_worker_counts() {
    let x = wide_matrix(300);
    let y = regression_target(&x);
    let cfg = lgbm_config(1.0);
    let baseline = fit_predict_bits(&cfg, &x, &y, Task::Regression, 1);
    for workers in [2, 4, 8] {
        let bits = fit_predict_bits(&cfg, &x, &y, Task::Regression, workers);
        assert_eq!(baseline, bits, "{workers} workers diverged from 1");
    }
}

#[test]
fn subsampled_binary_fit_is_bit_identical_across_worker_counts() {
    let x = wide_matrix(240);
    // Out-of-bag rows exercise the predict_row fallback in the score loop.
    let y: Vec<f64> = (0..x.rows())
        .map(|r| f64::from(x.get(r, 0) + x.get(r, 5) > 1.0))
        .collect();
    let cfg = lgbm_config(0.7);
    let baseline = fit_predict_bits(&cfg, &x, &y, Task::Binary, 1);
    for workers in [2, 4, 8] {
        let bits = fit_predict_bits(&cfg, &x, &y, Task::Binary, workers);
        assert_eq!(baseline, bits, "{workers} workers diverged from 1");
    }
}

#[test]
fn multiclass_histogram_fit_is_bit_identical_across_worker_counts() {
    let x = wide_matrix(270);
    let y: Vec<f64> = (0..x.rows())
        .map(|r| {
            let v = x.get(r, 3);
            if v < 0.33 {
                0.0
            } else if v < 0.66 {
                1.0
            } else {
                2.0
            }
        })
        .collect();
    let mut cfg = lgbm_config(1.0);
    cfg.n_estimators = 10;
    let baseline = fit_predict_bits(&cfg, &x, &y, Task::MultiClass(3), 1);
    for workers in [2, 4, 8] {
        let bits = fit_predict_bits(&cfg, &x, &y, Task::MultiClass(3), workers);
        assert_eq!(baseline, bits, "{workers} workers diverged from 1");
    }
}

#[test]
fn repeated_fits_are_bit_identical_under_the_shared_bin_cache() {
    // The process-wide bin cache must hand back the same bins a fresh
    // binning would produce: two fits of the same config on the same data
    // (second fit hits the cache) must agree bit-for-bit.
    let x = wide_matrix(200);
    let y = regression_target(&x);
    let cfg = lgbm_config(1.0);
    let first = fit_predict_bits(&cfg, &x, &y, Task::Regression, 1);
    let second = fit_predict_bits(&cfg, &x, &y, Task::Regression, 1);
    assert_eq!(first, second);
}
