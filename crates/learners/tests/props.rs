//! Property-based tests for learners, transformers and metrics.

use kgpip_learners::estimators::{build_estimator, EstimatorKind, Params};
use kgpip_learners::matrix::Matrix;
use kgpip_learners::preprocess::{build_transformer, TransformerKind};
use kgpip_learners::{metrics, FeatureEncoder};
use kgpip_tabular::{Column, DataFrame, Task};
use proptest::prelude::*;

fn matrix_strategy() -> impl Strategy<Value = Matrix> {
    (2usize..20, 1usize..6).prop_flat_map(|(rows, cols)| {
        proptest::collection::vec(-100.0f64..100.0, rows * cols)
            .prop_map(move |data| Matrix::from_vec(data, rows, cols).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every transformer preserves row count and produces finite output on
    /// finite input.
    #[test]
    fn transformers_preserve_rows_and_finiteness(
        x in matrix_strategy(),
        kind_idx in 0usize..TransformerKind::ALL.len(),
    ) {
        use kgpip_learners::encode::FeatureRole;
        let kind = TransformerKind::ALL[kind_idx];
        let mut t = build_transformer(kind, &Default::default()).unwrap();
        let roles = vec![FeatureRole::Numeric; x.cols()];
        let y: Vec<f64> = (0..x.rows()).map(|i| (i % 2) as f64).collect();
        let out_roles = t.fit(&x, &y, &roles).unwrap();
        let out = t.transform(&x).unwrap();
        prop_assert_eq!(out.rows(), x.rows(), "{}", kind.name());
        prop_assert_eq!(out.cols(), out_roles.len(), "{}", kind.name());
        prop_assert!(out.as_slice().iter().all(|v| v.is_finite()), "{}", kind.name());
    }

    /// Macro-F1 and accuracy stay in [0, 1] and agree on perfection.
    #[test]
    fn classification_metrics_are_bounded(
        truth in proptest::collection::vec(0usize..4, 1..60),
        preds in proptest::collection::vec(0usize..4, 60),
    ) {
        let t: Vec<f64> = truth.iter().map(|&v| v as f64).collect();
        let p: Vec<f64> = preds[..t.len()].iter().map(|&v| v as f64).collect();
        let f1 = metrics::macro_f1(&t, &p, 4);
        let acc = metrics::accuracy(&t, &p);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&acc));
        // Perfect prediction is F1 = 1 only when all labels appear (absent
        // classes contribute 0 under macro averaging with explicit labels).
        let all_present = (0..4).all(|c| truth.contains(&c));
        if all_present {
            prop_assert!((metrics::macro_f1(&t, &t, 4) - 1.0).abs() < 1e-12);
        } else {
            prop_assert!(metrics::macro_f1(&t, &t, 4) <= 1.0);
        }
    }

    /// R² is 1 exactly on perfect predictions and never exceeds 1.
    #[test]
    fn r2_upper_bound(y in proptest::collection::vec(-1e3f64..1e3, 2..60)) {
        prop_assert!(metrics::r2(&y, &y) <= 1.0 + 1e-12);
        prop_assert!((metrics::r2(&y, &y) - 1.0).abs() < 1e-9 || y.iter().all(|v| *v == y[0]));
        let shifted: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        prop_assert!(metrics::r2(&y, &shifted) <= 1.0);
    }

    /// Every classification-capable estimator predicts valid class indices
    /// and probability rows that sum to 1.
    #[test]
    fn classifiers_emit_valid_distributions(
        seed in 0u64..30,
        kind_idx in 0usize..EstimatorKind::ALL.len(),
    ) {
        let kind = EstimatorKind::ALL[kind_idx];
        prop_assume!(kind.supports(Task::MultiClass(3)));
        // Small deterministic 3-class problem.
        let rows: Vec<Vec<f64>> = (0..45)
            .map(|i| vec![(i % 15) as f64, ((i * 7 + seed as usize) % 9) as f64])
            .collect();
        let y: Vec<f64> = (0..45).map(|i| ((i / 15) % 3) as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut params = Params::new();
        params.insert("n_estimators".into(), 5.0);
        params.insert("max_iter".into(), 60.0);
        let mut est = build_estimator(kind, &params).unwrap();
        est.fit(&x, &y, Task::MultiClass(3)).unwrap();
        let preds = est.predict(&x).unwrap();
        prop_assert!(preds.iter().all(|p| (0.0..3.0).contains(p) && p.fract() == 0.0));
        let proba = est.predict_proba(&x).unwrap();
        prop_assert_eq!(proba.cols(), 3);
        for r in 0..proba.rows() {
            let s: f64 = proba.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-6, "{}: row sums to {s}", kind.name());
            prop_assert!(proba.row(r).iter().all(|p| (-1e-9..=1.0 + 1e-9).contains(p)));
        }
    }

    /// The feature encoder is deterministic and shape-stable under
    /// arbitrary mixed frames.
    #[test]
    fn encoder_is_shape_stable(
        nums in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 2..30),
        cats in proptest::collection::vec(0usize..5, 30),
    ) {
        let n = nums.len();
        let cat_values: Vec<Option<String>> =
            cats[..n].iter().map(|&c| Some(format!("c{c}"))).collect();
        let frame = DataFrame::from_columns(vec![
            ("n".to_string(), Column::numeric(nums)),
            ("c".to_string(), Column::categorical(cat_values)),
        ]).unwrap();
        let enc = FeatureEncoder::fit(&frame);
        let a = enc.transform(&frame).unwrap();
        let b = enc.transform(&frame).unwrap();
        prop_assert_eq!(a.rows(), n);
        prop_assert_eq!(a.cols(), enc.output_dims());
        let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
        prop_assert_eq!(bits(&a), bits(&b));
    }

    /// Gradient-boosting regression predictions are finite for any target
    /// scale.
    #[test]
    fn gbt_is_scale_robust(scale in 1e-3f64..1e6, seed in 0u64..10) {
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![(i % 10) as f64]).collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * scale + seed as f64).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let mut params = Params::new();
        params.insert("n_estimators".into(), 10.0);
        let mut est = build_estimator(EstimatorKind::XgBoost, &params).unwrap();
        est.fit(&x, &y, Task::Regression).unwrap();
        let preds = est.predict(&x).unwrap();
        prop_assert!(preds.iter().all(|p| p.is_finite()));
        prop_assert!(metrics::r2(&y, &preds) > 0.5);
    }
}
