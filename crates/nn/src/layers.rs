//! Layers used by the graph generator: linear, GRU cell, two-layer MLP.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, TensorRef};
use crate::Result;
use rand::rngs::StdRng;

/// A dense layer `y = x·W + b`.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
}

impl Linear {
    /// Registers a new linear layer's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Linear {
        Linear {
            w: store.xavier(&format!("{name}.w"), in_dim, out_dim, rng),
            b: store.zeros(&format!("{name}.b"), 1, out_dim),
        }
    }

    /// Applies the layer to an n×in matrix.
    pub fn forward(&self, tape: &mut Tape, x: TensorRef) -> Result<TensorRef> {
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        let z = tape.matmul(x, w)?;
        tape.add_bias(z, b)
    }
}

/// A GRU cell updating node states from aggregated messages, as used for
/// the graph propagation of Li et al. (2018): `h' = GRU(h, m)`.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct GruCell {
    wz: Linear,
    wr: Linear,
    wh: Linear,
}

impl GruCell {
    /// Registers a GRU cell with state dim `hidden` and input dim `input`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        input: usize,
        hidden: usize,
        rng: &mut StdRng,
    ) -> GruCell {
        GruCell {
            wz: Linear::new(store, &format!("{name}.z"), input + hidden, hidden, rng),
            wr: Linear::new(store, &format!("{name}.r"), input + hidden, hidden, rng),
            wh: Linear::new(store, &format!("{name}.h"), input + hidden, hidden, rng),
        }
    }

    /// One step: `h` is n×hidden, `m` (messages/input) is n×input.
    pub fn forward(&self, tape: &mut Tape, h: TensorRef, m: TensorRef) -> Result<TensorRef> {
        let hm = tape.concat_cols(m, h)?;
        let z = self.wz.forward(tape, hm)?;
        let z = tape.sigmoid(z);
        let r = self.wr.forward(tape, hm)?;
        let r = tape.sigmoid(r);
        let rh = tape.mul(r, h)?;
        let mrh = tape.concat_cols(m, rh)?;
        let cand = self.wh.forward(tape, mrh)?;
        let cand = tape.tanh(cand);
        // h' = (1-z)∘h + z∘cand = h + z∘(cand − h)
        let neg_h = tape.scale(h, -1.0);
        let delta = tape.add(cand, neg_h)?;
        let zd = tape.mul(z, delta)?;
        tape.add(h, zd)
    }
}

/// A two-layer MLP with ReLU hidden activation, used for the generator's
/// decision heads.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// Registers the MLP's parameters.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Mlp {
        Mlp {
            l1: Linear::new(store, &format!("{name}.1"), in_dim, hidden, rng),
            l2: Linear::new(store, &format!("{name}.2"), hidden, out_dim, rng),
        }
    }

    /// Applies the MLP to an n×in matrix.
    pub fn forward(&self, tape: &mut Tape, x: TensorRef) -> Result<TensorRef> {
        let h = self.l1.forward(tape, x)?;
        let h = tape.relu(h);
        self.l2.forward(tape, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::Adam;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 5, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::zeros(4, 3));
        let y = lin.forward(&mut tape, x).unwrap();
        assert_eq!(tape.value(y).rows(), 4);
        assert_eq!(tape.value(y).cols(), 5);
    }

    #[test]
    fn gru_preserves_state_shape_and_gates_work() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 4, 6, &mut rng);
        let mut tape = Tape::new(&store);
        let h = tape.input(Tensor::full(2, 6, 0.3));
        let m = tape.input(Tensor::full(2, 4, -0.2));
        let h2 = gru.forward(&mut tape, h, m).unwrap();
        assert_eq!(tape.value(h2).rows(), 2);
        assert_eq!(tape.value(h2).cols(), 6);
        // Output stays in (-1, 1): convex combination of h and tanh cand.
        assert!(tape.value(h2).as_slice().iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    fn mlp_trains_xor_with_adam() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", 2, 16, 2, &mut rng);
        let mut adam = Adam::new(0.05);
        let x = Tensor::from_vec(vec![0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], 4, 2).unwrap();
        let targets = [0usize, 1, 1, 0];
        let mut last_loss = f32::INFINITY;
        for _ in 0..300 {
            let (loss_v, grads) = {
                let mut tape = Tape::new(&store);
                let xi = tape.input(x.clone());
                let logits = mlp.forward(&mut tape, xi).unwrap();
                let loss = tape.softmax_ce(logits, &targets).unwrap();
                (tape.value(loss).get(0, 0), tape.backward(loss).unwrap())
            };
            store.zero_grads();
            for (id, g) in grads {
                store.accumulate_grad(id, &g);
            }
            adam.step(&mut store);
            last_loss = loss_v;
        }
        assert!(
            last_loss < 0.05,
            "XOR should be learned, loss = {last_loss}"
        );
    }
}
