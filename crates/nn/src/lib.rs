//! Minimal tensor + reverse-mode autodiff framework.
//!
//! The KGpip paper trains a deep generative model of graphs (Li et al.
//! 2018): GRU-style node-state updates driven by message passing, plus MLP
//! heads for the add-node / add-edge / pick-node decisions. No GNN
//! framework exists in Rust (repro note: "no mature GNN or AutoML
//! frameworks in rust"), so this crate provides the exact operator set that
//! model needs and nothing more:
//!
//! * [`Tensor`] — dense row-major `f32` matrices,
//! * [`Tape`] — an eager reverse-mode autodiff tape with matmul, elementwise
//!   ops, concat, row gather/scatter (embedding lookup and message
//!   aggregation), softmax cross-entropy and sigmoid BCE losses; backed by a
//!   [`BufferPool`] so `Tape::reset` reuses allocations across passes,
//! * [`ParamStore`] — named parameter storage with Xavier initialization,
//! * [`layers`] — `Linear`, `GruCell`, `Mlp` built on the tape,
//! * [`Adam`] — the optimizer used for generator training.
//!
//! Gradient correctness is enforced by finite-difference tests on every
//! operator (see `tape::tests`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod layers;
pub mod optim;
pub mod params;
pub mod tape;
pub mod tensor;

pub use layers::{GruCell, Linear, Mlp};
pub use optim::Adam;
pub use params::{ParamId, ParamStore};
pub use tape::{BufferPool, Tape, TensorRef};
pub use tensor::Tensor;

/// Errors produced by tensor and tape operations.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// Operand shapes are incompatible.
    Shape(String),
    /// An index (row, parameter, class) is out of bounds.
    Index(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::Shape(m) => write!(f, "shape error: {m}"),
            NnError::Index(m) => write!(f, "index error: {m}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, NnError>;
