//! Adam optimizer.

use crate::params::ParamStore;
use crate::tensor::Tensor;

/// The Adam optimizer (Kingma & Ba) over a [`ParamStore`].
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates an optimizer with the given learning rate and default betas
    /// (0.9, 0.999).
    pub fn new(lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update from the store's accumulated gradients. Moment
    /// buffers are lazily sized on first use; the store must not change its
    /// parameter set between steps.
    pub fn step(&mut self, store: &mut ParamStore) {
        let n = store.len();
        while self.m.len() < n {
            let i = self.m.len();
            let (r, c) = {
                let ids: Vec<_> = store.iter_ids().map(|(id, _)| id).collect();
                let t = store.value(ids[i]);
                (t.rows(), t.cols())
            };
            self.m.push(Tensor::zeros(r, c));
            self.v.push(Tensor::zeros(r, c));
        }
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = store.iter_ids().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = store.grad(id).clone();
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            for ((mv, vv), gv) in m
                .as_mut_slice()
                .iter_mut()
                .zip(v.as_mut_slice())
                .zip(g.as_slice())
            {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let value = store.value_mut(id);
            for ((pv, mv), vv) in value
                .as_mut_slice()
                .iter_mut()
                .zip(m.as_slice())
                .zip(v.as_slice())
            {
                let m_hat = mv / b1t;
                let v_hat = vv / b2t;
                *pv -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_minimizes_quadratic() {
        // Minimize (w - 3)^2 elementwise.
        let mut store = ParamStore::new();
        let w = store.register("w", Tensor::full(1, 4, 10.0));
        let mut adam = Adam::new(0.2);
        for _ in 0..300 {
            store.zero_grads();
            let grad = {
                let mut data = store.value(w).clone();
                for v in data.as_mut_slice() {
                    *v = 2.0 * (*v - 3.0);
                }
                data
            };
            store.accumulate_grad(w, &grad);
            adam.step(&mut store);
        }
        for v in store.value(w).as_slice() {
            assert!((v - 3.0).abs() < 1e-2, "converged value {v}");
        }
    }

    #[test]
    fn adam_with_tape_reduces_loss() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 2, 2, &mut rng);
        let x = Tensor::from_vec(vec![1.0, -0.5, 0.3, 2.0], 2, 2).unwrap();
        let targets = [0usize, 1];
        let loss_at = |store: &ParamStore| {
            let mut tape = Tape::new(store);
            let xi = tape.input(x.clone());
            let wp = tape.param(w);
            let z = tape.matmul(xi, wp).unwrap();
            let l = tape.softmax_ce(z, &targets).unwrap();
            tape.value(l).get(0, 0)
        };
        let before = loss_at(&store);
        let mut adam = Adam::new(0.1);
        for _ in 0..50 {
            let grads = {
                let mut tape = Tape::new(&store);
                let xi = tape.input(x.clone());
                let wp = tape.param(w);
                let z = tape.matmul(xi, wp).unwrap();
                let l = tape.softmax_ce(z, &targets).unwrap();
                tape.backward(l).unwrap()
            };
            store.zero_grads();
            for (id, g) in grads {
                store.accumulate_grad(id, &g);
            }
            adam.step(&mut store);
        }
        let after = loss_at(&store);
        assert!(after < before * 0.2, "loss {before} -> {after}");
    }

    #[test]
    fn learning_rate_accessors() {
        let mut a = Adam::new(0.01);
        assert_eq!(a.learning_rate(), 0.01);
        a.set_learning_rate(0.001);
        assert_eq!(a.learning_rate(), 0.001);
    }
}
