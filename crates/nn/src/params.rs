//! Parameter storage with gradient accumulation.

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Handle to a parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct ParamId(pub(crate) usize);

/// Owns all trainable tensors of a model plus their accumulated gradients.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter initialized with Xavier/Glorot uniform noise.
    pub fn xavier(&mut self, name: &str, rows: usize, cols: usize, rng: &mut StdRng) -> ParamId {
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data: Vec<f32> = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        self.register(name, Tensor::from_vec(data, rows, cols).expect("shape"))
    }

    /// Registers a zero-initialized parameter (bias vectors).
    pub fn zeros(&mut self, name: &str, rows: usize, cols: usize) -> ParamId {
        self.register(name, Tensor::zeros(rows, cols))
    }

    /// Registers an explicitly initialized parameter.
    pub fn register(&mut self, name: &str, value: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(value.rows(), value.cols()));
        self.values.push(value);
        self.names.push(name.to_string());
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Immutable view of a parameter value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable view of a parameter value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Immutable view of a parameter's accumulated gradient.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Accumulates into a parameter's gradient.
    pub fn accumulate_grad(&mut self, id: ParamId, delta: &Tensor) {
        self.grads[id.0]
            .add_assign(delta)
            .expect("gradient shape matches parameter shape");
    }

    /// Accumulates `scale * delta` into a parameter's gradient without
    /// materializing a scaled copy. Bit-for-bit equal to scaling `delta`
    /// first and then calling [`ParamStore::accumulate_grad`]: both round
    /// the product once, then the sum once.
    pub fn accumulate_grad_scaled(&mut self, id: ParamId, delta: &Tensor, scale: f32) {
        self.grads[id.0]
            .add_scaled(delta, scale)
            .expect("gradient shape matches parameter shape");
    }

    /// Zeroes all gradients (call between optimizer steps).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.scale_assign(0.0);
        }
    }

    /// Global gradient L2 norm across all parameters.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| {
                let n = g.norm();
                n * n
            })
            .sum::<f32>()
            .sqrt()
    }

    /// Clips all gradients so the global norm is at most `max_norm`.
    pub fn clip_grads(&mut self, max_norm: f32) {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
    }

    /// Iterates over `(id, name)` pairs.
    pub fn iter_ids(&self) -> impl Iterator<Item = (ParamId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (ParamId(i), n.as_str()))
    }

    /// Name of the i-th registered parameter (registration order).
    pub fn name_at(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Value of the i-th registered parameter (registration order).
    pub fn tensor_at(&self, i: usize) -> &Tensor {
        &self.values[i]
    }

    /// Replaces the value of the i-th registered parameter, verifying the
    /// shape matches the registered one. The snapshot-restore path: a
    /// store is rebuilt with the registration sequence of the model
    /// constructor, then each value is overwritten from the snapshot.
    pub fn load_tensor_at(&mut self, i: usize, value: Tensor) -> crate::Result<()> {
        let Some(current) = self.values.get(i) else {
            return Err(crate::NnError::Index(format!(
                "parameter index {i} out of range ({} registered)",
                self.values.len()
            )));
        };
        if current.rows() != value.rows() || current.cols() != value.cols() {
            return Err(crate::NnError::Shape(format!(
                "parameter {} ({}): snapshot shape {}x{} != registered {}x{}",
                i,
                self.names[i],
                value.rows(),
                value.cols(),
                current.rows(),
                current.cols()
            )));
        }
        self.values[i] = value;
        self.grads[i] = Tensor::zeros(self.grads[i].rows(), self.grads[i].cols());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_bounds_and_determinism() {
        let mut rng1 = StdRng::seed_from_u64(5);
        let mut rng2 = StdRng::seed_from_u64(5);
        let mut s1 = ParamStore::new();
        let mut s2 = ParamStore::new();
        let a = s1.xavier("w", 4, 6, &mut rng1);
        let b = s2.xavier("w", 4, 6, &mut rng2);
        assert_eq!(s1.value(a), s2.value(b));
        let bound = (6.0f32 / 10.0).sqrt();
        assert!(s1.value(a).as_slice().iter().all(|v| v.abs() <= bound));
    }

    #[test]
    fn grad_accumulation_and_zeroing() {
        let mut s = ParamStore::new();
        let id = s.zeros("b", 1, 3);
        s.accumulate_grad(id, &Tensor::full(1, 3, 2.0));
        s.accumulate_grad(id, &Tensor::full(1, 3, 1.0));
        assert_eq!(s.grad(id).as_slice(), &[3.0, 3.0, 3.0]);
        s.zero_grads();
        assert_eq!(s.grad(id).as_slice(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn clip_scales_down_only() {
        let mut s = ParamStore::new();
        let id = s.zeros("b", 1, 2);
        s.accumulate_grad(id, &Tensor::from_vec(vec![3.0, 4.0], 1, 2).unwrap());
        s.clip_grads(10.0);
        assert_eq!(s.grad(id).as_slice(), &[3.0, 4.0], "under limit: untouched");
        s.clip_grads(1.0);
        assert!((s.grad_norm() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn num_scalars_counts_all() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        s.xavier("w", 2, 3, &mut rng);
        s.zeros("b", 1, 3);
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 9);
        let names: Vec<&str> = s.iter_ids().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["w", "b"]);
    }
}
