//! Eager reverse-mode autodiff tape.
//!
//! Operations execute immediately (values are available right away, which
//! the graph generator needs to make sampling decisions mid-forward) while
//! recording themselves on the tape; [`Tape::backward`] then walks the
//! recorded ops in reverse and returns per-parameter gradients.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use crate::{NnError, Result};

/// Handle to an intermediate value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorRef(usize);

enum Op {
    /// Parameter or constant input; `Some(id)` receives gradients.
    Leaf(Option<ParamId>),
    Matmul(usize, usize),
    Add(usize, usize),
    /// `a + bias` with `bias` a 1×c row broadcast over a's rows.
    AddBias(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    /// Shape change with identical row-major data (free; gradient passes
    /// through reshaped).
    Reshape(usize),
    SumRows(usize),
    MeanRows(usize),
    GatherRows(usize, Vec<usize>),
    /// Scatter-add rows of the input into an output with `out_rows` rows.
    ScatterSumRows(usize, Vec<usize>),
    /// Mean softmax cross-entropy; stores the softmax probabilities.
    SoftmaxCe {
        logits: usize,
        targets: Vec<usize>,
        probs: Tensor,
    },
    /// Mean sigmoid binary cross-entropy over an n×1 logit column.
    SigmoidBce {
        logits: usize,
        targets: Vec<f32>,
        probs: Tensor,
    },
}

/// The autodiff tape. Create one per forward pass.
pub struct Tape<'a> {
    store: &'a ParamStore,
    values: Vec<Tensor>,
    ops: Vec<Op>,
}

impl<'a> Tape<'a> {
    /// Creates an empty tape reading parameters from `store`.
    pub fn new(store: &'a ParamStore) -> Tape<'a> {
        Tape {
            store,
            values: Vec::new(),
            ops: Vec::new(),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> TensorRef {
        self.values.push(value);
        self.ops.push(op);
        TensorRef(self.values.len() - 1)
    }

    /// The computed value behind a ref.
    pub fn value(&self, r: TensorRef) -> &Tensor {
        &self.values[r.0]
    }

    /// Registers a parameter as a tape leaf (its value is copied).
    pub fn param(&mut self, id: ParamId) -> TensorRef {
        self.push(self.store.value(id).clone(), Op::Leaf(Some(id)))
    }

    /// Registers a constant input (no gradient).
    pub fn input(&mut self, t: Tensor) -> TensorRef {
        self.push(t, Op::Leaf(None))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let v = self.values[a.0].matmul(&self.values[b.0])?;
        Ok(self.push(v, Op::Matmul(a.0, b.0)))
    }

    /// Elementwise sum of same-shape tensors.
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let mut v = self.values[a.0].clone();
        v.add_assign(&self.values[b.0])?;
        Ok(self.push(v, Op::Add(a.0, b.0)))
    }

    /// Adds a 1×c bias row to every row of `a`.
    pub fn add_bias(&mut self, a: TensorRef, bias: TensorRef) -> Result<TensorRef> {
        let at = &self.values[a.0];
        let bt = &self.values[bias.0];
        if bt.rows() != 1 || bt.cols() != at.cols() {
            return Err(NnError::Shape(format!(
                "add_bias: bias {}x{} for value {}x{}",
                bt.rows(),
                bt.cols(),
                at.rows(),
                at.cols()
            )));
        }
        let mut v = at.clone();
        for r in 0..v.rows() {
            for (o, b) in v.row_mut(r).iter_mut().zip(bt.row(0)) {
                *o += b;
            }
        }
        Ok(self.push(v, Op::AddBias(a.0, bias.0)))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let at = &self.values[a.0];
        let bt = &self.values[b.0];
        if at.rows() != bt.rows() || at.cols() != bt.cols() {
            return Err(NnError::Shape("mul: shape mismatch".into()));
        }
        let data: Vec<f32> = at
            .as_slice()
            .iter()
            .zip(bt.as_slice())
            .map(|(x, y)| x * y)
            .collect();
        let v = Tensor::from_vec(data, at.rows(), at.cols())?;
        Ok(self.push(v, Op::Mul(a.0, b.0)))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: TensorRef, s: f32) -> TensorRef {
        let mut v = self.values[a.0].clone();
        v.scale_assign(s);
        self.push(v, Op::Scale(a.0, s))
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: TensorRef) -> TensorRef {
        let at = &self.values[a.0];
        let data: Vec<f32> = at.as_slice().iter().map(|v| v.tanh()).collect();
        let v = Tensor::from_vec(data, at.rows(), at.cols()).expect("same shape");
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorRef) -> TensorRef {
        let at = &self.values[a.0];
        let data: Vec<f32> = at
            .as_slice()
            .iter()
            .map(|v| 1.0 / (1.0 + (-v).exp()))
            .collect();
        let v = Tensor::from_vec(data, at.rows(), at.cols()).expect("same shape");
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: TensorRef) -> TensorRef {
        let at = &self.values[a.0];
        let data: Vec<f32> = at.as_slice().iter().map(|v| v.max(0.0)).collect();
        let v = Tensor::from_vec(data, at.rows(), at.cols()).expect("same shape");
        self.push(v, Op::Relu(a.0))
    }

    /// Concatenates two matrices with equal row counts along columns.
    pub fn concat_cols(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let at = &self.values[a.0];
        let bt = &self.values[b.0];
        if at.rows() != bt.rows() {
            return Err(NnError::Shape("concat_cols: row mismatch".into()));
        }
        let mut v = Tensor::zeros(at.rows(), at.cols() + bt.cols());
        for r in 0..at.rows() {
            let row = v.row_mut(r);
            row[..at.cols()].copy_from_slice(at.row(r));
            row[at.cols()..].copy_from_slice(bt.row(r));
        }
        Ok(self.push(v, Op::ConcatCols(a.0, b.0)))
    }

    /// Stacks two matrices with equal column counts along rows.
    pub fn concat_rows(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let at = &self.values[a.0];
        let bt = &self.values[b.0];
        if at.cols() != bt.cols() {
            return Err(NnError::Shape("concat_rows: column mismatch".into()));
        }
        let mut data = Vec::with_capacity(at.len() + bt.len());
        data.extend_from_slice(at.as_slice());
        data.extend_from_slice(bt.as_slice());
        let v = Tensor::from_vec(data, at.rows() + bt.rows(), at.cols())?;
        Ok(self.push(v, Op::ConcatRows(a.0, b.0)))
    }

    /// Reinterprets a tensor with a new shape of equal element count.
    pub fn reshape(&mut self, a: TensorRef, rows: usize, cols: usize) -> Result<TensorRef> {
        let at = &self.values[a.0];
        if at.len() != rows * cols {
            return Err(NnError::Shape(format!(
                "reshape: {} elements into {rows}x{cols}",
                at.len()
            )));
        }
        let v = Tensor::from_vec(at.as_slice().to_vec(), rows, cols)?;
        Ok(self.push(v, Op::Reshape(a.0)))
    }

    /// Sums all rows into a 1×c vector.
    pub fn sum_rows(&mut self, a: TensorRef) -> TensorRef {
        let at = &self.values[a.0];
        let mut v = Tensor::zeros(1, at.cols());
        for r in 0..at.rows() {
            for (o, x) in v.row_mut(0).iter_mut().zip(at.row(r)) {
                *o += x;
            }
        }
        self.push(v, Op::SumRows(a.0))
    }

    /// Averages all rows into a 1×c vector.
    pub fn mean_rows(&mut self, a: TensorRef) -> TensorRef {
        let at = &self.values[a.0];
        let n = at.rows().max(1) as f32;
        let mut v = Tensor::zeros(1, at.cols());
        for r in 0..at.rows() {
            for (o, x) in v.row_mut(0).iter_mut().zip(at.row(r)) {
                *o += x / n;
            }
        }
        self.push(v, Op::MeanRows(a.0))
    }

    /// Selects rows by index (embedding lookup; indices may repeat).
    pub fn gather_rows(&mut self, a: TensorRef, idx: &[usize]) -> Result<TensorRef> {
        let at = &self.values[a.0];
        for &i in idx {
            if i >= at.rows() {
                return Err(NnError::Index(format!(
                    "gather_rows: row {i} of {}",
                    at.rows()
                )));
            }
        }
        let mut v = Tensor::zeros(idx.len(), at.cols());
        for (r, &i) in idx.iter().enumerate() {
            v.row_mut(r).copy_from_slice(at.row(i));
        }
        Ok(self.push(v, Op::GatherRows(a.0, idx.to_vec())))
    }

    /// Scatter-adds row `e` of the input into output row `idx[e]`
    /// (message aggregation). The output has `out_rows` rows.
    pub fn scatter_sum_rows(
        &mut self,
        a: TensorRef,
        idx: &[usize],
        out_rows: usize,
    ) -> Result<TensorRef> {
        let at = &self.values[a.0];
        if idx.len() != at.rows() {
            return Err(NnError::Shape(format!(
                "scatter_sum_rows: {} indices for {} rows",
                idx.len(),
                at.rows()
            )));
        }
        for &i in idx {
            if i >= out_rows {
                return Err(NnError::Index(format!(
                    "scatter_sum_rows: target {i} of {out_rows}"
                )));
            }
        }
        let mut v = Tensor::zeros(out_rows, at.cols());
        for (e, &i) in idx.iter().enumerate() {
            for (o, x) in v.row_mut(i).iter_mut().zip(at.row(e)) {
                *o += x;
            }
        }
        Ok(self.push(v, Op::ScatterSumRows(a.0, idx.to_vec())))
    }

    /// Mean softmax cross-entropy of n×k logits against n class targets;
    /// returns a 1×1 loss.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn softmax_ce(&mut self, logits: TensorRef, targets: &[usize]) -> Result<TensorRef> {
        let lt = &self.values[logits.0];
        if targets.len() != lt.rows() {
            return Err(NnError::Shape(format!(
                "softmax_ce: {} targets for {} rows",
                targets.len(),
                lt.rows()
            )));
        }
        let k = lt.cols();
        let mut probs = Tensor::zeros(lt.rows(), k);
        let mut loss = 0.0f32;
        for r in 0..lt.rows() {
            let t = targets[r];
            if t >= k {
                return Err(NnError::Index(format!("softmax_ce: class {t} of {k}")));
            }
            let row = lt.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (c, v) in row.iter().enumerate() {
                let e = (v - max).exp();
                probs.set(r, c, e);
                sum += e;
            }
            for c in 0..k {
                probs.set(r, c, probs.get(r, c) / sum);
            }
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= lt.rows().max(1) as f32;
        let v = Tensor::from_vec(vec![loss], 1, 1)?;
        Ok(self.push(
            v,
            Op::SoftmaxCe {
                logits: logits.0,
                targets: targets.to_vec(),
                probs,
            },
        ))
    }

    /// Mean sigmoid binary cross-entropy of n×1 logits against 0/1 targets;
    /// returns a 1×1 loss.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn sigmoid_bce(&mut self, logits: TensorRef, targets: &[f32]) -> Result<TensorRef> {
        let lt = &self.values[logits.0];
        if lt.cols() != 1 || targets.len() != lt.rows() {
            return Err(NnError::Shape(format!(
                "sigmoid_bce: logits {}x{}, {} targets",
                lt.rows(),
                lt.cols(),
                targets.len()
            )));
        }
        let mut probs = Tensor::zeros(lt.rows(), 1);
        let mut loss = 0.0f32;
        for r in 0..lt.rows() {
            let p = 1.0 / (1.0 + (-lt.get(r, 0)).exp());
            probs.set(r, 0, p);
            let t = targets[r];
            loss -= t * p.max(1e-12).ln() + (1.0 - t) * (1.0 - p).max(1e-12).ln();
        }
        loss /= lt.rows().max(1) as f32;
        let v = Tensor::from_vec(vec![loss], 1, 1)?;
        Ok(self.push(
            v,
            Op::SigmoidBce {
                logits: logits.0,
                targets: targets.to_vec(),
                probs,
            },
        ))
    }

    /// Runs backward from a scalar loss, returning `(param, gradient)`
    /// pairs for every parameter leaf reached.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn backward(&self, loss: TensorRef) -> Result<Vec<(ParamId, Tensor)>> {
        let lt = &self.values[loss.0];
        if lt.rows() != 1 || lt.cols() != 1 {
            return Err(NnError::Shape("backward: loss must be 1x1".into()));
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.values.len()];
        grads[loss.0] = Some(Tensor::full(1, 1, 1.0));

        let mut out = Vec::new();
        for i in (0..self.ops.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Leaf(Some(id)) => out.push((*id, g)),
                Op::Leaf(None) => {}
                Op::Matmul(a, b) => {
                    let ga = g.matmul(&self.values[*b].transpose())?;
                    let gb = self.values[*a].transpose().matmul(&g)?;
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddBias(a, bias) => {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *bias, gb);
                    accumulate(&mut grads, *a, g);
                }
                Op::Mul(a, b) => {
                    let ga = elementwise(&g, &self.values[*b]);
                    let gb = elementwise(&g, &self.values[*a]);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, s) => {
                    let mut ga = g;
                    ga.scale_assign(*s);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.values[i];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(gv, yv)| gv * (1.0 - yv * yv))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::Sigmoid(a) => {
                    let y = &self.values[i];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(gv, yv)| gv * yv * (1.0 - yv))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::Relu(a) => {
                    let x = &self.values[*a];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(x.as_slice())
                        .map(|(gv, xv)| if *xv > 0.0 { *gv } else { 0.0 })
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.values[*a].cols();
                    let mut ga = Tensor::zeros(g.rows(), ac);
                    let mut gb = Tensor::zeros(g.rows(), g.cols() - ac);
                    for r in 0..g.rows() {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ar = self.values[*a].rows();
                    let cols = g.cols();
                    let mut ga = Tensor::zeros(ar, cols);
                    let mut gb = Tensor::zeros(g.rows() - ar, cols);
                    for r in 0..ar {
                        ga.row_mut(r).copy_from_slice(g.row(r));
                    }
                    for r in ar..g.rows() {
                        gb.row_mut(r - ar).copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Reshape(a) => {
                    let src = &self.values[*a];
                    let ga = Tensor::from_vec(g.as_slice().to_vec(), src.rows(), src.cols())?;
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumRows(a) => {
                    let rows = self.values[*a].rows();
                    let mut ga = Tensor::zeros(rows, g.cols());
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(g.row(0));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanRows(a) => {
                    let rows = self.values[*a].rows();
                    let s = 1.0 / rows.max(1) as f32;
                    let mut ga = Tensor::zeros(rows, g.cols());
                    for r in 0..rows {
                        for (o, x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = x * s;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::GatherRows(a, idx) => {
                    let mut ga = Tensor::zeros(self.values[*a].rows(), g.cols());
                    for (r, &i) in idx.iter().enumerate() {
                        for (o, x) in ga.row_mut(i).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScatterSumRows(a, idx) => {
                    let mut ga = Tensor::zeros(idx.len(), g.cols());
                    for (e, &i) in idx.iter().enumerate() {
                        ga.row_mut(e).copy_from_slice(g.row(i));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SoftmaxCe {
                    logits,
                    targets,
                    probs,
                } => {
                    let upstream = g.get(0, 0);
                    let n = targets.len().max(1) as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, t, gl.get(r, t) - 1.0);
                    }
                    gl.scale_assign(upstream / n);
                    accumulate(&mut grads, *logits, gl);
                }
                Op::SigmoidBce {
                    logits,
                    targets,
                    probs,
                } => {
                    let upstream = g.get(0, 0);
                    let n = targets.len().max(1) as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, 0, gl.get(r, 0) - t);
                    }
                    gl.scale_assign(upstream / n);
                    accumulate(&mut grads, *logits, gl);
                }
            }
        }
        Ok(out)
    }
}

fn accumulate(grads: &mut [Option<Tensor>], at: usize, delta: Tensor) {
    match &mut grads[at] {
        Some(g) => g.add_assign(&delta).expect("gradient shapes match"),
        slot => *slot = Some(delta),
    }
}

fn elementwise(a: &Tensor, b: &Tensor) -> Tensor {
    let data: Vec<f32> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .collect();
    Tensor::from_vec(data, a.rows(), a.cols()).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check: perturb each scalar of each parameter and
    /// compare the loss delta to the analytic gradient.
    fn check_gradients<F>(store: &mut ParamStore, forward: F)
    where
        F: Fn(&mut Tape) -> TensorRef,
    {
        let analytic: Vec<(ParamId, Tensor)> = {
            let mut tape = Tape::new(store);
            let loss = forward(&mut tape);
            tape.backward(loss).unwrap()
        };
        let eps = 1e-3f32;
        for (id, grad) in &analytic {
            let (rows, cols) = {
                let v = store.value(*id);
                (v.rows(), v.cols())
            };
            for r in 0..rows {
                for c in 0..cols {
                    let orig = store.value(*id).get(r, c);
                    store.value_mut(*id).set(r, c, orig + eps);
                    let up = {
                        let mut tape = Tape::new(store);
                        let l = forward(&mut tape);
                        tape.value(l).get(0, 0)
                    };
                    store.value_mut(*id).set(r, c, orig - eps);
                    let down = {
                        let mut tape = Tape::new(store);
                        let l = forward(&mut tape);
                        tape.value(l).get(0, 0)
                    };
                    store.value_mut(*id).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * eps);
                    let a = grad.get(r, c);
                    assert!(
                        (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                        "param grad mismatch at ({r},{c}): numeric {numeric} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_linear_softmax() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 3, 4, &mut rng);
        let b = store.xavier("b", 1, 4, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], 2, 3).unwrap();
        check_gradients(&mut store, |tape| {
            let wp = tape.param(w);
            let bp = tape.param(b);
            let xi = tape.input(x.clone());
            let z = tape.matmul(xi, wp).unwrap();
            let z = tape.add_bias(z, bp).unwrap();
            tape.softmax_ce(z, &[1, 3]).unwrap()
        });
    }

    #[test]
    fn gradcheck_tanh_sigmoid_relu_mul() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 2, 3, &mut rng);
        let b = store.xavier("b", 2, 3, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let t = tape.tanh(ap);
            let s = tape.sigmoid(bp);
            let m = tape.mul(t, s).unwrap();
            let r = tape.relu(m);
            let sum = tape.sum_rows(r);
            let sum2 = tape.mean_rows(sum);
            // Reduce 1×3 to 1×1 via a fixed projection input.
            let proj = tape.input(Tensor::from_vec(vec![1.0, -2.0, 0.5], 3, 1).unwrap());
            tape.matmul(sum2, proj).unwrap()
        });
    }

    #[test]
    fn gradcheck_gather_scatter_concat() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let emb = store.xavier("emb", 4, 3, &mut rng);
        let w = store.xavier("w", 6, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let e = tape.param(emb);
            let src = tape.gather_rows(e, &[0, 2, 2]).unwrap();
            let dst = tape.gather_rows(e, &[1, 3, 0]).unwrap();
            let cat = tape.concat_cols(src, dst).unwrap();
            let agg = tape.scatter_sum_rows(cat, &[0, 1, 1], 2).unwrap();
            let wp = tape.param(w);
            let z = tape.matmul(agg, wp).unwrap();
            tape.sigmoid_bce(z, &[1.0, 0.0]).unwrap()
        });
    }

    #[test]
    fn gradcheck_concat_rows() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 1, 3, &mut rng);
        let b = store.xavier("b", 2, 3, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let cat = tape.concat_rows(ap, bp).unwrap();
            let pooled = tape.mean_rows(cat);
            let proj = tape.input(Tensor::from_vec(vec![1.0, -1.0, 2.0], 3, 1).unwrap());
            tape.matmul(pooled, proj).unwrap()
        });
    }

    #[test]
    fn gradcheck_reshape() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 3, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let row = tape.reshape(ap, 1, 3).unwrap();
            tape.softmax_ce(row, &[2]).unwrap()
        });
    }

    #[test]
    fn reshape_validates_element_count() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Tensor::zeros(2, 3));
        assert!(tape.reshape(a, 3, 2).is_ok());
        assert!(tape.reshape(a, 2, 2).is_err());
    }

    #[test]
    fn gradcheck_scale_add() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 1, 1, &mut rng);
        let b = store.xavier("b", 1, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let s = tape.scale(ap, 3.0);
            tape.add(s, bp).unwrap()
        });
    }

    #[test]
    fn softmax_ce_value_matches_hand_computation() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let logits = tape.input(Tensor::from_vec(vec![0.0, 0.0], 1, 2).unwrap());
        let loss = tape.softmax_ce(logits, &[0]).unwrap();
        // Uniform over 2 classes -> loss = ln 2.
        assert!((tape.value(loss).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn shape_errors_are_reported() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Tensor::zeros(2, 3));
        let b = tape.input(Tensor::zeros(2, 3));
        assert!(tape.matmul(a, b).is_err());
        let bad_bias = tape.input(Tensor::zeros(2, 3));
        assert!(tape.add_bias(a, bad_bias).is_err());
        assert!(tape.gather_rows(a, &[5]).is_err());
        assert!(tape.scatter_sum_rows(a, &[0], 3).is_err());
        assert!(tape.softmax_ce(a, &[0]).is_err());
        let non_scalar = tape.input(Tensor::zeros(2, 2));
        assert!(tape.backward(non_scalar).is_err());
    }

    #[test]
    fn backward_ignores_constant_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 2, 1, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2).unwrap());
        let wp = tape.param(w);
        let z = tape.matmul(x, wp).unwrap();
        let loss = tape.sigmoid_bce(z, &[1.0]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
    }
}
