//! Eager reverse-mode autodiff tape.
//!
//! Operations execute immediately (values are available right away, which
//! the graph generator needs to make sampling decisions mid-forward) while
//! recording themselves on the tape; [`Tape::backward`] then walks the
//! recorded ops in reverse and returns per-parameter gradients.
//!
//! # Allocation reuse
//!
//! Every intermediate tensor is backed by a buffer drawn from the tape's
//! internal [`BufferPool`]. [`Tape::reset`] clears the recorded program and
//! recycles all value buffers back into the pool, so a caller running many
//! forward passes in a row (the autoregressive generation loop, the
//! per-example training loop) reuses the same heap blocks instead of
//! re-allocating hundreds of tensors per step. Pool state never affects
//! numerics: a recycled buffer is always zero-filled or fully overwritten
//! before it becomes visible, so a reset tape is bit-for-bit equivalent to
//! a freshly constructed one.

use crate::params::{ParamId, ParamStore};
use crate::tensor::Tensor;
use crate::{NnError, Result};
use std::collections::BTreeMap;

/// A recycling pool of `f32` backing buffers for tape intermediates.
///
/// Buffers are bucketed by capacity in a [`BTreeMap`], so handing one out
/// is a best-fit lookup in O(log #sizes) — a forward pass allocates
/// hundreds of intermediates, and a linear free-list scan would make the
/// pool slower than the allocator it replaces. The pool only ever grows
/// to the footprint of the largest forward pass it has served.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// capacity → idle buffers of exactly that capacity.
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    idle: usize,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> BufferPool {
        BufferPool::default()
    }

    /// Number of idle buffers currently held.
    pub fn idle_buffers(&self) -> usize {
        self.idle
    }

    /// An empty (length 0) buffer with capacity at least `cap`: the
    /// smallest pooled buffer that fits, or a fresh allocation when none
    /// does. Callers fill it completely.
    fn take_empty(&mut self, cap: usize) -> Vec<f32> {
        let fit = self.free.range_mut(cap..).next().map(|(c, _)| *c);
        match fit {
            Some(c) => {
                let bucket = self.free.get_mut(&c).expect("bucket exists");
                let mut b = bucket.pop().expect("buckets are never left empty");
                if bucket.is_empty() {
                    self.free.remove(&c);
                }
                self.idle -= 1;
                b.clear();
                b
            }
            None => Vec::with_capacity(cap),
        }
    }

    /// A zero-filled buffer of exactly `len` elements.
    fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut b = self.take_empty(len);
        b.resize(len, 0.0);
        b
    }

    /// Returns a buffer to the pool.
    fn give(&mut self, b: Vec<f32>) {
        if b.capacity() > 0 {
            self.free.entry(b.capacity()).or_default().push(b);
            self.idle += 1;
        }
    }
}

/// Handle to an intermediate value on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TensorRef(usize);

enum Op {
    /// Parameter or constant input; `Some(id)` receives gradients.
    Leaf(Option<ParamId>),
    Matmul(usize, usize),
    Add(usize, usize),
    /// `a + bias` with `bias` a 1×c row broadcast over a's rows.
    AddBias(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    Tanh(usize),
    Sigmoid(usize),
    Relu(usize),
    ConcatCols(usize, usize),
    ConcatRows(usize, usize),
    /// Shape change with identical row-major data (free; gradient passes
    /// through reshaped).
    Reshape(usize),
    SumRows(usize),
    MeanRows(usize),
    GatherRows(usize, Vec<usize>),
    /// Scatter-add rows of the input into an output with `out_rows` rows.
    ScatterSumRows(usize, Vec<usize>),
    /// Mean softmax cross-entropy; stores the softmax probabilities.
    SoftmaxCe {
        logits: usize,
        targets: Vec<usize>,
        probs: Tensor,
    },
    /// Mean sigmoid binary cross-entropy over an n×1 logit column.
    SigmoidBce {
        logits: usize,
        targets: Vec<f32>,
        probs: Tensor,
    },
}

/// The autodiff tape. Create one per forward pass, or keep one around and
/// [`Tape::reset`] it between passes to reuse allocations.
pub struct Tape<'a> {
    store: &'a ParamStore,
    values: Vec<Tensor>,
    ops: Vec<Op>,
    pool: BufferPool,
}

impl<'a> Tape<'a> {
    /// Creates an empty tape reading parameters from `store`.
    pub fn new(store: &'a ParamStore) -> Tape<'a> {
        Tape::with_pool(store, BufferPool::new())
    }

    /// Creates an empty tape that draws intermediate buffers from `pool`
    /// (recovered later with [`Tape::into_pool`]).
    pub fn with_pool(store: &'a ParamStore, pool: BufferPool) -> Tape<'a> {
        Tape {
            store,
            values: Vec::new(),
            ops: Vec::new(),
            pool,
        }
    }

    /// Clears the recorded program, recycling every intermediate buffer
    /// into the pool. All outstanding [`TensorRef`]s are invalidated; the
    /// next forward pass reuses the recycled allocations.
    pub fn reset(&mut self) {
        for t in self.values.drain(..) {
            self.pool.give(t.into_vec());
        }
        for op in self.ops.drain(..) {
            match op {
                Op::SoftmaxCe { probs, .. } | Op::SigmoidBce { probs, .. } => {
                    self.pool.give(probs.into_vec());
                }
                _ => {}
            }
        }
    }

    /// Consumes the tape, recycling all buffers, and returns its pool for
    /// reuse by a later tape (e.g. across training batches).
    pub fn into_pool(mut self) -> BufferPool {
        self.reset();
        self.pool
    }

    fn push(&mut self, value: Tensor, op: Op) -> TensorRef {
        self.values.push(value);
        self.ops.push(op);
        TensorRef(self.values.len() - 1)
    }

    /// A zero-filled pooled tensor.
    fn alloc_zeroed(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(self.pool.take_zeroed(rows * cols), rows, cols)
            .expect("pooled buffer sized to shape")
    }

    /// A pooled copy of an existing tensor's contents.
    fn alloc_copy(&mut self, src: &Tensor) -> Tensor {
        let mut buf = self.pool.take_empty(src.len());
        buf.extend_from_slice(src.as_slice());
        Tensor::from_vec(buf, src.rows(), src.cols()).expect("pooled buffer sized to shape")
    }

    /// A pooled copy of tape value `a` (split-borrow friendly variant of
    /// [`Tape::alloc_copy`] for on-tape sources).
    fn alloc_copy_idx(&mut self, a: usize) -> Tensor {
        let src = &self.values[a];
        let (rows, cols, len) = (src.rows(), src.cols(), src.len());
        let mut buf = self.pool.take_empty(len);
        buf.extend_from_slice(self.values[a].as_slice());
        Tensor::from_vec(buf, rows, cols).expect("pooled buffer sized to shape")
    }

    /// The computed value behind a ref.
    pub fn value(&self, r: TensorRef) -> &Tensor {
        &self.values[r.0]
    }

    /// Registers a parameter as a tape leaf (its value is copied).
    pub fn param(&mut self, id: ParamId) -> TensorRef {
        let mut buf = self.pool.take_empty(self.store.value(id).len());
        let src = self.store.value(id);
        buf.extend_from_slice(src.as_slice());
        let v = Tensor::from_vec(buf, src.rows(), src.cols()).expect("pooled buffer sized");
        self.push(v, Op::Leaf(Some(id)))
    }

    /// Registers a constant input (no gradient). The tensor is adopted as
    /// is; prefer [`Tape::input_from`] when the source outlives the tape.
    pub fn input(&mut self, t: Tensor) -> TensorRef {
        self.push(t, Op::Leaf(None))
    }

    /// Registers a constant input by copying `t` into a pooled buffer —
    /// the allocation-free variant of [`Tape::input`] for values fed into
    /// every pass of a reset loop.
    pub fn input_from(&mut self, t: &Tensor) -> TensorRef {
        let v = self.alloc_copy(t);
        self.push(v, Op::Leaf(None))
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let (ar, bc) = (self.values[a.0].rows(), self.values[b.0].cols());
        let mut out = self.alloc_zeroed(ar, bc);
        self.values[a.0].matmul_into(&self.values[b.0], &mut out)?;
        Ok(self.push(out, Op::Matmul(a.0, b.0)))
    }

    /// Elementwise sum of same-shape tensors.
    pub fn add(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        let mut v = self.alloc_copy_idx(a.0);
        v.add_assign(&self.values[b.0])?;
        Ok(self.push(v, Op::Add(a.0, b.0)))
    }

    /// Adds a 1×c bias row to every row of `a`.
    pub fn add_bias(&mut self, a: TensorRef, bias: TensorRef) -> Result<TensorRef> {
        {
            let at = &self.values[a.0];
            let bt = &self.values[bias.0];
            if bt.rows() != 1 || bt.cols() != at.cols() {
                return Err(NnError::Shape(format!(
                    "add_bias: bias {}x{} for value {}x{}",
                    bt.rows(),
                    bt.cols(),
                    at.rows(),
                    at.cols()
                )));
            }
        }
        let mut v = self.alloc_copy_idx(a.0);
        let bt = &self.values[bias.0];
        for r in 0..v.rows() {
            for (o, b) in v.row_mut(r).iter_mut().zip(bt.row(0)) {
                *o += b;
            }
        }
        Ok(self.push(v, Op::AddBias(a.0, bias.0)))
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        {
            let at = &self.values[a.0];
            let bt = &self.values[b.0];
            if at.rows() != bt.rows() || at.cols() != bt.cols() {
                return Err(NnError::Shape("mul: shape mismatch".into()));
            }
        }
        let at = &self.values[a.0];
        let mut buf = self.pool.take_empty(at.len());
        buf.extend(
            at.as_slice()
                .iter()
                .zip(self.values[b.0].as_slice())
                .map(|(x, y)| x * y),
        );
        let v = Tensor::from_vec(buf, at.rows(), at.cols())?;
        Ok(self.push(v, Op::Mul(a.0, b.0)))
    }

    /// Scalar multiple.
    pub fn scale(&mut self, a: TensorRef, s: f32) -> TensorRef {
        let mut v = self.alloc_copy_idx(a.0);
        v.scale_assign(s);
        self.push(v, Op::Scale(a.0, s))
    }

    /// A pooled tensor holding `f` applied elementwise to `a`'s value.
    fn alloc_map(&mut self, a: usize, f: impl Fn(f32) -> f32) -> Tensor {
        let at = &self.values[a];
        let mut buf = self.pool.take_empty(at.len());
        buf.extend(at.as_slice().iter().map(|v| f(*v)));
        Tensor::from_vec(buf, at.rows(), at.cols()).expect("same shape")
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: TensorRef) -> TensorRef {
        let v = self.alloc_map(a.0, f32::tanh);
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: TensorRef) -> TensorRef {
        let v = self.alloc_map(a.0, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: TensorRef) -> TensorRef {
        let v = self.alloc_map(a.0, |x| x.max(0.0));
        self.push(v, Op::Relu(a.0))
    }

    /// Concatenates two matrices with equal row counts along columns.
    pub fn concat_cols(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        {
            let at = &self.values[a.0];
            let bt = &self.values[b.0];
            if at.rows() != bt.rows() {
                return Err(NnError::Shape("concat_cols: row mismatch".into()));
            }
        }
        let at = &self.values[a.0];
        let bt = &self.values[b.0];
        let mut buf = self.pool.take_empty(at.len() + bt.len());
        for r in 0..at.rows() {
            buf.extend_from_slice(at.row(r));
            buf.extend_from_slice(bt.row(r));
        }
        let v = Tensor::from_vec(buf, at.rows(), at.cols() + bt.cols())?;
        Ok(self.push(v, Op::ConcatCols(a.0, b.0)))
    }

    /// Stacks two matrices with equal column counts along rows.
    pub fn concat_rows(&mut self, a: TensorRef, b: TensorRef) -> Result<TensorRef> {
        {
            let at = &self.values[a.0];
            let bt = &self.values[b.0];
            if at.cols() != bt.cols() {
                return Err(NnError::Shape("concat_rows: column mismatch".into()));
            }
        }
        let at = &self.values[a.0];
        let bt = &self.values[b.0];
        let mut buf = self.pool.take_empty(at.len() + bt.len());
        buf.extend_from_slice(at.as_slice());
        buf.extend_from_slice(bt.as_slice());
        let v = Tensor::from_vec(buf, at.rows() + bt.rows(), at.cols())?;
        Ok(self.push(v, Op::ConcatRows(a.0, b.0)))
    }

    /// Reinterprets a tensor with a new shape of equal element count.
    pub fn reshape(&mut self, a: TensorRef, rows: usize, cols: usize) -> Result<TensorRef> {
        if self.values[a.0].len() != rows * cols {
            return Err(NnError::Shape(format!(
                "reshape: {} elements into {rows}x{cols}",
                self.values[a.0].len()
            )));
        }
        let len = self.values[a.0].len();
        let mut buf = self.pool.take_empty(len);
        buf.extend_from_slice(self.values[a.0].as_slice());
        let v = Tensor::from_vec(buf, rows, cols)?;
        Ok(self.push(v, Op::Reshape(a.0)))
    }

    /// Sums all rows into a 1×c vector.
    pub fn sum_rows(&mut self, a: TensorRef) -> TensorRef {
        let mut v = self.alloc_zeroed(1, self.values[a.0].cols());
        let at = &self.values[a.0];
        for r in 0..at.rows() {
            for (o, x) in v.row_mut(0).iter_mut().zip(at.row(r)) {
                *o += x;
            }
        }
        self.push(v, Op::SumRows(a.0))
    }

    /// Averages all rows into a 1×c vector.
    pub fn mean_rows(&mut self, a: TensorRef) -> TensorRef {
        let mut v = self.alloc_zeroed(1, self.values[a.0].cols());
        let at = &self.values[a.0];
        let n = at.rows().max(1) as f32;
        for r in 0..at.rows() {
            for (o, x) in v.row_mut(0).iter_mut().zip(at.row(r)) {
                *o += x / n;
            }
        }
        self.push(v, Op::MeanRows(a.0))
    }

    /// Selects rows by index (embedding lookup; indices may repeat).
    pub fn gather_rows(&mut self, a: TensorRef, idx: &[usize]) -> Result<TensorRef> {
        let mut v = self.alloc_zeroed(idx.len(), self.values[a.0].cols());
        self.values[a.0].gather_rows_into(idx, &mut v)?;
        Ok(self.push(v, Op::GatherRows(a.0, idx.to_vec())))
    }

    /// Scatter-adds row `e` of the input into output row `idx[e]`
    /// (message aggregation). The output has `out_rows` rows.
    pub fn scatter_sum_rows(
        &mut self,
        a: TensorRef,
        idx: &[usize],
        out_rows: usize,
    ) -> Result<TensorRef> {
        if idx.len() != self.values[a.0].rows() {
            return Err(NnError::Shape(format!(
                "scatter_sum_rows: {} indices for {} rows",
                idx.len(),
                self.values[a.0].rows()
            )));
        }
        let mut v = self.alloc_zeroed(out_rows, self.values[a.0].cols());
        self.values[a.0].scatter_sum_rows_into(idx, &mut v)?;
        Ok(self.push(v, Op::ScatterSumRows(a.0, idx.to_vec())))
    }

    /// Mean softmax cross-entropy of n×k logits against n class targets;
    /// returns a 1×1 loss.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn softmax_ce(&mut self, logits: TensorRef, targets: &[usize]) -> Result<TensorRef> {
        if targets.len() != self.values[logits.0].rows() {
            return Err(NnError::Shape(format!(
                "softmax_ce: {} targets for {} rows",
                targets.len(),
                self.values[logits.0].rows()
            )));
        }
        let mut probs =
            self.alloc_zeroed(self.values[logits.0].rows(), self.values[logits.0].cols());
        let lt = &self.values[logits.0];
        let k = lt.cols();
        let mut loss = 0.0f32;
        for r in 0..lt.rows() {
            let t = targets[r];
            if t >= k {
                return Err(NnError::Index(format!("softmax_ce: class {t} of {k}")));
            }
            let row = lt.row(r);
            let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for (c, v) in row.iter().enumerate() {
                let e = (v - max).exp();
                probs.set(r, c, e);
                sum += e;
            }
            for c in 0..k {
                probs.set(r, c, probs.get(r, c) / sum);
            }
            loss -= probs.get(r, t).max(1e-12).ln();
        }
        loss /= lt.rows().max(1) as f32;
        let mut v = self.alloc_zeroed(1, 1);
        v.set(0, 0, loss);
        Ok(self.push(
            v,
            Op::SoftmaxCe {
                logits: logits.0,
                targets: targets.to_vec(),
                probs,
            },
        ))
    }

    /// Mean sigmoid binary cross-entropy of n×1 logits against 0/1 targets;
    /// returns a 1×1 loss.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn sigmoid_bce(&mut self, logits: TensorRef, targets: &[f32]) -> Result<TensorRef> {
        {
            let lt = &self.values[logits.0];
            if lt.cols() != 1 || targets.len() != lt.rows() {
                return Err(NnError::Shape(format!(
                    "sigmoid_bce: logits {}x{}, {} targets",
                    lt.rows(),
                    lt.cols(),
                    targets.len()
                )));
            }
        }
        let mut probs = self.alloc_zeroed(self.values[logits.0].rows(), 1);
        let lt = &self.values[logits.0];
        let mut loss = 0.0f32;
        for r in 0..lt.rows() {
            let p = 1.0 / (1.0 + (-lt.get(r, 0)).exp());
            probs.set(r, 0, p);
            let t = targets[r];
            loss -= t * p.max(1e-12).ln() + (1.0 - t) * (1.0 - p).max(1e-12).ln();
        }
        loss /= lt.rows().max(1) as f32;
        let mut v = self.alloc_zeroed(1, 1);
        v.set(0, 0, loss);
        Ok(self.push(
            v,
            Op::SigmoidBce {
                logits: logits.0,
                targets: targets.to_vec(),
                probs,
            },
        ))
    }

    /// Runs backward from a scalar loss, returning `(param, gradient)`
    /// pairs for every parameter leaf reached.
    ///
    /// The matmul gradients use the transpose-aware kernels
    /// [`Tensor::matmul_bt`] / [`Tensor::matmul_at`], so no transposed
    /// copies of the operands are materialized.
    #[allow(clippy::needless_range_loop)] // targets/rows indexed in lockstep
    pub fn backward(&self, loss: TensorRef) -> Result<Vec<(ParamId, Tensor)>> {
        let lt = &self.values[loss.0];
        if lt.rows() != 1 || lt.cols() != 1 {
            return Err(NnError::Shape("backward: loss must be 1x1".into()));
        }
        let mut grads: Vec<Option<Tensor>> = vec![None; self.values.len()];
        grads[loss.0] = Some(Tensor::full(1, 1, 1.0));

        let mut out = Vec::new();
        for i in (0..self.ops.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            match &self.ops[i] {
                Op::Leaf(Some(id)) => out.push((*id, g)),
                Op::Leaf(None) => {}
                Op::Matmul(a, b) => {
                    // dL/dA = g · Bᵀ and dL/dB = Aᵀ · g, both via the
                    // transpose-free kernels (bit-for-bit equal to the
                    // transpose-copy formulation).
                    let ga = g.matmul_bt(&self.values[*b])?;
                    let gb = self.values[*a].matmul_at(&g)?;
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Add(a, b) => {
                    accumulate(&mut grads, *a, g.clone());
                    accumulate(&mut grads, *b, g);
                }
                Op::AddBias(a, bias) => {
                    let mut gb = Tensor::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, x) in gb.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *bias, gb);
                    accumulate(&mut grads, *a, g);
                }
                Op::Mul(a, b) => {
                    let ga = elementwise(&g, &self.values[*b]);
                    let gb = elementwise(&g, &self.values[*a]);
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Scale(a, s) => {
                    let mut ga = g;
                    ga.scale_assign(*s);
                    accumulate(&mut grads, *a, ga);
                }
                Op::Tanh(a) => {
                    let y = &self.values[i];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(gv, yv)| gv * (1.0 - yv * yv))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::Sigmoid(a) => {
                    let y = &self.values[i];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(y.as_slice())
                        .map(|(gv, yv)| gv * yv * (1.0 - yv))
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::Relu(a) => {
                    let x = &self.values[*a];
                    let data: Vec<f32> = g
                        .as_slice()
                        .iter()
                        .zip(x.as_slice())
                        .map(|(gv, xv)| if *xv > 0.0 { *gv } else { 0.0 })
                        .collect();
                    accumulate(&mut grads, *a, Tensor::from_vec(data, g.rows(), g.cols())?);
                }
                Op::ConcatCols(a, b) => {
                    let ac = self.values[*a].cols();
                    let mut ga = Tensor::zeros(g.rows(), ac);
                    let mut gb = Tensor::zeros(g.rows(), g.cols() - ac);
                    for r in 0..g.rows() {
                        ga.row_mut(r).copy_from_slice(&g.row(r)[..ac]);
                        gb.row_mut(r).copy_from_slice(&g.row(r)[ac..]);
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::ConcatRows(a, b) => {
                    let ar = self.values[*a].rows();
                    let cols = g.cols();
                    let mut ga = Tensor::zeros(ar, cols);
                    let mut gb = Tensor::zeros(g.rows() - ar, cols);
                    for r in 0..ar {
                        ga.row_mut(r).copy_from_slice(g.row(r));
                    }
                    for r in ar..g.rows() {
                        gb.row_mut(r - ar).copy_from_slice(g.row(r));
                    }
                    accumulate(&mut grads, *a, ga);
                    accumulate(&mut grads, *b, gb);
                }
                Op::Reshape(a) => {
                    let src = &self.values[*a];
                    let ga = Tensor::from_vec(g.as_slice().to_vec(), src.rows(), src.cols())?;
                    accumulate(&mut grads, *a, ga);
                }
                Op::SumRows(a) => {
                    let rows = self.values[*a].rows();
                    let mut ga = Tensor::zeros(rows, g.cols());
                    for r in 0..rows {
                        ga.row_mut(r).copy_from_slice(g.row(0));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::MeanRows(a) => {
                    let rows = self.values[*a].rows();
                    let s = 1.0 / rows.max(1) as f32;
                    let mut ga = Tensor::zeros(rows, g.cols());
                    for r in 0..rows {
                        for (o, x) in ga.row_mut(r).iter_mut().zip(g.row(0)) {
                            *o = x * s;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::GatherRows(a, idx) => {
                    let mut ga = Tensor::zeros(self.values[*a].rows(), g.cols());
                    for (r, &i) in idx.iter().enumerate() {
                        for (o, x) in ga.row_mut(i).iter_mut().zip(g.row(r)) {
                            *o += x;
                        }
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::ScatterSumRows(a, idx) => {
                    let mut ga = Tensor::zeros(idx.len(), g.cols());
                    for (e, &i) in idx.iter().enumerate() {
                        ga.row_mut(e).copy_from_slice(g.row(i));
                    }
                    accumulate(&mut grads, *a, ga);
                }
                Op::SoftmaxCe {
                    logits,
                    targets,
                    probs,
                } => {
                    let upstream = g.get(0, 0);
                    let n = targets.len().max(1) as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, t, gl.get(r, t) - 1.0);
                    }
                    gl.scale_assign(upstream / n);
                    accumulate(&mut grads, *logits, gl);
                }
                Op::SigmoidBce {
                    logits,
                    targets,
                    probs,
                } => {
                    let upstream = g.get(0, 0);
                    let n = targets.len().max(1) as f32;
                    let mut gl = probs.clone();
                    for (r, &t) in targets.iter().enumerate() {
                        gl.set(r, 0, gl.get(r, 0) - t);
                    }
                    gl.scale_assign(upstream / n);
                    accumulate(&mut grads, *logits, gl);
                }
            }
        }
        Ok(out)
    }
}

fn accumulate(grads: &mut [Option<Tensor>], at: usize, delta: Tensor) {
    match &mut grads[at] {
        Some(g) => g.add_assign(&delta).expect("gradient shapes match"),
        slot => *slot = Some(delta),
    }
}

fn elementwise(a: &Tensor, b: &Tensor) -> Tensor {
    let data: Vec<f32> = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .collect();
    Tensor::from_vec(data, a.rows(), a.cols()).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference check: perturb each scalar of each parameter and
    /// compare the loss delta to the analytic gradient.
    fn check_gradients<F>(store: &mut ParamStore, forward: F)
    where
        F: Fn(&mut Tape) -> TensorRef,
    {
        let analytic: Vec<(ParamId, Tensor)> = {
            let mut tape = Tape::new(store);
            let loss = forward(&mut tape);
            tape.backward(loss).unwrap()
        };
        let eps = 1e-3f32;
        for (id, grad) in &analytic {
            let (rows, cols) = {
                let v = store.value(*id);
                (v.rows(), v.cols())
            };
            for r in 0..rows {
                for c in 0..cols {
                    let orig = store.value(*id).get(r, c);
                    store.value_mut(*id).set(r, c, orig + eps);
                    let up = {
                        let mut tape = Tape::new(store);
                        let l = forward(&mut tape);
                        tape.value(l).get(0, 0)
                    };
                    store.value_mut(*id).set(r, c, orig - eps);
                    let down = {
                        let mut tape = Tape::new(store);
                        let l = forward(&mut tape);
                        tape.value(l).get(0, 0)
                    };
                    store.value_mut(*id).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * eps);
                    let a = grad.get(r, c);
                    assert!(
                        (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                        "param grad mismatch at ({r},{c}): numeric {numeric} vs analytic {a}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradcheck_linear_softmax() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 3, 4, &mut rng);
        let b = store.xavier("b", 1, 4, &mut rng);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.7, -0.3], 2, 3).unwrap();
        check_gradients(&mut store, |tape| {
            let wp = tape.param(w);
            let bp = tape.param(b);
            let xi = tape.input(x.clone());
            let z = tape.matmul(xi, wp).unwrap();
            let z = tape.add_bias(z, bp).unwrap();
            tape.softmax_ce(z, &[1, 3]).unwrap()
        });
    }

    #[test]
    fn gradcheck_tanh_sigmoid_relu_mul() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 2, 3, &mut rng);
        let b = store.xavier("b", 2, 3, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let t = tape.tanh(ap);
            let s = tape.sigmoid(bp);
            let m = tape.mul(t, s).unwrap();
            let r = tape.relu(m);
            let sum = tape.sum_rows(r);
            let sum2 = tape.mean_rows(sum);
            // Reduce 1×3 to 1×1 via a fixed projection input.
            let proj = tape.input(Tensor::from_vec(vec![1.0, -2.0, 0.5], 3, 1).unwrap());
            tape.matmul(sum2, proj).unwrap()
        });
    }

    #[test]
    fn gradcheck_gather_scatter_concat() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let emb = store.xavier("emb", 4, 3, &mut rng);
        let w = store.xavier("w", 6, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let e = tape.param(emb);
            let src = tape.gather_rows(e, &[0, 2, 2]).unwrap();
            let dst = tape.gather_rows(e, &[1, 3, 0]).unwrap();
            let cat = tape.concat_cols(src, dst).unwrap();
            let agg = tape.scatter_sum_rows(cat, &[0, 1, 1], 2).unwrap();
            let wp = tape.param(w);
            let z = tape.matmul(agg, wp).unwrap();
            tape.sigmoid_bce(z, &[1.0, 0.0]).unwrap()
        });
    }

    #[test]
    fn gradcheck_concat_rows() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 1, 3, &mut rng);
        let b = store.xavier("b", 2, 3, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let cat = tape.concat_rows(ap, bp).unwrap();
            let pooled = tape.mean_rows(cat);
            let proj = tape.input(Tensor::from_vec(vec![1.0, -1.0, 2.0], 3, 1).unwrap());
            tape.matmul(pooled, proj).unwrap()
        });
    }

    #[test]
    fn gradcheck_reshape() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 3, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let row = tape.reshape(ap, 1, 3).unwrap();
            tape.softmax_ce(row, &[2]).unwrap()
        });
    }

    #[test]
    fn reshape_validates_element_count() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Tensor::zeros(2, 3));
        assert!(tape.reshape(a, 3, 2).is_ok());
        assert!(tape.reshape(a, 2, 2).is_err());
    }

    #[test]
    fn gradcheck_scale_add() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut store = ParamStore::new();
        let a = store.xavier("a", 1, 1, &mut rng);
        let b = store.xavier("b", 1, 1, &mut rng);
        check_gradients(&mut store, |tape| {
            let ap = tape.param(a);
            let bp = tape.param(b);
            let s = tape.scale(ap, 3.0);
            tape.add(s, bp).unwrap()
        });
    }

    #[test]
    fn softmax_ce_value_matches_hand_computation() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let logits = tape.input(Tensor::from_vec(vec![0.0, 0.0], 1, 2).unwrap());
        let loss = tape.softmax_ce(logits, &[0]).unwrap();
        // Uniform over 2 classes -> loss = ln 2.
        assert!((tape.value(loss).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn shape_errors_are_reported() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Tensor::zeros(2, 3));
        let b = tape.input(Tensor::zeros(2, 3));
        assert!(tape.matmul(a, b).is_err());
        let bad_bias = tape.input(Tensor::zeros(2, 3));
        assert!(tape.add_bias(a, bad_bias).is_err());
        assert!(tape.gather_rows(a, &[5]).is_err());
        assert!(tape.scatter_sum_rows(a, &[0], 3).is_err());
        assert!(tape.softmax_ce(a, &[0]).is_err());
        let non_scalar = tape.input(Tensor::zeros(2, 2));
        assert!(tape.backward(non_scalar).is_err());
    }

    #[test]
    fn backward_ignores_constant_inputs() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 2, 1, &mut rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Tensor::from_vec(vec![1.0, 2.0], 1, 2).unwrap());
        let wp = tape.param(w);
        let z = tape.matmul(x, wp).unwrap();
        let loss = tape.sigmoid_bce(z, &[1.0]).unwrap();
        let grads = tape.backward(loss).unwrap();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
    }

    /// A reset tape produces bit-for-bit identical results to a fresh one,
    /// and actually reuses buffers across passes.
    #[test]
    fn reset_reuses_buffers_without_changing_numerics() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let w = store.xavier("w", 3, 3, &mut rng);
        let x = Tensor::from_vec(vec![0.3, -0.7, 1.1], 1, 3).unwrap();
        let run = |tape: &mut Tape| -> (f32, Vec<(ParamId, Tensor)>) {
            let xi = tape.input_from(&x);
            let wp = tape.param(w);
            let z = tape.matmul(xi, wp).unwrap();
            let h = tape.tanh(z);
            let l = tape.softmax_ce(h, &[2]).unwrap();
            (tape.value(l).get(0, 0), tape.backward(l).unwrap())
        };
        let (fresh_loss, fresh_grads) = run(&mut Tape::new(&store));
        let mut tape = Tape::new(&store);
        for _ in 0..5 {
            tape.reset();
            let (loss, grads) = run(&mut tape);
            assert_eq!(loss.to_bits(), fresh_loss.to_bits());
            assert_eq!(grads, fresh_grads);
        }
        let pool = tape.into_pool();
        assert!(pool.idle_buffers() > 0, "reset recycled buffers");
    }

    /// Pools survive moving between tapes via `with_pool`/`into_pool`.
    #[test]
    fn pool_roundtrips_between_tapes() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Tensor::full(4, 4, 2.0));
        let _ = tape.tanh(a);
        let pool = tape.into_pool();
        let recycled = pool.idle_buffers();
        assert!(recycled >= 1);
        let mut tape2 = Tape::with_pool(&store, pool);
        let b = tape2.input(Tensor::full(4, 4, 0.5));
        let t = tape2.sigmoid(b);
        assert!(tape2.value(t).get(0, 0) > 0.0);
    }
}
