//! Dense row-major `f32` matrices.

use crate::{NnError, Result};

/// Tile edge for the cache-blocked matmul kernels. A 64×64 `f32` tile is
/// 16 KiB, so one tile of each operand fits comfortably in a 32 KiB L1
/// data cache alongside the output rows being accumulated.
const MM_BLOCK: usize = 64;

/// Output columns processed together by [`Tensor::matmul_bt`]. Eight
/// independent accumulator chains are enough to cover scalar FP-add
/// latency on current x86/aarch64 cores; each chain still adds its terms
/// in ascending-`k` order, so lane count never changes results.
const BT_LANES: usize = 8;

/// A dense row-major matrix of `f32`. Vectors are 1×n or n×1 matrices.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor from row-major data.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Result<Tensor> {
        if data.len() != rows * cols {
            return Err(NnError::Shape(format!(
                "data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Tensor { data, rows, cols })
    }

    /// Creates a zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other` (cache-blocked; see [`Tensor::matmul_into`]).
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let mut out = Tensor::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// Accumulates `self · other` into a pre-zeroed `out` tensor.
    ///
    /// The kernel is tiled over `MM_BLOCK`-sized row/depth blocks so one
    /// block of each operand stays L1-resident, but every `out[i][j]`
    /// still accumulates its `k` terms in ascending order with the same
    /// zero-coefficient skip as the naive triple loop — results are
    /// bit-for-bit identical to the unblocked kernel.
    pub fn matmul_into(&self, other: &Tensor, out: &mut Tensor) -> Result<()> {
        if self.cols != other.rows {
            return Err(NnError::Shape(format!(
                "matmul: {}x{} · {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        if out.rows != self.rows || out.cols != other.cols {
            return Err(NnError::Shape(format!(
                "matmul_into: out {}x{} for {}x{} product",
                out.rows, out.cols, self.rows, other.cols
            )));
        }
        for ib in (0..self.rows).step_by(MM_BLOCK) {
            let iend = (ib + MM_BLOCK).min(self.rows);
            for kb in (0..self.cols).step_by(MM_BLOCK) {
                let kend = (kb + MM_BLOCK).min(self.cols);
                for i in ib..iend {
                    let arow = &self.data[i * self.cols..(i + 1) * self.cols];
                    let orow = out.row_mut(i);
                    for (k, &a) in arow.iter().enumerate().take(kend).skip(kb) {
                        if a == 0.0 {
                            continue;
                        }
                        for (o, b) in orow.iter_mut().zip(other.row(k)) {
                            *o += a * b;
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// `self` is k×m and `other` is k×n; the result is m×n. Bit-for-bit
    /// equal to `self.transpose().matmul(other)`: for each output cell the
    /// `k` terms accumulate in ascending order with the same zero skip,
    /// but all three operands are scanned row-major (no strided reads and
    /// no transpose copy).
    pub fn matmul_at(&self, other: &Tensor) -> Result<Tensor> {
        if self.rows != other.rows {
            return Err(NnError::Shape(format!(
                "matmul_at: {}x{}ᵀ · {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Tensor::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = self.row(k);
            let brow = other.row(k);
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (o, b) in out.row_mut(i).iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// `self` is m×k and `other` is n×k; the result is m×n. Each output
    /// cell is a dot product of two contiguous rows, accumulated in the
    /// same ascending-`k` order (with the same zero skip) as
    /// `self.matmul(&other.transpose())`, so results are bit-for-bit
    /// identical to the transpose-copy path. Output columns are processed
    /// [`BT_LANES`] at a time with one accumulator per column: the chains
    /// are independent, which hides FP-add latency without reordering any
    /// single cell's additions.
    pub fn matmul_bt(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.cols {
            return Err(NnError::Shape(format!(
                "matmul_bt: {}x{} · {}x{}ᵀ",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let k = self.cols;
        let n = other.rows;
        let mut out = Tensor::zeros(self.rows, n);
        for i in 0..self.rows {
            let arow = &self.data[i * k..(i + 1) * k];
            let orow = &mut out.data[i * n..(i + 1) * n];
            let mut j = 0;
            while j + BT_LANES <= n {
                let mut bs = [&other.data[0..0]; BT_LANES];
                for (l, b) in bs.iter_mut().enumerate() {
                    *b = &other.data[(j + l) * k..(j + l + 1) * k];
                }
                let mut acc = [0.0f32; BT_LANES];
                for (ki, &a) in arow.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    for (acc_l, b) in acc.iter_mut().zip(&bs) {
                        *acc_l += a * b[ki];
                    }
                }
                orow[j..j + BT_LANES].copy_from_slice(&acc);
                j += BT_LANES;
            }
            for (o, jj) in orow[j..].iter_mut().zip(j..n) {
                let brow = &other.data[jj * k..(jj + 1) * k];
                let mut acc = 0.0f32;
                for (&a, &b) in arow.iter().zip(brow) {
                    if a == 0.0 {
                        continue;
                    }
                    acc += a * b;
                }
                *o = acc;
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::Shape("add_assign: shape mismatch".into()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales all elements in place.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Fused scale-add: `self += s · other` in one pass (no scaled copy).
    pub fn add_scaled(&mut self, other: &Tensor, s: f32) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::Shape("add_scaled: shape mismatch".into()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
        Ok(())
    }

    /// Copies row `idx[r]` of `self` into row `r` of `out` for every `r`
    /// (embedding lookup). `out` must be `idx.len()`×`self.cols`; indices
    /// are range-checked.
    pub fn gather_rows_into(&self, idx: &[usize], out: &mut Tensor) -> Result<()> {
        if out.rows != idx.len() || out.cols != self.cols {
            return Err(NnError::Shape(format!(
                "gather_rows_into: out {}x{} for {} indices of width {}",
                out.rows,
                out.cols,
                idx.len(),
                self.cols
            )));
        }
        for (r, &i) in idx.iter().enumerate() {
            if i >= self.rows {
                return Err(NnError::Index(format!(
                    "gather_rows: row {i} of {}",
                    self.rows
                )));
            }
            out.row_mut(r).copy_from_slice(self.row(i));
        }
        Ok(())
    }

    /// Scatter-adds row `e` of `self` into row `idx[e]` of the pre-zeroed
    /// `out` (message aggregation). Indices are range-checked against
    /// `out.rows()`.
    pub fn scatter_sum_rows_into(&self, idx: &[usize], out: &mut Tensor) -> Result<()> {
        if idx.len() != self.rows || out.cols != self.cols {
            return Err(NnError::Shape(format!(
                "scatter_sum_rows_into: {} indices for {} rows (width {} vs {})",
                idx.len(),
                self.rows,
                out.cols,
                self.cols
            )));
        }
        for (e, &i) in idx.iter().enumerate() {
            if i >= out.rows {
                return Err(NnError::Index(format!(
                    "scatter_sum_rows: target {i} of {}",
                    out.rows
                )));
            }
            for (o, x) in out.row_mut(i).iter_mut().zip(self.row(e)) {
                *o += x;
            }
        }
        Ok(())
    }

    /// Consumes the tensor, releasing its backing buffer (for reuse pools).
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Tensor::zeros(3, 2)).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::full(2, 2, 1.0);
        a.add_assign(&Tensor::full(2, 2, 2.0)).unwrap();
        a.scale_assign(0.5);
        assert_eq!(a.as_slice(), &[1.5, 1.5, 1.5, 1.5]);
        assert!(a.add_assign(&Tensor::zeros(1, 1)).is_err());
    }

    #[test]
    fn norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], 1, 2).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn shape_validation() {
        assert!(Tensor::from_vec(vec![1.0], 2, 2).is_err());
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u32) -> Tensor {
        // Deterministic fill with some exact zeros to exercise skip paths.
        let data: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let x = ((i as u32).wrapping_mul(2654435761).wrapping_add(seed)) % 17;
                if x == 0 {
                    0.0
                } else {
                    x as f32 / 7.0 - 1.0
                }
            })
            .collect();
        Tensor::from_vec(data, rows, cols).unwrap()
    }

    #[test]
    fn blocked_matmul_matches_naive_beyond_one_block() {
        // 70 > MM_BLOCK so multiple tiles are exercised in every dimension.
        let a = pseudo_random(70, 70, 1);
        let b = pseudo_random(70, 70, 2);
        let blocked = a.matmul(&b).unwrap();
        let mut naive = Tensor::zeros(70, 70);
        for i in 0..70 {
            for k in 0..70 {
                let av = a.get(i, k);
                if av == 0.0 {
                    continue;
                }
                for j in 0..70 {
                    let v = naive.get(i, j) + av * b.get(k, j);
                    naive.set(i, j, v);
                }
            }
        }
        assert_eq!(blocked, naive);
    }

    #[test]
    fn matmul_at_bt_match_transpose_paths() {
        let a = pseudo_random(5, 7, 3);
        let b = pseudo_random(5, 4, 4);
        assert_eq!(a.matmul_at(&b).unwrap(), a.transpose().matmul(&b).unwrap());
        let c = pseudo_random(6, 7, 5);
        assert_eq!(a.matmul_bt(&c).unwrap(), a.matmul(&c.transpose()).unwrap());
        assert!(a.matmul_at(&c).is_err());
        assert!(a.matmul_bt(&b).is_err());
    }

    #[test]
    fn add_scaled_fuses() {
        let mut a = Tensor::full(2, 2, 1.0);
        a.add_scaled(&Tensor::full(2, 2, 4.0), 0.5).unwrap();
        assert_eq!(a.as_slice(), &[3.0, 3.0, 3.0, 3.0]);
        assert!(a.add_scaled(&Tensor::zeros(1, 1), 1.0).is_err());
    }

    #[test]
    fn gather_scatter_into_kernels() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 3, 2).unwrap();
        let mut g = Tensor::zeros(2, 2);
        a.gather_rows_into(&[2, 0], &mut g).unwrap();
        assert_eq!(g.as_slice(), &[5.0, 6.0, 1.0, 2.0]);
        assert!(a.gather_rows_into(&[9, 0], &mut g).is_err());
        let mut s = Tensor::zeros(2, 2);
        a.scatter_sum_rows_into(&[1, 1, 0], &mut s).unwrap();
        assert_eq!(s.as_slice(), &[5.0, 6.0, 4.0, 6.0]);
        assert!(a.scatter_sum_rows_into(&[0, 0], &mut s).is_err());
        assert!(a.scatter_sum_rows_into(&[0, 0, 9], &mut s).is_err());
    }
}
