//! Dense row-major `f32` matrices.

use crate::{NnError, Result};

/// A dense row-major matrix of `f32`. Vectors are 1×n or n×1 matrices.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor from row-major data.
    pub fn from_vec(data: Vec<f32>, rows: usize, cols: usize) -> Result<Tensor> {
        if data.len() != rows * cols {
            return Err(NnError::Shape(format!(
                "data length {} != {rows}x{cols}",
                data.len()
            )));
        }
        Ok(Tensor { data, rows, cols })
    }

    /// Creates a zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Tensor {
        Tensor {
            data: vec![0.0; rows * cols],
            rows,
            cols,
        }
    }

    /// Creates a tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, v: f32) -> Tensor {
        Tensor {
            data: vec![v; rows * cols],
            rows,
            cols,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable underlying buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other`.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        if self.cols != other.rows {
            return Err(NnError::Shape(format!(
                "matmul: {}x{} · {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Tensor::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.get(i, k);
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        if self.rows != other.rows || self.cols != other.cols {
            return Err(NnError::Shape("add_assign: shape mismatch".into()));
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Scales all elements in place.
    pub fn scale_assign(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_small() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], 2, 2).unwrap();
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], 2, 2).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
        assert!(a.matmul(&Tensor::zeros(3, 2)).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], 2, 3).unwrap();
        let t = a.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::full(2, 2, 1.0);
        a.add_assign(&Tensor::full(2, 2, 2.0)).unwrap();
        a.scale_assign(0.5);
        assert_eq!(a.as_slice(), &[1.5, 1.5, 1.5, 1.5]);
        assert!(a.add_assign(&Tensor::zeros(1, 1)).is_err());
    }

    #[test]
    fn norm() {
        let a = Tensor::from_vec(vec![3.0, 4.0], 1, 2).unwrap();
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn shape_validation() {
        assert!(Tensor::from_vec(vec![1.0], 2, 2).is_err());
    }
}
