//! Property-based tests for the autodiff substrate: gradient checks on
//! randomly-shaped composite graphs.

use kgpip_nn::{ParamStore, Tape, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random two-layer graphs with mixed activations pass a finite-
    /// difference gradient check on every parameter.
    #[test]
    fn random_composites_gradcheck(
        seed in 0u64..500,
        rows in 1usize..4,
        inner in 1usize..5,
        act in 0usize..3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w1 = store.xavier("w1", 3, inner, &mut rng);
        let w2 = store.xavier("w2", inner, 2, &mut rng);
        let x_data: Vec<f32> = (0..rows * 3).map(|i| (i as f32 * 0.37).sin()).collect();
        let x = Tensor::from_vec(x_data, rows, 3).unwrap();
        let targets: Vec<usize> = (0..rows).map(|i| i % 2).collect();

        let forward = |store: &ParamStore| -> (f32, Vec<(kgpip_nn::ParamId, Tensor)>) {
            let mut tape = Tape::new(store);
            let xi = tape.input(x.clone());
            let w1p = tape.param(w1);
            let h = tape.matmul(xi, w1p).unwrap();
            let h = match act {
                0 => tape.tanh(h),
                1 => tape.sigmoid(h),
                _ => tape.relu(h),
            };
            let w2p = tape.param(w2);
            let logits = tape.matmul(h, w2p).unwrap();
            let loss = tape.softmax_ce(logits, &targets).unwrap();
            (tape.value(loss).get(0, 0), tape.backward(loss).unwrap())
        };
        let (_, grads) = forward(&store);
        let eps = 1e-3f32;
        for (id, grad) in &grads {
            for r in 0..grad.rows() {
                for c in 0..grad.cols() {
                    let orig = store.value(*id).get(r, c);
                    store.value_mut(*id).set(r, c, orig + eps);
                    let (up, _) = forward(&store);
                    store.value_mut(*id).set(r, c, orig - eps);
                    let (down, _) = forward(&store);
                    store.value_mut(*id).set(r, c, orig);
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = grad.get(r, c);
                    // ReLU kinks make exact agreement impossible; tolerate
                    // a loose band proportional to magnitude.
                    prop_assert!(
                        (numeric - analytic).abs() < 5e-2 * (1.0 + analytic.abs()),
                        "seed {seed} act {act}: ({r},{c}) numeric {numeric} vs {analytic}"
                    );
                }
            }
        }
    }

    /// Matmul distributes over add on the tape exactly as in plain algebra.
    #[test]
    fn tape_matches_plain_algebra(
        a_data in proptest::collection::vec(-2.0f32..2.0, 6),
        b_data in proptest::collection::vec(-2.0f32..2.0, 6),
        v_data in proptest::collection::vec(-2.0f32..2.0, 3),
    ) {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = Tensor::from_vec(a_data, 2, 3).unwrap();
        let b = Tensor::from_vec(b_data, 2, 3).unwrap();
        let v = Tensor::from_vec(v_data, 3, 1).unwrap();
        let ai = tape.input(a.clone());
        let bi = tape.input(b.clone());
        let vi = tape.input(v.clone());
        // (a + b)·v on tape
        let sum = tape.add(ai, bi).unwrap();
        let tape_result = tape.matmul(sum, vi).unwrap();
        // a·v + b·v off tape
        let mut direct = a.matmul(&v).unwrap();
        direct.add_assign(&b.matmul(&v).unwrap()).unwrap();
        for r in 0..2 {
            prop_assert!((tape.value(tape_result).get(r, 0) - direct.get(r, 0)).abs() < 1e-4);
        }
    }

    /// The blocked matmul and the transpose-aware variants are bit-for-bit
    /// equal to the naive transpose-then-multiply reference on random
    /// shapes: `matmul_at(a, b) = aᵀ·b` and `matmul_bt(a, b) = a·bᵀ`.
    #[test]
    fn transpose_aware_kernels_match_reference(
        m in 1usize..9,
        k in 1usize..9,
        n in 1usize..9,
        seed in 0u64..1000,
    ) {
        let gen = |rows: usize, cols: usize, salt: u64| -> Tensor {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((i as f64 + salt as f64 * 0.61803) * 0.733).sin() as f32)
                .collect();
            Tensor::from_vec(data, rows, cols).unwrap()
        };
        // matmul_at: (k×m)ᵀ · (k×n)
        let a = gen(k, m, seed);
        let b = gen(k, n, seed + 1);
        let fused = a.matmul_at(&b).unwrap();
        let reference = a.transpose().matmul(&b).unwrap();
        prop_assert_eq!(fused.rows(), m);
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "matmul_at diverged");
        }
        // matmul_bt: (m×k) · (n×k)ᵀ
        let a = gen(m, k, seed + 2);
        let b = gen(n, k, seed + 3);
        let fused = a.matmul_bt(&b).unwrap();
        let reference = a.matmul(&b.transpose()).unwrap();
        prop_assert_eq!(fused.cols(), n);
        for (x, y) in fused.as_slice().iter().zip(reference.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits(), "matmul_bt diverged");
        }
    }

    /// A tape reused via `reset()` computes bit-identical losses and
    /// gradients to a freshly allocated tape, for random shapes.
    #[test]
    fn reset_tape_is_bitwise_equal_to_fresh(
        rows in 1usize..5,
        inner in 1usize..6,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let w1 = store.xavier("w1", 3, inner, &mut rng);
        let w2 = store.xavier("w2", inner, 2, &mut rng);
        let x_data: Vec<f32> = (0..rows * 3).map(|i| (i as f32 * 0.41).cos()).collect();
        let x = Tensor::from_vec(x_data, rows, 3).unwrap();
        let targets: Vec<usize> = (0..rows).map(|i| i % 2).collect();
        let run = |tape: &mut Tape| -> (f32, Vec<(kgpip_nn::ParamId, Tensor)>) {
            let xi = tape.input_from(&x);
            let w1p = tape.param(w1);
            let h = tape.matmul(xi, w1p).unwrap();
            let h = tape.tanh(h);
            let w2p = tape.param(w2);
            let logits = tape.matmul(h, w2p).unwrap();
            let loss = tape.softmax_ce(logits, &targets).unwrap();
            (tape.value(loss).get(0, 0), tape.backward(loss).unwrap())
        };
        let (fresh_loss, fresh_grads) = run(&mut Tape::new(&store));
        let mut reused = Tape::new(&store);
        for _ in 0..3 {
            reused.reset();
            let (loss, grads) = run(&mut reused);
            prop_assert_eq!(loss.to_bits(), fresh_loss.to_bits());
            prop_assert_eq!(&grads, &fresh_grads);
        }
    }

    /// Gradient clipping caps the global norm without changing direction.
    #[test]
    fn clip_preserves_direction(
        g1 in proptest::collection::vec(-10.0f32..10.0, 4),
        max_norm in 0.1f32..5.0,
    ) {
        prop_assume!(g1.iter().any(|v| v.abs() > 1e-3));
        let mut store = ParamStore::new();
        let id = store.zeros("p", 2, 2);
        store.accumulate_grad(id, &Tensor::from_vec(g1.clone(), 2, 2).unwrap());
        let before = store.grad(id).clone();
        store.clip_grads(max_norm);
        let after = store.grad(id);
        prop_assert!(store.grad_norm() <= max_norm + 1e-4);
        // Direction preserved: after = s * before for a single scalar s.
        let s = if before.as_slice()[0].abs() > 1e-6 {
            after.as_slice()[0] / before.as_slice()[0]
        } else {
            1.0
        };
        for (x, y) in before.as_slice().iter().zip(after.as_slice()) {
            prop_assert!((y - s * x).abs() < 1e-4);
        }
    }
}
