//! The per-request result cache: bounded stamp-LRU keyed by table
//! *content*, mirroring the design of the mining and transform caches —
//! a `Mutex`-guarded map with logical-time stamps plus lock-free hit/miss
//! counters. Like every cache in this codebase, it may only change what a
//! request costs, never what it answers: keys include everything the
//! prediction depends on (table fingerprint, task, K, seed, and the
//! serving epoch of the model that answered), so a hit replays exactly
//! the bytes a fresh computation would produce.

use kgpip_hpo::Skeleton;
use kgpip_tabular::Task;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Everything a skeleton prediction depends on. `epoch` is the serving
/// epoch of the model that computed the entry; hot-swapping the model
/// bumps the epoch, so stale entries simply stop being addressable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub(crate) struct ResultKey {
    pub fingerprint: u64,
    pub task: Task,
    pub k: usize,
    pub seed: u64,
    pub epoch: u64,
}

/// A cached prediction: the ranked skeletons and the neighbour that
/// seeded generation.
pub(crate) type CachedPrediction = (Vec<(Skeleton, f64)>, String);

/// Counter snapshot of the result cache (returned inside `ServeStats`).
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Requests answered from the cache.
    pub hits: u64,
    /// Requests that had to compute their prediction.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

struct Inner {
    map: HashMap<ResultKey, (u64, CachedPrediction)>,
    stamp: u64,
}

/// Bounded least-recently-used map from request content to prediction.
pub(crate) struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// Recovers the guard from a poisoned cache lock. Every mutation under
/// this lock is a single `HashMap` call plus a stamp bump, so a panicking
/// holder cannot leave the map torn; at worst the cache loses one insert,
/// which only costs a recomputation.
fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ResultCache {
    /// Creates a cache bounded to `capacity` entries; `capacity == 0`
    /// disables caching (every probe misses, inserts are dropped).
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                stamp: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Looks up a prediction, refreshing its recency stamp on hit.
    pub fn get(&self, key: &ResultKey) -> Option<CachedPrediction> {
        let mut inner = recover(self.inner.lock());
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(key) {
            Some((when, value)) => {
                *when = stamp;
                let value = value.clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a prediction, evicting the least-recently-used entry when
    /// the capacity bound is hit.
    pub fn insert(&self, key: ResultKey, value: CachedPrediction) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = recover(self.inner.lock());
        inner.stamp += 1;
        let stamp = inner.stamp;
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            // xlint: allow(nondeterministic-iteration): stamps are unique, so min_by_key has one well-defined answer regardless of visit order; eviction changes cost only, never answers
            let oldest = inner.map.iter().min_by_key(|(_, (when, _))| *when);
            let oldest = oldest.map(|(k, _)| *k);
            if let Some(oldest) = oldest {
                inner.map.remove(&oldest);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.map.insert(key, (stamp, value));
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: recover(self.inner.lock()).map.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kgpip_learners::EstimatorKind;

    fn key(fingerprint: u64) -> ResultKey {
        ResultKey {
            fingerprint,
            task: Task::Binary,
            k: 3,
            seed: 0,
            epoch: 0,
        }
    }

    fn value(tag: &str) -> CachedPrediction {
        (
            vec![(Skeleton::bare(EstimatorKind::XgBoost), -1.0)],
            tag.to_string(),
        )
    }

    #[test]
    fn lru_evicts_the_stalest_entry() {
        let cache = ResultCache::new(2);
        cache.insert(key(1), value("a"));
        cache.insert(key(2), value("b"));
        assert!(cache.get(&key(1)).is_some()); // refresh 1 → 2 is stalest
        cache.insert(key(3), value("c"));
        assert!(cache.get(&key(2)).is_none(), "2 was evicted");
        assert!(cache.get(&key(1)).is_some());
        assert!(cache.get(&key(3)).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.hits, 3);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn keys_discriminate_every_request_dimension() {
        let cache = ResultCache::new(16);
        cache.insert(key(1), value("a"));
        for other in [
            ResultKey {
                fingerprint: 2,
                ..key(1)
            },
            ResultKey { k: 4, ..key(1) },
            ResultKey { seed: 9, ..key(1) },
            ResultKey { epoch: 1, ..key(1) },
            ResultKey {
                task: Task::Regression,
                ..key(1)
            },
        ] {
            assert!(cache.get(&other).is_none(), "{other:?} must not alias");
        }
        assert_eq!(cache.get(&key(1)).unwrap().1, "a");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = ResultCache::new(0);
        cache.insert(key(1), value("a"));
        assert!(cache.get(&key(1)).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
