//! `kgpip-serve` — a concurrent, batched prediction service over
//! immutable KGpip artifacts.
//!
//! The core crate's [`TrainedModel`] is an immutable value: every
//! prediction entry point takes `&self`, so one `Arc<TrainedModel>` can
//! answer from any number of threads without locks. This crate supplies
//! the serving machinery around that artifact:
//!
//! * a worker pool draining a shared request queue in coalesced batches
//!   ([`ServeHandle`]),
//! * a content-addressed result cache (table fingerprint + task + K +
//!   seed + model epoch) with stamp-LRU eviction,
//! * atomic model hot-swap: replace the served artifact behind traffic
//!   with [`ServeHandle::swap_model`], with epoch-tagged cache keys so
//!   stale entries are never replayed.
//!
//! The house invariant holds throughout: served predictions are
//! **bit-identical** to calling [`TrainedModel::predict_skeletons`]
//! directly, at any worker count and batch size — concurrency, batching,
//! and caching change cost, never answers.
//!
//! ```no_run
//! use kgpip_serve::prelude::*;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let model = TrainedModel::open("model.kgps")?;
//! let server = ServeHandle::start(model.share(), ServeConfig::default().with_workers(4));
//! # let table: DataFrame = todo!();
//! let response = server.predict(ServeRequest { table, task: Task::Binary, k: 3, seed: 0 })?;
//! println!("{} skeletons via {}", response.skeletons.len(), response.neighbour);
//! server.shutdown();
//! # Ok(()) }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod server;

pub use cache::CacheStats;
pub use server::{
    Pending, ServeConfig, ServeError, ServeHandle, ServeRequest, ServeResponse, ServeStats,
};

/// One-stop imports for serving: everything from [`kgpip::prelude`] plus
/// the serving types.
pub mod prelude {
    pub use crate::{
        CacheStats, Pending, ServeConfig, ServeError, ServeHandle, ServeRequest, ServeResponse,
        ServeStats,
    };
    pub use kgpip::prelude::*;
}

#[doc(no_inline)]
pub use kgpip::TrainedModel;
