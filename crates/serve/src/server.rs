//! The serving loop: a thread pool draining a shared request queue in
//! batches, answering against an atomically hot-swappable
//! [`Arc<TrainedModel>`].
//!
//! # Design
//!
//! * **Batching.** Requests enqueue onto one queue; each worker drains up
//!   to `max_batch` jobs at a time and pins one model snapshot for the
//!   whole batch. Within a batch the worker first probes the result cache
//!   for every job, then runs the embedding stage for all misses (the
//!   "embedding wave"), then the generation stage per miss. The stages
//!   are the same pure [`TrainedModel`] methods the direct
//!   `predict_skeletons` call composes, so batching changes *scheduling*,
//!   never *results*.
//! * **Hot swap.** The current model lives in an `RwLock<(Arc, epoch)>`
//!   slot. [`ServeHandle::swap_model`] replaces the `Arc` and bumps the
//!   epoch; in-flight batches keep the snapshot they pinned, and the
//!   epoch is part of every cache key, so entries computed by an old
//!   model are never replayed for a new one.
//! * **Determinism.** The house invariant — concurrency and caches change
//!   cost, never answers — holds end to end: at any worker count and any
//!   batch size, `predict` returns bit-for-bit what
//!   [`TrainedModel::predict_skeletons`] returns directly (proven by
//!   `tests/serve_identity.rs`).

use crate::cache::{CacheStats, ResultCache, ResultKey};
use kgpip::{KgpipError, TrainedModel};
use kgpip_hpo::{Flaml, Optimizer, Skeleton};
use kgpip_tabular::{DataFrame, Task};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// Configuration of a serving instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads draining the request queue.
    pub workers: usize,
    /// Most jobs a worker takes per batch (≥ 1). Larger batches amortize
    /// queue traffic and keep one model snapshot hot across requests.
    pub max_batch: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_capacity: usize,
    /// The §3.6 capability document predictions are validated against.
    /// Defaults to the FLAML-style engine's document.
    pub capabilities_json: String,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 2,
            max_batch: 8,
            cache_capacity: 256,
            capabilities_json: Flaml::new(0).capabilities(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> ServeConfig {
        self.workers = workers.max(1);
        self
    }

    /// Sets the batch-size cap (clamped to ≥ 1).
    pub fn with_max_batch(mut self, max_batch: usize) -> ServeConfig {
        self.max_batch = max_batch.max(1);
        self
    }

    /// Sets the result-cache capacity (0 disables caching).
    pub fn with_cache_capacity(mut self, capacity: usize) -> ServeConfig {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the capability document.
    pub fn with_capabilities(mut self, capabilities_json: impl Into<String>) -> ServeConfig {
        self.capabilities_json = capabilities_json.into();
        self
    }
}

/// One prediction request: a bare table plus the task to solve for.
#[derive(Debug, Clone)]
pub struct ServeRequest {
    /// The unseen table (features only; no labels are needed to predict
    /// skeletons).
    pub table: DataFrame,
    /// The supervised task the pipelines must support.
    pub task: Task,
    /// How many ranked skeletons to return (the paper's K).
    pub k: usize,
    /// Sampling seed for generation.
    pub seed: u64,
}

/// The answer to one [`ServeRequest`].
#[derive(Debug, Clone)]
pub struct ServeResponse {
    /// Ranked `(skeleton, generation score)` pairs, best first.
    pub skeletons: Vec<(Skeleton, f64)>,
    /// The nearest seen dataset that seeded generation.
    pub neighbour: String,
    /// Whether this answer was replayed from the result cache.
    pub cached: bool,
    /// Size of the batch this request was processed in (1 = alone).
    pub batch_size: usize,
    /// Serving epoch of the model that answered.
    pub model_epoch: u64,
}

/// Failures surfaced to a serving client.
#[derive(Debug)]
pub enum ServeError {
    /// The server shut down before this request was answered.
    Shutdown,
    /// The prediction itself failed (empty catalog, `k == 0`, …).
    Predict(KgpipError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Shutdown => write!(f, "server shut down before answering"),
            ServeError::Predict(e) => write!(f, "prediction failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Aggregate serving counters (all monotone; read at any time).
#[derive(Debug, Clone, Copy)]
pub struct ServeStats {
    /// Requests answered (success or typed failure).
    pub served: u64,
    /// Batches processed.
    pub batches: u64,
    /// Model hot-swaps performed.
    pub swaps: u64,
    /// Datasets registered online via [`ServeHandle::register_dataset`].
    pub registered: u64,
    /// Result-cache counters.
    pub cache: CacheStats,
}

struct Job {
    request: ServeRequest,
    reply: mpsc::Sender<Result<ServeResponse, ServeError>>,
}

struct Queue {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    /// The hot-swap slot: current model + its serving epoch.
    slot: RwLock<(Arc<TrainedModel>, u64)>,
    queue: Mutex<Queue>,
    available: Condvar,
    cache: ResultCache,
    capabilities: String,
    max_batch: usize,
    served: AtomicU64,
    batches: AtomicU64,
    swaps: AtomicU64,
    registered: AtomicU64,
}

/// A still-pending [`ServeHandle::submit`]; redeem with
/// [`Pending::wait`].
pub struct Pending {
    receiver: mpsc::Receiver<Result<ServeResponse, ServeError>>,
}

impl Pending {
    /// Blocks until the response arrives.
    pub fn wait(self) -> Result<ServeResponse, ServeError> {
        self.receiver.recv().unwrap_or(Err(ServeError::Shutdown))
    }
}

/// Handle to a running serving instance. Cloneless by design: drop (or
/// [`ServeHandle::shutdown`]) stops the workers after the queue drains.
pub struct ServeHandle {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeHandle {
    /// Starts a serving instance over the given artifact.
    pub fn start(model: Arc<TrainedModel>, config: ServeConfig) -> ServeHandle {
        let shared = Arc::new(Shared {
            slot: RwLock::new((model, 0)),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            cache: ResultCache::new(config.cache_capacity),
            capabilities: config.capabilities_json,
            max_batch: config.max_batch.max(1),
            served: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            swaps: AtomicU64::new(0),
            registered: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("kgpip-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // xlint: allow(panic-in-serve-path): runs once at startup, before any request is accepted; spawn failure means the host cannot run the service at all
                    .expect("spawn serve worker")
            })
            .collect();
        ServeHandle { shared, workers }
    }

    /// Enqueues a request and blocks for its response.
    pub fn predict(&self, request: ServeRequest) -> Result<ServeResponse, ServeError> {
        self.submit(request).wait()
    }

    /// Enqueues a request without blocking; lets tests and pipelined
    /// clients pile up a wave of requests so workers actually batch them.
    pub fn submit(&self, request: ServeRequest) -> Pending {
        let (reply, receiver) = mpsc::channel();
        {
            let mut queue = recover(self.shared.queue.lock());
            if queue.open {
                queue.jobs.push_back(Job { request, reply });
            } else {
                let _ = reply.send(Err(ServeError::Shutdown));
            }
        }
        self.shared.available.notify_one();
        Pending { receiver }
    }

    /// Atomically replaces the served model. In-flight batches finish on
    /// the model they pinned; subsequent batches (and cache keys) use the
    /// new one. Returns the new serving epoch.
    pub fn swap_model(&self, model: Arc<TrainedModel>) -> u64 {
        let mut slot = recover(self.shared.slot.write());
        slot.0 = model;
        slot.1 += 1;
        self.shared.swaps.fetch_add(1, Ordering::Relaxed);
        slot.1
    }

    /// Registers an unseen dataset in the served catalog online, without
    /// a full model hot-swap: clones the current artifact, registers the
    /// table (`TrainedModel::register_dataset` — the active similarity
    /// tier grows incrementally, no retrain), and installs the grown
    /// model under a new epoch. In-flight batches keep the snapshot they
    /// pinned; the epoch bump keys the cache so pre-registration answers
    /// are never replayed against the grown catalog.
    ///
    /// Errors with [`ServeError::Predict`] wrapping
    /// `KgpipError::DuplicateDataset` when the name is already cataloged
    /// (the slot is left untouched). Returns the new serving epoch.
    pub fn register_dataset(&self, name: &str, table: &DataFrame) -> Result<u64, ServeError> {
        let mut slot = recover(self.shared.slot.write());
        let mut grown = (*slot.0).clone();
        grown
            .register_dataset(name, table)
            .map_err(ServeError::Predict)?;
        slot.0 = Arc::new(grown);
        slot.1 += 1;
        self.shared.registered.fetch_add(1, Ordering::Relaxed);
        Ok(slot.1)
    }

    /// The current serving epoch (starts at 0, bumped per swap).
    pub fn model_epoch(&self) -> u64 {
        recover(self.shared.slot.read()).1
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            served: self.shared.served.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            swaps: self.shared.swaps.load(Ordering::Relaxed),
            registered: self.shared.registered.load(Ordering::Relaxed),
            cache: self.shared.cache.stats(),
        }
    }

    /// Stops accepting requests, drains the queue, joins the workers, and
    /// returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        {
            let mut queue = recover(self.shared.queue.lock());
            queue.open = false;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for ServeHandle {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// Recovers the guard from a poisoned serve lock instead of propagating
/// the panic. A worker that panics mid-batch abandons its own jobs but
/// never leaves the protected state torn — queue mutations are single
/// `VecDeque` calls and the model slot is an `(Arc, epoch)` pair swapped
/// whole — so continuing to serve the remaining traffic beats letting one
/// bad request take the whole service down.
fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: &Shared) {
    loop {
        let batch: Vec<Job> = {
            let mut queue = recover(shared.queue.lock());
            loop {
                if !queue.jobs.is_empty() {
                    let n = queue.jobs.len().min(shared.max_batch);
                    break queue.jobs.drain(..n).collect();
                }
                if !queue.open {
                    return;
                }
                queue = recover(shared.available.wait(queue));
            }
        };
        process_batch(shared, batch);
    }
}

/// Answers one batch against a single pinned model snapshot: cache probe
/// per job, one embedding wave over the misses, then generation per miss.
fn process_batch(shared: &Shared, batch: Vec<Job>) {
    shared.batches.fetch_add(1, Ordering::Relaxed);
    let batch_size = batch.len();
    let (model, epoch) = {
        let slot = recover(shared.slot.read());
        (Arc::clone(&slot.0), slot.1)
    };

    // Stage 1: fingerprint + cache probe. Hits answer immediately.
    let mut misses: Vec<(Job, ResultKey)> = Vec::with_capacity(batch_size);
    for job in batch {
        let key = ResultKey {
            fingerprint: job.request.table.fingerprint(),
            task: job.request.task,
            k: job.request.k,
            seed: job.request.seed,
            epoch,
        };
        if let Some((skeletons, neighbour)) = shared.cache.get(&key) {
            respond(
                shared,
                job,
                Ok(ServeResponse {
                    skeletons,
                    neighbour,
                    cached: true,
                    batch_size,
                    model_epoch: epoch,
                }),
            );
        } else {
            misses.push((job, key));
        }
    }

    // Stage 2: the embedding wave — embed every miss's table before any
    // generation runs (each embedding is pure in its own table, so order
    // is irrelevant to results).
    let queries: Vec<Vec<f64>> = misses
        .iter()
        .map(|(job, _)| model.embed_table(&job.request.table))
        .collect();

    // Stage 3: generation per miss. Identical requests inside one batch
    // dedup against the entry their predecessor just inserted.
    for ((job, key), query) in misses.into_iter().zip(queries) {
        if let Some((skeletons, neighbour)) = shared.cache.get(&key) {
            respond(
                shared,
                job,
                Ok(ServeResponse {
                    skeletons,
                    neighbour,
                    cached: true,
                    batch_size,
                    model_epoch: epoch,
                }),
            );
            continue;
        }
        let outcome = model.predict_from_query_embedding(
            &query,
            job.request.task,
            job.request.k,
            &shared.capabilities,
            job.request.seed,
        );
        let response = match outcome {
            Ok((skeletons, neighbour)) => {
                shared
                    .cache
                    .insert(key, (skeletons.clone(), neighbour.clone()));
                Ok(ServeResponse {
                    skeletons,
                    neighbour,
                    cached: false,
                    batch_size,
                    model_epoch: epoch,
                })
            }
            Err(e) => Err(ServeError::Predict(e)),
        };
        respond(shared, job, response);
    }
}

fn respond(shared: &Shared, job: Job, response: Result<ServeResponse, ServeError>) {
    shared.served.fetch_add(1, Ordering::Relaxed);
    // A dropped receiver just means the client stopped waiting.
    let _ = job.reply.send(response);
}
