//! The serving invariant: answers from the batched, cached, concurrent
//! server are **bit-identical** to direct `TrainedModel::predict_skeletons`
//! calls — at any worker count, any batch size, with caching on or off,
//! and across model hot-swaps.

use kgpip::TrainedModel;
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_hpo::{Flaml, Optimizer, Skeleton};
use kgpip_serve::{ServeConfig, ServeError, ServeHandle, ServeRequest};
use kgpip_tabular::{Column, DataFrame, Task};

fn table_like(offset: f64, n: usize) -> DataFrame {
    DataFrame::from_columns(vec![
        (
            "f0".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 10) as f64).collect::<Vec<_>>()),
        ),
        (
            "f1".to_string(),
            Column::from_f64((0..n).map(|i| offset + (i % 7) as f64).collect::<Vec<_>>()),
        ),
    ])
    .unwrap()
}

fn trained_artifact(seed: u64) -> TrainedModel {
    let profiles = vec![
        DatasetProfile::new("alpha", false),
        DatasetProfile::new("beta", false),
    ];
    let scripts = generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 6,
            unsupported_fraction: 0.0,
            seed,
            ..CorpusConfig::default()
        },
    );
    let tables = vec![
        ("alpha".to_string(), table_like(0.0, 30)),
        ("beta".to_string(), table_like(500.0, 30)),
    ];
    let config = kgpip::KgpipConfig::default().with_generator(kgpip_graphgen::GeneratorConfig {
        hidden: 10,
        prop_rounds: 1,
        epochs: 3,
        seed,
        ..kgpip_graphgen::GeneratorConfig::default()
    });
    kgpip::Kgpip::train(&scripts, &tables, config)
        .unwrap()
        .into_artifact()
}

fn query_tables() -> Vec<DataFrame> {
    (0..10)
        .map(|i| table_like(i as f64 * 37.0, 20 + i))
        .collect()
}

fn assert_bit_identical(a: &[(Skeleton, f64)], b: &[(Skeleton, f64)], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: length");
    for (i, ((s1, g1), (s2, g2))) in a.iter().zip(b).enumerate() {
        assert_eq!(s1, s2, "{context}: skeleton {i}");
        assert_eq!(g1.to_bits(), g2.to_bits(), "{context}: score {i}");
    }
}

/// Served predictions equal direct ones at every (workers × max_batch)
/// combination, for a wave of simultaneously-submitted requests.
#[test]
fn serve_is_bit_identical_to_direct_predictions() {
    let model = trained_artifact(0);
    let caps = Flaml::new(0).capabilities();
    let tables = query_tables();
    let direct: Vec<_> = tables
        .iter()
        .map(|t| model.predict_table(t, Task::Binary, 3, &caps, 5).unwrap())
        .collect();

    for workers in [1usize, 2, 4] {
        for max_batch in [1usize, 8] {
            let server = ServeHandle::start(
                model.share(),
                ServeConfig::default()
                    .with_workers(workers)
                    .with_max_batch(max_batch)
                    .with_cache_capacity(64),
            );
            // Submit the whole wave first so workers actually coalesce.
            let pending: Vec<_> = tables
                .iter()
                .map(|t| {
                    server.submit(ServeRequest {
                        table: t.clone(),
                        task: Task::Binary,
                        k: 3,
                        seed: 5,
                    })
                })
                .collect();
            for (i, p) in pending.into_iter().enumerate() {
                let response = p.wait().unwrap();
                let context = format!("workers={workers} batch={max_batch} table={i}");
                assert_bit_identical(&response.skeletons, &direct[i].0, &context);
                assert_eq!(response.neighbour, direct[i].1, "{context}");
                assert_eq!(response.model_epoch, 0, "{context}");
                assert!(response.batch_size >= 1 && response.batch_size <= max_batch);
            }
            let stats = server.shutdown();
            assert_eq!(stats.served, tables.len() as u64);
            assert!(stats.batches >= 1);
            assert!(
                stats.batches <= stats.served,
                "batches never exceed requests"
            );
        }
    }
}

/// Repeating a request hits the result cache and replays the identical
/// answer; the counters account for every probe.
#[test]
fn result_cache_hits_replay_identical_answers() {
    let model = trained_artifact(1);
    let server = ServeHandle::start(
        model.share(),
        ServeConfig::default()
            .with_workers(1)
            .with_cache_capacity(8),
    );
    let request = ServeRequest {
        table: table_like(3.0, 25),
        task: Task::Binary,
        k: 3,
        seed: 9,
    };
    let first = server.predict(request.clone()).unwrap();
    assert!(!first.cached);
    let second = server.predict(request.clone()).unwrap();
    assert!(second.cached, "identical request must hit the cache");
    assert_bit_identical(&first.skeletons, &second.skeletons, "cache replay");
    assert_eq!(first.neighbour, second.neighbour);

    // A different seed is a different request.
    let third = server
        .predict(ServeRequest {
            seed: 10,
            ..request
        })
        .unwrap();
    assert!(!third.cached);

    let stats = server.shutdown();
    assert_eq!(stats.served, 3);
    assert_eq!(stats.cache.hits, 1);
    assert!(stats.cache.misses >= 2);
    assert_eq!(stats.swaps, 0);
}

/// Hot-swapping under concurrent load: every response must be bit-
/// identical to the direct prediction of the model its epoch names —
/// never a blend of old and new.
#[test]
fn hot_swap_under_load_never_blends_models() {
    let model_a = trained_artifact(0);
    let model_b = trained_artifact(7);
    let caps = Flaml::new(0).capabilities();
    let tables = query_tables();
    let direct_a: Vec<_> = tables
        .iter()
        .map(|t| model_a.predict_table(t, Task::Binary, 3, &caps, 5).unwrap())
        .collect();
    let direct_b: Vec<_> = tables
        .iter()
        .map(|t| model_b.predict_table(t, Task::Binary, 3, &caps, 5).unwrap())
        .collect();

    let server = ServeHandle::start(
        model_a.share(),
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_cache_capacity(64),
    );
    let mut responses = Vec::new();
    for round in 0..6 {
        let pending: Vec<_> = tables
            .iter()
            .map(|t| {
                server.submit(ServeRequest {
                    table: t.clone(),
                    task: Task::Binary,
                    k: 3,
                    seed: 5,
                })
            })
            .collect();
        if round == 2 {
            let epoch = server.swap_model(model_b.share());
            assert_eq!(epoch, 1);
        }
        responses.push(
            pending
                .into_iter()
                .map(|p| p.wait().unwrap())
                .collect::<Vec<_>>(),
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.swaps, 1);

    let mut saw_old = false;
    let mut saw_new = false;
    for wave in &responses {
        for (i, response) in wave.iter().enumerate() {
            let (expected, label) = match response.model_epoch {
                0 => (&direct_a[i], "epoch0"),
                1 => (&direct_b[i], "epoch1"),
                other => panic!("unexpected epoch {other}"),
            };
            match response.model_epoch {
                0 => saw_old = true,
                _ => saw_new = true,
            }
            assert_bit_identical(
                &response.skeletons,
                &expected.0,
                &format!("{label} table={i}"),
            );
            assert_eq!(response.neighbour, expected.1);
        }
    }
    assert!(saw_old, "some waves ran before the swap");
    assert!(saw_new, "some waves ran after the swap");
    // Final waves must all be on the new model.
    assert!(responses.last().unwrap().iter().all(|r| r.model_epoch == 1));
}

/// Typed prediction failures travel back to the caller instead of
/// killing a worker.
#[test]
fn prediction_errors_are_typed_not_fatal() {
    let model = trained_artifact(0);
    let server = ServeHandle::start(model.share(), ServeConfig::default().with_workers(1));
    let err = server
        .predict(ServeRequest {
            table: table_like(1.0, 20),
            task: Task::Binary,
            k: 0,
            seed: 0,
        })
        .unwrap_err();
    assert!(matches!(
        err,
        ServeError::Predict(kgpip::KgpipError::NoValidSkeleton)
    ));
    // The worker survived; a well-formed request still answers.
    let ok = server
        .predict(ServeRequest {
            table: table_like(1.0, 20),
            task: Task::Binary,
            k: 3,
            seed: 0,
        })
        .unwrap();
    assert!(!ok.skeletons.is_empty());
    server.shutdown();
}

/// Online dataset registration grows the served catalog under a new
/// epoch: post-registration queries can retrieve the new dataset, the
/// cache never replays pre-registration answers for the grown model, and
/// duplicate names are refused without touching the slot.
#[test]
fn register_dataset_grows_the_served_catalog() {
    let model = trained_artifact(0);
    let server = ServeHandle::start(
        model.share(),
        ServeConfig::default()
            .with_workers(2)
            .with_cache_capacity(16),
    );
    // A table very unlike the training ones; before registration its
    // neighbour is whatever the trained catalog offers.
    let novel = table_like(9000.0, 26);
    let before = server
        .predict(ServeRequest {
            table: novel.clone(),
            task: Task::Binary,
            k: 2,
            seed: 3,
        })
        .unwrap();
    assert_eq!(before.model_epoch, 0);

    let epoch = server.register_dataset("novel", &novel).unwrap();
    assert_eq!(epoch, 1);
    let after = server
        .predict(ServeRequest {
            table: novel.clone(),
            task: Task::Binary,
            k: 2,
            seed: 3,
        })
        .unwrap();
    assert_eq!(after.model_epoch, 1);
    assert!(
        !after.cached,
        "epoch bump must keep pre-registration cache entries out"
    );
    assert_eq!(
        after.neighbour, "novel",
        "the registered dataset is its own nearest neighbour"
    );

    // Duplicate registration is a typed error and does not bump epochs.
    let err = server.register_dataset("novel", &novel).unwrap_err();
    assert!(matches!(
        err,
        ServeError::Predict(kgpip::KgpipError::DuplicateDataset(_))
    ));
    assert_eq!(server.model_epoch(), 1);

    let stats = server.shutdown();
    assert_eq!(stats.registered, 1);
    assert_eq!(stats.swaps, 0, "registration is not a hot-swap");
}

/// A quantized artifact serves bit-identically to its unquantized twin
/// (rerank covers the tiny catalog, so answers are exact), and online
/// registration encodes against the frozen codebooks — same epoch-bump
/// contract as the unquantized path, no codebook retrain.
#[test]
fn quantized_models_serve_and_register_identically() {
    use kgpip_embeddings::PqConfig;
    let plain = trained_artifact(0);
    let mut quantized = plain.clone();
    quantized
        .quantize_index(PqConfig {
            m: 4,
            rerank: 8,
            seed: 0,
        })
        .unwrap();
    assert!(quantized.index().is_quantized());
    let caps = Flaml::new(0).capabilities();
    let tables = query_tables();
    let direct: Vec<_> = tables
        .iter()
        .map(|t| plain.predict_table(t, Task::Binary, 3, &caps, 5).unwrap())
        .collect();

    let server = ServeHandle::start(
        quantized.share(),
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_cache_capacity(16),
    );
    for (i, t) in tables.iter().enumerate() {
        let response = server
            .predict(ServeRequest {
                table: t.clone(),
                task: Task::Binary,
                k: 3,
                seed: 5,
            })
            .unwrap();
        let context = format!("quantized table={i}");
        assert_bit_identical(&response.skeletons, &direct[i].0, &context);
        assert_eq!(response.neighbour, direct[i].1, "{context}");
    }

    // Online registration on the quantized catalog: the new dataset is
    // encoded against the frozen codebooks and immediately retrievable.
    let book_before = quantized.index().pq().unwrap().book().to_bytes();
    let novel = table_like(9000.0, 26);
    let epoch = server.register_dataset("novel", &novel).unwrap();
    assert_eq!(epoch, 1);
    let after = server
        .predict(ServeRequest {
            table: novel.clone(),
            task: Task::Binary,
            k: 2,
            seed: 3,
        })
        .unwrap();
    assert_eq!(after.model_epoch, 1);
    assert_eq!(after.neighbour, "novel");
    assert_eq!(
        quantized.index().pq().unwrap().book().to_bytes(),
        book_before,
        "registration must not retrain codebooks"
    );
    server.shutdown();
}

/// Dropping the handle closes the queue but drains every request that
/// was already submitted — no request is silently lost.
#[test]
fn drop_drains_pending_requests() {
    let model = trained_artifact(0);
    let server = ServeHandle::start(
        model.share(),
        ServeConfig::default().with_workers(1).with_max_batch(2),
    );
    let pending: Vec<_> = (0..5)
        .map(|i| {
            server.submit(ServeRequest {
                table: table_like(i as f64, 20),
                task: Task::Binary,
                k: 2,
                seed: 0,
            })
        })
        .collect();
    drop(server);
    for p in pending {
        assert!(p.wait().is_ok(), "submitted requests are drained on drop");
    }
}
