//! Chunked columnar frames: the out-of-core substrate.
//!
//! A [`ChunkedFrame`] holds each column as a sequence of fixed-size row
//! chunks instead of one contiguous column. Every consumer that can fold
//! over chunks (sampling, streamed statistics, histogram GBT fits) avoids
//! materializing the full column; [`ChunkedFrame::to_frame`] concatenates
//! the chunks back into the exact [`DataFrame`] the in-memory reader would
//! have produced — chunking changes what a stage *costs*, never what it
//! *computes*.
//!
//! Two deterministic primitives live here because every chunked consumer
//! shares them:
//!
//! * [`sample_rows`] — a seeded bottom-k row sample keyed by the *global*
//!   row index, so the sampled set is identical at any chunk size and any
//!   worker count, and equals the full row set whenever the table fits
//!   under the bound (sampling degrades to the identity).
//! * [`ChunkedFrame::column_stats_sampled`] — per-column summary stats
//!   with moments accumulated chunk-by-chunk in row order. The fold
//!   replays the exact floating-point operation sequence of
//!   [`ColumnStats::compute`], so everything except the quantiles is
//!   bit-identical to the in-memory stats at any chunk size; quantiles
//!   come from the sample and are exact when the sample covers all rows.

use crate::column::{Column, ColumnKind};
use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::stats::ColumnStats;
use crate::Result;
use std::collections::BinaryHeap;
use std::collections::HashSet;
use std::sync::Arc;

/// A frame stored as per-column row chunks. Invariants: every column has
/// the same chunk layout (`chunk_sizes`), and categorical chunks of one
/// column share a single dictionary `Arc`.
#[derive(Debug, Clone)]
pub struct ChunkedFrame {
    names: Vec<String>,
    /// `columns[c][k]` is chunk `k` of column `c`.
    columns: Vec<Vec<Column>>,
    chunk_sizes: Vec<usize>,
    rows: usize,
}

impl ChunkedFrame {
    /// Assembles a frame from parts; used by the chunked reader.
    pub(crate) fn from_parts(
        names: Vec<String>,
        columns: Vec<Vec<Column>>,
        chunk_sizes: Vec<usize>,
    ) -> ChunkedFrame {
        let rows = chunk_sizes.iter().sum();
        ChunkedFrame {
            names,
            columns,
            chunk_sizes,
            rows,
        }
    }

    /// Splits an in-memory frame into chunks of `chunk_rows` rows. The
    /// categorical dictionaries are shared, not copied, so
    /// `from_frame(f, n).to_frame()` reproduces `f` bit-for-bit.
    pub fn from_frame(frame: &DataFrame, chunk_rows: usize) -> ChunkedFrame {
        let chunk_rows = chunk_rows.max(1);
        let rows = frame.num_rows();
        let mut chunk_sizes = Vec::new();
        let mut starts = Vec::new();
        let mut at = 0usize;
        while at < rows {
            let len = chunk_rows.min(rows - at);
            starts.push(at);
            chunk_sizes.push(len);
            at += len;
        }
        let columns = frame
            .columns()
            .iter()
            .map(|col| {
                starts
                    .iter()
                    .zip(chunk_sizes.iter())
                    .map(|(&s, &len)| {
                        let idx: Vec<usize> = (s..s + len).collect();
                        col.take(&idx)
                    })
                    .collect()
            })
            .collect();
        ChunkedFrame {
            names: frame.names().to_vec(),
            columns,
            chunk_sizes,
            rows,
        }
    }

    /// Total rows across all chunks.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.names.len()
    }

    /// Number of chunks (identical for every column).
    pub fn num_chunks(&self) -> usize {
        self.chunk_sizes.len()
    }

    /// Rows per chunk, in chunk order.
    pub fn chunk_sizes(&self) -> &[usize] {
        &self.chunk_sizes
    }

    /// Column names in column order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The chunks of column `c`, in chunk order.
    pub fn column_chunks(&self, c: usize) -> &[Column] {
        &self.columns[c]
    }

    /// Concatenates every column back into an in-memory [`DataFrame`] —
    /// bit-identical to the frame the in-memory reader produces.
    pub fn to_frame(&self) -> Result<DataFrame> {
        let mut frame = DataFrame::new();
        for (name, chunks) in self.names.iter().zip(self.columns.iter()) {
            frame.push(name.clone(), concat_column(chunks))?;
        }
        Ok(frame)
    }

    /// Materializes the given global rows (ascending or not, repeats
    /// allowed) into an in-memory frame. Categorical dictionaries are
    /// shared with the chunks.
    pub fn take_rows(&self, rows: &[usize]) -> Result<DataFrame> {
        if rows.iter().any(|&r| r >= self.rows) {
            return Err(TabularError::InvalidArgument(format!(
                "take_rows: row out of range (rows = {})",
                self.rows
            )));
        }
        // Global row -> (chunk, local row), resolved once.
        let mut located: Vec<(usize, usize)> = Vec::with_capacity(rows.len());
        for &r in rows {
            let mut k = 0usize;
            let mut base = 0usize;
            while k < self.chunk_sizes.len() && base + self.chunk_sizes[k] <= r {
                base += self.chunk_sizes[k];
                k += 1;
            }
            located.push((k, r - base));
        }
        let mut frame = DataFrame::new();
        for (name, chunks) in self.names.iter().zip(self.columns.iter()) {
            let parts: Vec<Column> = located
                .iter()
                .map(|&(k, local)| chunks[k].take(&[local]))
                .collect();
            frame.push(name.clone(), concat_column(&parts))?;
        }
        Ok(frame)
    }

    /// Seeded bottom-k sample of this frame's rows; see [`sample_rows`].
    pub fn sample(&self, bound: usize, seed: u64) -> Vec<usize> {
        sample_rows(self.rows, bound, seed)
    }

    /// Stratified seeded sample: rows are grouped by the numeric view of
    /// column `stratum_col` (dictionary codes for categorical columns,
    /// missing values form their own stratum), `bound` slots are
    /// apportioned to strata by largest remainder, and each stratum is
    /// sampled with the same global-row-index priorities as [`sample_rows`]
    /// — so the result is chunk-size and worker-count invariant, and
    /// equals all rows whenever `rows <= bound`.
    pub fn stratified_sample(&self, stratum_col: usize, bound: usize, seed: u64) -> Vec<usize> {
        if self.rows <= bound {
            return (0..self.rows).collect();
        }
        if bound == 0 || stratum_col >= self.columns.len() {
            return Vec::new();
        }
        // Stratum key per row, in row order. Keys are the bit pattern of
        // the numeric view; missing is a reserved marker.
        const MISSING: u64 = u64::MAX;
        let mut keys: Vec<u64> = Vec::with_capacity(self.rows);
        for chunk in &self.columns[stratum_col] {
            for i in 0..chunk.len() {
                keys.push(chunk.as_f64(i).map(f64::to_bits).unwrap_or(MISSING));
            }
        }
        // Strata in first-appearance order (deterministic).
        let mut strata: Vec<(u64, usize)> = Vec::new();
        let mut row_stratum: Vec<usize> = Vec::with_capacity(self.rows);
        for &key in &keys {
            let idx = match strata.iter().position(|&(k, _)| k == key) {
                Some(i) => i,
                None => {
                    strata.push((key, 0));
                    strata.len() - 1
                }
            };
            strata[idx].1 += 1;
            row_stratum.push(idx);
        }
        // Largest-remainder apportionment, capped by stratum size.
        let mut quotas: Vec<usize> = Vec::with_capacity(strata.len());
        let mut fractions: Vec<(f64, usize)> = Vec::with_capacity(strata.len());
        let mut assigned = 0usize;
        for (idx, &(_, count)) in strata.iter().enumerate() {
            let share = bound as f64 * count as f64 / self.rows as f64;
            let floor = (share.floor() as usize).min(count);
            quotas.push(floor);
            assigned += floor;
            fractions.push((share - share.floor(), idx));
        }
        fractions.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let mut leftover = bound.saturating_sub(assigned);
        while leftover > 0 {
            let mut progressed = false;
            for &(_, idx) in &fractions {
                if leftover == 0 {
                    break;
                }
                if quotas[idx] < strata[idx].1 {
                    quotas[idx] += 1;
                    leftover -= 1;
                    progressed = true;
                }
            }
            if !progressed {
                break;
            }
        }
        // Per-stratum bottom-k with the shared global-row priorities.
        let mut heaps: Vec<BinaryHeap<(u64, usize)>> =
            strata.iter().map(|_| BinaryHeap::new()).collect();
        for (r, &s) in row_stratum.iter().enumerate() {
            let k = quotas[s];
            if k == 0 {
                continue;
            }
            let key = (row_priority(seed, r as u64), r);
            let heap = &mut heaps[s];
            if heap.len() < k {
                heap.push(key);
            } else if let Some(&top) = heap.peek() {
                if key < top {
                    heap.pop();
                    heap.push(key);
                }
            }
        }
        let mut out: Vec<usize> = heaps
            .into_iter()
            .flat_map(|h| h.into_iter().map(|(_, r)| r))
            .collect();
        out.sort_unstable();
        out
    }

    /// Summary statistics of column `c` with moments accumulated
    /// chunk-by-chunk and quantiles taken from `sample` (ascending global
    /// row indices, e.g. from [`ChunkedFrame::sample`]). Bit-identical to
    /// `ColumnStats::compute` on the concatenated column in every field
    /// except `quantiles`, which are exact whenever the sample covers all
    /// rows.
    pub fn column_stats_sampled(&self, c: usize, sample: &[usize]) -> ColumnStats {
        column_stats_streamed(&self.columns[c], self.rows, sample)
    }
}

/// Concatenates column chunks into one column. Numeric and text chunks
/// append; categorical chunks sharing a dictionary (the invariant the
/// chunked reader and `from_frame` maintain) append codes under the shared
/// dictionary. Mixed or dictionary-mismatched chunks fall back to
/// re-encoding through string views — lossless, never panicking.
pub fn concat_column(chunks: &[Column]) -> Column {
    let uniform_kind = chunks
        .first()
        .map(|c| c.kind())
        .filter(|&k| chunks.iter().all(|c| c.kind() == k));
    match uniform_kind {
        None => Column::Numeric(Vec::new()),
        Some(ColumnKind::Numeric) => {
            let mut values = Vec::new();
            for c in chunks {
                if let Column::Numeric(v) = c {
                    values.extend_from_slice(v);
                }
            }
            Column::Numeric(values)
        }
        Some(ColumnKind::Text) => {
            let mut values = Vec::new();
            for c in chunks {
                if let Column::Text(v) = c {
                    values.extend(v.iter().cloned());
                }
            }
            Column::Text(values)
        }
        Some(ColumnKind::Categorical) => {
            let shared: Option<&Arc<Vec<String>>> = match chunks.first() {
                Some(Column::Categorical { dictionary, .. }) => {
                    let all_share = chunks.iter().all(|c| match c {
                        Column::Categorical { dictionary: d, .. } => {
                            Arc::ptr_eq(d, dictionary) || d == dictionary
                        }
                        _ => false,
                    });
                    if all_share {
                        Some(dictionary)
                    } else {
                        None
                    }
                }
                _ => None,
            };
            match shared {
                Some(dictionary) => {
                    let mut all_codes = Vec::new();
                    for c in chunks {
                        if let Column::Categorical { codes, .. } = c {
                            all_codes.extend_from_slice(codes);
                        }
                    }
                    Column::Categorical {
                        codes: all_codes,
                        dictionary: Arc::clone(dictionary),
                    }
                }
                None => {
                    let mut values: Vec<Option<String>> = Vec::new();
                    for c in chunks {
                        for i in 0..c.len() {
                            values.push(c.as_string(i));
                        }
                    }
                    Column::categorical(values)
                }
            }
        }
    }
}

/// SplitMix64 finalizer: the priority mix behind deterministic sampling.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The sampling priority of global row `row` under `seed`. Depends only on
/// the pair, never on chunk boundaries or visit order — the foundation of
/// partition-invariant sampling.
pub fn row_priority(seed: u64, row: u64) -> u64 {
    mix64(seed ^ mix64(row.wrapping_add(0xa076_1d64_78bd_642f)))
}

/// Deterministic bottom-k row sample: the `bound` rows with the smallest
/// [`row_priority`], returned in ascending row order (ties broken by row
/// index). A streaming-friendly, mergeable stand-in for reservoir
/// sampling: any partition of the row range selects the same set. When
/// `rows <= bound` every row is selected — sampling degrades to the
/// identity, which is what the bit-identity proofs lean on.
pub fn sample_rows(rows: usize, bound: usize, seed: u64) -> Vec<usize> {
    if rows <= bound {
        return (0..rows).collect();
    }
    if bound == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<(u64, usize)> = BinaryHeap::with_capacity(bound + 1);
    for r in 0..rows {
        let key = (row_priority(seed, r as u64), r);
        if heap.len() < bound {
            heap.push(key);
        } else if let Some(&top) = heap.peek() {
            if key < top {
                heap.pop();
                heap.push(key);
            }
        }
    }
    let mut out: Vec<usize> = heap.into_iter().map(|(_, r)| r).collect();
    out.sort_unstable();
    out
}

/// Streamed [`ColumnStats`]: one accumulator folded row-by-row through the
/// chunks in chunk order. Because the fold visits rows in exactly the
/// order `ColumnStats::compute` iterates the concatenated column, every
/// floating-point operation sequence is identical — mean, std, min, max,
/// skewness and kurtosis match to the bit at any chunk size. Quantiles
/// need a sort, so they come from `sample` (ascending global row indices)
/// and are exact when the sample covers all rows.
fn column_stats_streamed(chunks: &[Column], rows: usize, sample: &[usize]) -> ColumnStats {
    let kind = chunks
        .first()
        .map(|c| c.kind())
        .unwrap_or(ColumnKind::Numeric);
    let mut missing = 0usize;
    for c in chunks {
        missing += c.missing_count();
    }
    let cardinality = streamed_cardinality(chunks);

    // Pass 1: count + sum, in row order (the same left fold as
    // `values.iter().sum()`).
    let mut n = 0usize;
    let mut sum = 0.0f64;
    let mut min = 0.0f64;
    let mut max = 0.0f64;
    for c in chunks {
        for i in 0..c.len() {
            if let Some(x) = c.as_f64(i) {
                if n == 0 {
                    min = x;
                    max = x;
                } else {
                    // Strict `<` keeps the first-seen among ties and `>=`
                    // the last-seen, matching the stable sort compute()
                    // reads its min/max from.
                    if x < min {
                        min = x;
                    }
                    if x >= max {
                        max = x;
                    }
                }
                n += 1;
                sum += x;
            }
        }
    }

    let (mean, std, skewness, kurtosis, quantiles) = if n == 0 {
        (0.0, 0.0, 0.0, 0.0, [0.0f64; 5])
    } else {
        let nf = n as f64;
        let mean = sum / nf;
        // Pass 2: central moments, each its own row-order fold — the
        // exact expression shapes of ColumnStats::compute.
        let mut var_sum = 0.0f64;
        for c in chunks {
            for i in 0..c.len() {
                if let Some(x) = c.as_f64(i) {
                    var_sum += (x - mean).powi(2);
                }
            }
        }
        let var = var_sum / nf;
        let std = var.sqrt();
        let (skew, kurt) = if std > 1e-12 {
            let mut m3_sum = 0.0f64;
            for c in chunks {
                for i in 0..c.len() {
                    if let Some(x) = c.as_f64(i) {
                        m3_sum += ((x - mean) / std).powi(3);
                    }
                }
            }
            let mut m4_sum = 0.0f64;
            for c in chunks {
                for i in 0..c.len() {
                    if let Some(x) = c.as_f64(i) {
                        m4_sum += ((x - mean) / std).powi(4);
                    }
                }
            }
            (m3_sum / nf, m4_sum / nf - 3.0)
        } else {
            (0.0, 0.0)
        };
        // Quantiles from the sampled rows, visited in ascending row order
        // so a full-coverage sample reproduces compute()'s sort input.
        let mut sampled: Vec<f64> = Vec::with_capacity(sample.len());
        let mut cursor = sample.iter().peekable();
        let mut base = 0usize;
        for c in chunks {
            let len = c.len();
            while let Some(&&r) = cursor.peek() {
                if r < base || r >= base + len {
                    break;
                }
                if let Some(x) = c.as_f64(r - base) {
                    sampled.push(x);
                }
                cursor.next();
            }
            base += len;
        }
        let quantiles = if sampled.is_empty() {
            [0.0f64; 5]
        } else {
            sampled.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let q = |p: f64| -> f64 {
                let idx = (p * (sampled.len() - 1) as f64).round() as usize;
                sampled[idx.min(sampled.len() - 1)]
            };
            [q(0.1), q(0.3), q(0.5), q(0.7), q(0.9)]
        };
        (mean, std, skew, kurt, quantiles)
    };

    // String-view token/char sums are exact integer folds (order-free).
    let mut token_sum = 0usize;
    let mut char_sum = 0usize;
    let mut string_count = 0usize;
    for c in chunks {
        for i in 0..c.len() {
            if let Some(s) = c.as_string(i) {
                token_sum += s.split_whitespace().count();
                char_sum += s.chars().count();
                string_count += 1;
            }
        }
    }
    let mean_tokens = if string_count > 0 && kind == ColumnKind::Text {
        token_sum as f64 / string_count as f64
    } else {
        0.0
    };
    let mean_chars = if string_count > 0 {
        char_sum as f64 / string_count as f64
    } else {
        0.0
    };

    ColumnStats {
        kind,
        len: rows,
        missing,
        cardinality,
        mean,
        std,
        min,
        max,
        skewness,
        kurtosis,
        quantiles,
        mean_tokens,
        mean_chars,
    }
}

/// Exact distinct-count across chunks, matching `Column::cardinality` on
/// the concatenation. The hash sets are used for membership only — the
/// count is order-free.
fn streamed_cardinality(chunks: &[Column]) -> usize {
    let kind = chunks.first().map(|c| c.kind());
    match kind {
        None => 0,
        Some(ColumnKind::Numeric) => {
            let mut seen: HashSet<u64> = HashSet::new();
            for c in chunks {
                if let Column::Numeric(v) = c {
                    for x in v.iter().flatten() {
                        seen.insert(x.to_bits());
                    }
                }
            }
            seen.len()
        }
        Some(ColumnKind::Categorical) => {
            let mut seen: HashSet<u32> = HashSet::new();
            for c in chunks {
                if let Column::Categorical { codes, .. } = c {
                    for code in codes.iter().flatten() {
                        seen.insert(*code);
                    }
                }
            }
            seen.len()
        }
        Some(ColumnKind::Text) => {
            let mut seen: HashSet<&str> = HashSet::new();
            for c in chunks {
                if let Column::Text(v) = c {
                    for s in v.iter().flatten() {
                        seen.insert(s.as_str());
                    }
                }
            }
            seen.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_frame;

    fn sample_frame() -> DataFrame {
        read_frame(
            "x,city,note\n1.5,paris,alpha beta gamma delta epsilon\n2.5,lyon,short\n\
             3.5,paris,one two three four five six\n4.5,nice,words words words words words\n\
             5.5,lyon,tail text here with many tokens\n",
        )
        .unwrap()
    }

    #[test]
    fn from_frame_roundtrips_bit_identically() {
        let f = sample_frame();
        for chunk_rows in [1, 2, 3, 100] {
            let cf = ChunkedFrame::from_frame(&f, chunk_rows);
            assert_eq!(cf.num_rows(), f.num_rows());
            let back = cf.to_frame().unwrap();
            assert_eq!(back.fingerprint(), f.fingerprint());
        }
    }

    #[test]
    fn sample_is_identity_under_bound_and_stable_over_it() {
        assert_eq!(sample_rows(5, 10, 42), vec![0, 1, 2, 3, 4]);
        let s1 = sample_rows(100, 10, 42);
        let s2 = sample_rows(100, 10, 42);
        assert_eq!(s1, s2);
        assert_eq!(s1.len(), 10);
        assert!(s1.windows(2).all(|w| w[0] < w[1]), "ascending row order");
        assert!(s1.iter().all(|&r| r < 100));
        let s3 = sample_rows(100, 10, 43);
        assert_ne!(s1, s3, "seed changes the sample");
    }

    #[test]
    fn stratified_sample_respects_quotas() {
        let f = sample_frame();
        let cf = ChunkedFrame::from_frame(&f, 2);
        // Under the bound: identity.
        assert_eq!(cf.stratified_sample(1, 10, 0), vec![0, 1, 2, 3, 4]);
        // Tight bound still returns a valid, deterministic subset.
        let s = cf.stratified_sample(1, 3, 0);
        assert_eq!(s.len(), 3);
        assert_eq!(s, cf.stratified_sample(1, 3, 0));
        // Chunk size does not change the stratified sample.
        let cf1 = ChunkedFrame::from_frame(&f, 1);
        assert_eq!(s, cf1.stratified_sample(1, 3, 0));
    }

    #[test]
    fn streamed_stats_match_compute_at_any_chunk_size() {
        let f = sample_frame();
        for chunk_rows in [1, 2, 3, 100] {
            let cf = ChunkedFrame::from_frame(&f, chunk_rows);
            let all: Vec<usize> = (0..f.num_rows()).collect();
            for c in 0..f.num_columns() {
                let exact = ColumnStats::compute(&f.columns()[c]);
                let streamed = cf.column_stats_sampled(c, &all);
                assert_eq!(streamed, exact, "column {c} at chunk_rows {chunk_rows}");
            }
        }
    }

    #[test]
    fn take_rows_shares_dictionaries() {
        let f = sample_frame();
        let cf = ChunkedFrame::from_frame(&f, 2);
        let sub = cf.take_rows(&[4, 0, 2]).unwrap();
        assert_eq!(sub.num_rows(), 3);
        assert_eq!(
            sub.column("city").unwrap().as_string(0).as_deref(),
            Some("lyon")
        );
        assert_eq!(sub.column("x").unwrap().as_f64(1), Some(1.5));
        assert!(cf.take_rows(&[99]).is_err());
    }

    #[test]
    fn concat_handles_mismatched_dictionaries_gracefully() {
        let a = Column::categorical(vec![Some("x"), Some("y")]);
        let b = Column::categorical(vec![Some("y"), Some("z")]);
        let joined = concat_column(&[a, b]);
        assert_eq!(joined.len(), 4);
        assert_eq!(joined.as_string(0).as_deref(), Some("x"));
        assert_eq!(joined.as_string(3).as_deref(), Some("z"));
        assert_eq!(joined.cardinality(), 3);
    }
}
