//! Typed columns with missing-value support.
//!
//! KGpip distinguishes numerical, categorical and textual features (paper
//! Table 4 reports `#Num`, `#Cat`, `#Text` per dataset), so the column model
//! mirrors exactly those three kinds. Categorical columns store codes into a
//! dictionary so that cardinality and value lookups are O(1) and cloning a
//! column does not duplicate string payloads per row.

use std::collections::HashMap;
use std::sync::Arc;

/// The kind of data a [`Column`] holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnKind {
    /// Continuous or integer-valued numeric data.
    Numeric,
    /// Low-cardinality discrete data backed by a dictionary.
    Categorical,
    /// Free-form text (high cardinality, whitespace-separated tokens).
    Text,
}

impl std::fmt::Display for ColumnKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColumnKind::Numeric => write!(f, "numeric"),
            ColumnKind::Categorical => write!(f, "categorical"),
            ColumnKind::Text => write!(f, "text"),
        }
    }
}

/// A single typed column. `None` entries represent missing values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Numeric data; `None` is a missing value, NaN is normalized to `None`
    /// by [`Column::numeric`].
    Numeric(Vec<Option<f64>>),
    /// Dictionary-encoded categorical data. `codes[i]` indexes into
    /// `dictionary`; `None` is a missing value.
    Categorical {
        /// Per-row dictionary codes.
        codes: Vec<Option<u32>>,
        /// Distinct category labels; index = code. Shared so clones are cheap.
        dictionary: Arc<Vec<String>>,
    },
    /// Free-form text; `None` is a missing value.
    Text(Vec<Option<String>>),
}

impl Column {
    /// Builds a numeric column, normalizing NaN values to missing.
    pub fn numeric<I: IntoIterator<Item = Option<f64>>>(values: I) -> Self {
        Column::Numeric(
            values
                .into_iter()
                .map(|v| v.filter(|x| x.is_finite()))
                .collect(),
        )
    }

    /// Builds a numeric column from plain values (no missing entries).
    pub fn from_f64<I: IntoIterator<Item = f64>>(values: I) -> Self {
        Column::numeric(values.into_iter().map(Some))
    }

    /// Builds a categorical column from string labels, deriving the
    /// dictionary from the order of first appearance.
    pub fn categorical<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: AsRef<str>,
    {
        let mut dictionary: Vec<String> = Vec::new();
        let mut lookup: HashMap<String, u32> = HashMap::new();
        let codes = values
            .into_iter()
            .map(|v| {
                v.map(|s| {
                    let s = s.as_ref();
                    *lookup.entry(s.to_string()).or_insert_with(|| {
                        dictionary.push(s.to_string());
                        (dictionary.len() - 1) as u32
                    })
                })
            })
            .collect();
        Column::Categorical {
            codes,
            dictionary: Arc::new(dictionary),
        }
    }

    /// Builds a text column.
    pub fn text<I, S>(values: I) -> Self
    where
        I: IntoIterator<Item = Option<S>>,
        S: Into<String>,
    {
        Column::Text(values.into_iter().map(|v| v.map(Into::into)).collect())
    }

    /// Number of rows (including missing entries).
    pub fn len(&self) -> usize {
        match self {
            Column::Numeric(v) => v.len(),
            Column::Categorical { codes, .. } => codes.len(),
            Column::Text(v) => v.len(),
        }
    }

    /// True when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The kind of this column.
    pub fn kind(&self) -> ColumnKind {
        match self {
            Column::Numeric(_) => ColumnKind::Numeric,
            Column::Categorical { .. } => ColumnKind::Categorical,
            Column::Text(_) => ColumnKind::Text,
        }
    }

    /// Number of missing entries.
    pub fn missing_count(&self) -> usize {
        match self {
            Column::Numeric(v) => v.iter().filter(|x| x.is_none()).count(),
            Column::Categorical { codes, .. } => codes.iter().filter(|x| x.is_none()).count(),
            Column::Text(v) => v.iter().filter(|x| x.is_none()).count(),
        }
    }

    /// Numeric view of row `i`: the value itself for numeric columns, the
    /// dictionary code for categorical columns, `None` for text columns and
    /// missing entries. This is the raw view learners' encoders start from.
    pub fn as_f64(&self, i: usize) -> Option<f64> {
        match self {
            Column::Numeric(v) => v.get(i).copied().flatten(),
            Column::Categorical { codes, .. } => codes.get(i).copied().flatten().map(|c| c as f64),
            Column::Text(_) => None,
        }
    }

    /// String view of row `i`; numeric values render with `{}`.
    pub fn as_string(&self, i: usize) -> Option<String> {
        match self {
            Column::Numeric(v) => v.get(i).copied().flatten().map(|x| format!("{x}")),
            Column::Categorical { codes, dictionary } => codes
                .get(i)
                .copied()
                .flatten()
                .map(|c| dictionary[c as usize].clone()),
            Column::Text(v) => v.get(i).cloned().flatten(),
        }
    }

    /// Distinct non-missing value count. For numeric columns this scans the
    /// data; for categorical it is the dictionary size restricted to codes in
    /// use; for text it counts distinct strings.
    pub fn cardinality(&self) -> usize {
        match self {
            Column::Numeric(v) => {
                let mut seen: Vec<u64> = v.iter().filter_map(|x| x.map(f64::to_bits)).collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
            Column::Categorical { codes, .. } => {
                let mut seen: Vec<u32> = codes.iter().filter_map(|c| *c).collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
            Column::Text(v) => {
                let mut seen: Vec<&str> = v.iter().filter_map(|s| s.as_deref()).collect();
                seen.sort_unstable();
                seen.dedup();
                seen.len()
            }
        }
    }

    /// The dictionary of a categorical column, if any.
    pub fn dictionary(&self) -> Option<&[String]> {
        match self {
            Column::Categorical { dictionary, .. } => Some(dictionary.as_slice()),
            _ => None,
        }
    }

    /// Selects the given rows into a new column (rows may repeat).
    pub fn take(&self, rows: &[usize]) -> Column {
        match self {
            Column::Numeric(v) => Column::Numeric(rows.iter().map(|&i| v[i]).collect()),
            Column::Categorical { codes, dictionary } => Column::Categorical {
                codes: rows.iter().map(|&i| codes[i]).collect(),
                dictionary: Arc::clone(dictionary),
            },
            Column::Text(v) => Column::Text(rows.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Iterator over non-missing numeric views (numeric values or
    /// categorical codes).
    pub fn numeric_values(&self) -> Vec<f64> {
        (0..self.len()).filter_map(|i| self.as_f64(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_normalizes_nan_to_missing() {
        let c = Column::numeric(vec![Some(1.0), Some(f64::NAN), None, Some(f64::INFINITY)]);
        assert_eq!(c.missing_count(), 3);
        assert_eq!(c.as_f64(0), Some(1.0));
        assert_eq!(c.as_f64(1), None);
    }

    #[test]
    fn categorical_dictionary_orders_by_first_appearance() {
        let c = Column::categorical(vec![Some("b"), Some("a"), Some("b"), None]);
        assert_eq!(c.dictionary().unwrap(), &["b".to_string(), "a".to_string()]);
        assert_eq!(c.as_f64(0), Some(0.0));
        assert_eq!(c.as_f64(1), Some(1.0));
        assert_eq!(c.as_f64(3), None);
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.missing_count(), 1);
    }

    #[test]
    fn text_column_has_no_numeric_view() {
        let c = Column::text(vec![Some("hello world"), None]);
        assert_eq!(c.kind(), ColumnKind::Text);
        assert_eq!(c.as_f64(0), None);
        assert_eq!(c.as_string(0).as_deref(), Some("hello world"));
        assert_eq!(c.cardinality(), 1);
    }

    #[test]
    fn take_preserves_dictionary_and_repeats_rows() {
        let c = Column::categorical(vec![Some("x"), Some("y"), Some("z")]);
        let t = c.take(&[2, 2, 0]);
        assert_eq!(t.len(), 3);
        assert_eq!(t.as_string(0).as_deref(), Some("z"));
        assert_eq!(t.as_string(1).as_deref(), Some("z"));
        assert_eq!(t.as_string(2).as_deref(), Some("x"));
        // Dictionary is shared, not rebuilt.
        assert_eq!(t.dictionary().unwrap().len(), 3);
    }

    #[test]
    fn cardinality_on_numeric_dedups_bit_patterns() {
        let c = Column::from_f64(vec![1.0, 1.0, 2.0, -0.0, 0.0]);
        // -0.0 and 0.0 have different bit patterns; both present.
        assert_eq!(c.cardinality(), 4);
    }

    #[test]
    fn string_view_of_numeric() {
        let c = Column::from_f64(vec![2.5]);
        assert_eq!(c.as_string(0).as_deref(), Some("2.5"));
    }
}
