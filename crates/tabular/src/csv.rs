//! A small RFC-4180-style CSV reader/writer.
//!
//! KGpip's mined pipelines almost universally begin with `pandas.read_csv`
//! (paper §3.4–3.5: the dataset node "is assumed to flow into a read_csv
//! call"), so the substrate provides an equivalent entry point:
//! [`read_csv_str`] parses a CSV document into raw string cells and
//! [`read_frame`] combines it with type inference to produce a typed
//! [`DataFrame`].

use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::infer::infer_column;
use crate::Result;

/// A parsed CSV document: a header row plus raw string cells.
/// Empty cells are `None` (missing).
#[derive(Debug, Clone, PartialEq)]
pub struct RawCsv {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Row-major cells; `cells[r][c]` pairs with `header[c]`.
    pub cells: Vec<Vec<Option<String>>>,
}

/// Parses a CSV document with a header row. Supports quoted fields with
/// embedded commas, newlines, and doubled quotes; both `\n` and `\r\n` line
/// endings are accepted.
pub fn read_csv_str(input: &str) -> Result<RawCsv> {
    let mut rows: Vec<Vec<Option<String>>> = Vec::new();
    let mut field = String::new();
    let mut record: Vec<Option<String>> = Vec::new();
    let mut in_quotes = false;
    let mut field_was_quoted = false;
    let mut line = 1usize;
    let mut chars = input.chars().peekable();

    fn finish_field(field: &mut String, quoted: &mut bool, record: &mut Vec<Option<String>>) {
        let value = std::mem::take(field);
        if value.is_empty() && !*quoted {
            record.push(None);
        } else {
            record.push(Some(value));
        }
        *quoted = false;
    }

    while let Some(ch) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field.push(ch);
                    line += 1;
                }
                _ => field.push(ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if !field.is_empty() {
                    return Err(TabularError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                field_was_quoted = true;
            }
            ',' => finish_field(&mut field, &mut field_was_quoted, &mut record),
            '\r' => {
                // Consumed as part of \r\n; a bare \r is treated as a newline.
                if chars.peek() == Some(&'\n') {
                    continue;
                }
                finish_field(&mut field, &mut field_was_quoted, &mut record);
                rows.push(std::mem::take(&mut record));
                line += 1;
            }
            '\n' => {
                finish_field(&mut field, &mut field_was_quoted, &mut record);
                rows.push(std::mem::take(&mut record));
                line += 1;
            }
            _ => field.push(ch),
        }
    }
    if in_quotes {
        return Err(TabularError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if !field.is_empty() || field_was_quoted || !record.is_empty() {
        finish_field(&mut field, &mut field_was_quoted, &mut record);
        rows.push(record);
    }

    let mut iter = rows.into_iter();
    let header_row = iter.next().ok_or(TabularError::Empty("csv document"))?;
    let header: Vec<String> = header_row
        .into_iter()
        .enumerate()
        .map(|(i, h)| h.unwrap_or_else(|| format!("col{i}")))
        .collect();
    let mut cells = Vec::new();
    for (i, row) in iter.enumerate() {
        if row.len() != header.len() {
            return Err(TabularError::Csv {
                line: i + 2,
                message: format!("expected {} fields, found {}", header.len(), row.len()),
            });
        }
        cells.push(row);
    }
    Ok(RawCsv { header, cells })
}

/// Parses a CSV document and infers a typed [`DataFrame`] from it.
pub fn read_frame(input: &str) -> Result<DataFrame> {
    let raw = read_csv_str(input)?;
    let ncols = raw.header.len();
    let mut frame = DataFrame::new();
    for c in 0..ncols {
        let values: Vec<Option<&str>> = raw.cells.iter().map(|row| row[c].as_deref()).collect();
        let column = infer_column(&values);
        // Duplicate headers get positional suffixes rather than failing;
        // keep extending until unique (a file may already contain `a.1`).
        let mut name = raw.header[c].clone();
        while frame.names().contains(&name) {
            name = format!("{name}.{c}");
        }
        frame.push(name, column)?;
    }
    Ok(frame)
}

/// Serializes a frame to CSV with a header row. Missing cells render empty;
/// fields containing commas, quotes or newlines are quoted.
pub fn write_csv(frame: &DataFrame) -> String {
    fn escape(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &frame
            .names()
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in 0..frame.num_rows() {
        let row: Vec<String> = frame
            .columns()
            .iter()
            .map(|c| c.as_string(r).map(|s| escape(&s)).unwrap_or_default())
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;

    #[test]
    fn parses_simple_document() {
        let raw = read_csv_str("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(raw.header, vec!["a", "b"]);
        assert_eq!(raw.cells.len(), 2);
        assert_eq!(raw.cells[1][0].as_deref(), Some("3"));
    }

    #[test]
    fn handles_quotes_commas_and_embedded_newlines() {
        let raw = read_csv_str("t\n\"a, b\"\n\"line1\nline2\"\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(raw.cells[0][0].as_deref(), Some("a, b"));
        assert_eq!(raw.cells[1][0].as_deref(), Some("line1\nline2"));
        assert_eq!(raw.cells[2][0].as_deref(), Some("he said \"hi\""));
    }

    #[test]
    fn empty_unquoted_cell_is_missing_but_quoted_empty_is_not() {
        let raw = read_csv_str("a,b\n,\"\"\n").unwrap();
        assert_eq!(raw.cells[0][0], None);
        assert_eq!(raw.cells[0][1].as_deref(), Some(""));
    }

    #[test]
    fn crlf_line_endings() {
        let raw = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(raw.cells.len(), 1);
        assert_eq!(raw.cells[0][1].as_deref(), Some("2"));
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        let raw = read_csv_str("a\n1").unwrap();
        assert_eq!(raw.cells.len(), 1);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            read_csv_str("a\n\"oops\n"),
            Err(TabularError::Csv { .. })
        ));
    }

    #[test]
    fn read_frame_infers_types() {
        let f = read_frame("x,city,essay\n1.5,paris,hello there friend\n2.5,lyon,more words here\n3.5,paris,lots of unique text\n").unwrap();
        assert_eq!(f.column("x").unwrap().kind(), ColumnKind::Numeric);
        assert_eq!(f.column("city").unwrap().kind(), ColumnKind::Categorical);
    }

    #[test]
    fn roundtrip_preserves_cells() {
        let input = "a,b\n1,hello\n2,\"x,y\"\n";
        let f = read_frame(input).unwrap();
        let out = write_csv(&f);
        let f2 = read_frame(&out).unwrap();
        assert_eq!(f2.num_rows(), f.num_rows());
        assert_eq!(
            f2.column("b").unwrap().as_string(1),
            f.column("b").unwrap().as_string(1)
        );
    }

    #[test]
    fn duplicate_headers_get_suffixes() {
        let f = read_frame("a,a\n1,2\n").unwrap();
        assert_eq!(f.names(), &["a".to_string(), "a.1".to_string()]);
    }

    #[test]
    fn duplicate_headers_survive_existing_suffix_collisions() {
        // `a.1` already exists; the dedup of the second `a` must not
        // collide with it.
        let f = read_frame("a,a.1,a\n1,2,3\n").unwrap();
        assert_eq!(f.num_columns(), 3);
        let mut names = f.names().to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3);
    }
}
