//! A small RFC-4180-style CSV reader/writer.
//!
//! KGpip's mined pipelines almost universally begin with `pandas.read_csv`
//! (paper §3.4–3.5: the dataset node "is assumed to flow into a read_csv
//! call"), so the substrate provides an equivalent entry point:
//! [`read_csv_str`] parses a CSV document into raw string cells and
//! [`read_frame`] combines it with type inference to produce a typed
//! [`DataFrame`].

use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::infer::infer_column;
use crate::Result;
use std::borrow::Cow;

/// A parsed CSV document: a header row plus raw string cells.
/// Empty cells are `None` (missing).
#[derive(Debug, Clone, PartialEq)]
pub struct RawCsv {
    /// Column names from the header row.
    pub header: Vec<String>,
    /// Row-major cells; `cells[r][c]` pairs with `header[c]`.
    pub cells: Vec<Vec<Option<String>>>,
}

/// One record located by [`scan_records`]: the byte range of its content
/// (record terminator excluded) and the 1-based source line its first byte
/// is on. Quoted fields may make the range span several source lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct RecordSpan {
    /// First content byte.
    pub start: usize,
    /// One past the last content byte.
    pub end: usize,
    /// 1-based source line of `start`.
    pub line: usize,
}

/// Locates record boundaries without materializing any field: a quote-aware
/// scan that ends records at unquoted `\n`, `\r\n`, or bare `\r`. All
/// structural errors the field parser could hit (a quote opening inside a
/// non-empty unquoted field, an unterminated quoted field) are detected
/// here, at the same source line the legacy single-pass machine reported,
/// so [`parse_span`] on a returned span cannot fail. This is the piece the
/// chunked reader parallelizes over: spans are cheap to compute
/// sequentially and parse independently.
pub(crate) fn scan_records(input: &str) -> Result<Vec<RecordSpan>> {
    let mut spans = Vec::new();
    let mut in_quotes = false;
    // Any content char accumulated in the current field (quoted or not).
    let mut field_has_content = false;
    let mut field_was_quoted = false;
    // A `,` has finished at least one field in the current record.
    let mut record_has_fields = false;
    let mut record_start = 0usize;
    let mut record_line = 1usize;
    let mut line = 1usize;
    let mut chars = input.char_indices().peekable();
    while let Some((i, ch)) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek().map(|&(_, c)| c) == Some('"') {
                        chars.next();
                        field_has_content = true;
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    field_has_content = true;
                    line += 1;
                }
                _ => field_has_content = true,
            }
            continue;
        }
        match ch {
            '"' => {
                if field_has_content {
                    return Err(TabularError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                field_was_quoted = true;
            }
            ',' => {
                record_has_fields = true;
                field_has_content = false;
                field_was_quoted = false;
            }
            '\r' => {
                // Consumed as part of \r\n (the following \n ends the
                // record and excludes this byte); a bare \r is a newline.
                if chars.peek().map(|&(_, c)| c) == Some('\n') {
                    continue;
                }
                spans.push(RecordSpan {
                    start: record_start,
                    end: i,
                    line: record_line,
                });
                record_start = i + 1;
                line += 1;
                record_line = line;
                field_has_content = false;
                field_was_quoted = false;
                record_has_fields = false;
            }
            '\n' => {
                // A directly preceding \r was skipped above and is not
                // part of the record content.
                let end = if i > record_start && input.as_bytes()[i - 1] == b'\r' {
                    i - 1
                } else {
                    i
                };
                spans.push(RecordSpan {
                    start: record_start,
                    end,
                    line: record_line,
                });
                record_start = i + 1;
                line += 1;
                record_line = line;
                field_has_content = false;
                field_was_quoted = false;
                record_has_fields = false;
            }
            _ => field_has_content = true,
        }
    }
    if in_quotes {
        return Err(TabularError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    if field_has_content || field_was_quoted || record_has_fields {
        spans.push(RecordSpan {
            start: record_start,
            end: input.len(),
            line: record_line,
        });
    }
    Ok(spans)
}

/// Parses one record span into fields. Unquoted fields (and quoted fields
/// without escaped quotes) borrow directly from `input`; only fields whose
/// content is non-contiguous in the source (doubled quotes, text resuming
/// after a closing quote) allocate. Empty-unquoted is `None` (missing),
/// quoted-empty is `Some("")` — same semantics as the legacy machine.
pub(crate) fn parse_span(input: &str, span: RecordSpan) -> Result<Vec<Option<Cow<'_, str>>>> {
    let content = &input[span.start..span.end];
    let mut record: Vec<Option<Cow<'_, str>>> = Vec::new();
    let mut line = span.line;
    // Field representation: a contiguous byte range of `content` until the
    // content goes non-contiguous, then an owned spill buffer.
    let mut seg: Option<(usize, usize)> = None;
    let mut owned: Option<String> = None;
    let mut field_was_quoted = false;
    let mut in_quotes = false;
    let mut chars = content.char_indices().peekable();

    fn push_char(
        content: &str,
        seg: &mut Option<(usize, usize)>,
        owned: &mut Option<String>,
        i: usize,
        ch: char,
    ) {
        if let Some(buf) = owned {
            buf.push(ch);
            return;
        }
        match seg {
            None => *seg = Some((i, i + ch.len_utf8())),
            Some((start, end)) => {
                if *end == i {
                    *end = i + ch.len_utf8();
                } else {
                    let mut buf = content[*start..*end].to_string();
                    buf.push(ch);
                    *owned = Some(buf);
                }
            }
        }
    }

    fn finish_field<'a>(
        content: &'a str,
        seg: &mut Option<(usize, usize)>,
        owned: &mut Option<String>,
        quoted: &mut bool,
        record: &mut Vec<Option<Cow<'a, str>>>,
    ) {
        let value = match (owned.take(), seg.take()) {
            (Some(buf), _) => Some(Cow::Owned(buf)),
            (None, Some((start, end))) => Some(Cow::Borrowed(&content[start..end])),
            (None, None) => {
                if *quoted {
                    Some(Cow::Borrowed(""))
                } else {
                    None
                }
            }
        };
        record.push(value);
        *quoted = false;
    }

    while let Some((i, ch)) = chars.next() {
        if in_quotes {
            match ch {
                '"' => {
                    if chars.peek().map(|&(_, c)| c) == Some('"') {
                        // Escaped quote: the first quote of the pair is at
                        // `i`, so a contiguous segment can still absorb it;
                        // the skipped second quote forces a spill only when
                        // more content follows.
                        push_char(content, &mut seg, &mut owned, i, '"');
                        chars.next();
                    } else {
                        in_quotes = false;
                    }
                }
                '\n' => {
                    push_char(content, &mut seg, &mut owned, i, ch);
                    line += 1;
                }
                _ => push_char(content, &mut seg, &mut owned, i, ch),
            }
            continue;
        }
        match ch {
            '"' => {
                if seg.is_some() || owned.is_some() {
                    return Err(TabularError::Csv {
                        line,
                        message: "quote inside unquoted field".into(),
                    });
                }
                in_quotes = true;
                field_was_quoted = true;
            }
            ',' => finish_field(
                content,
                &mut seg,
                &mut owned,
                &mut field_was_quoted,
                &mut record,
            ),
            _ => push_char(content, &mut seg, &mut owned, i, ch),
        }
    }
    if in_quotes {
        // Unreachable for spans produced by scan_records (records only end
        // outside quotes), kept as a typed error for defense in depth.
        return Err(TabularError::Csv {
            line,
            message: "unterminated quoted field".into(),
        });
    }
    finish_field(
        content,
        &mut seg,
        &mut owned,
        &mut field_was_quoted,
        &mut record,
    );
    Ok(record)
}

/// Derives header names from the parsed header record: missing cells get
/// positional `col{i}` names.
pub(crate) fn header_names(header_row: Vec<Option<Cow<'_, str>>>) -> Vec<String> {
    header_row
        .into_iter()
        .enumerate()
        .map(|(i, h)| h.map(Cow::into_owned).unwrap_or_else(|| format!("col{i}")))
        .collect()
}

/// The ragged-row error the legacy reader raised: record index `i` (0-based
/// among data rows) reports as line `i + 2`.
pub(crate) fn ragged_row_error(index: usize, expected: usize, found: usize) -> TabularError {
    TabularError::Csv {
        line: index + 2,
        message: format!("expected {expected} fields, found {found}"),
    }
}

/// A fully parsed document with borrowed cells: the zero-copy core shared
/// by [`read_csv_str`], [`read_frame`] and the chunked reader.
struct ParsedCsv<'a> {
    header: Vec<String>,
    rows: Vec<Vec<Option<Cow<'a, str>>>>,
}

fn parse_csv(input: &str) -> Result<ParsedCsv<'_>> {
    let spans = scan_records(input)?;
    let mut iter = spans.into_iter();
    let header_span = iter.next().ok_or(TabularError::Empty("csv document"))?;
    let header = header_names(parse_span(input, header_span)?);
    let mut rows = Vec::new();
    for (i, span) in iter.enumerate() {
        let row = parse_span(input, span)?;
        if row.len() != header.len() {
            return Err(ragged_row_error(i, header.len(), row.len()));
        }
        rows.push(row);
    }
    Ok(ParsedCsv { header, rows })
}

/// Parses a CSV document with a header row. Supports quoted fields with
/// embedded commas, newlines, and doubled quotes; both `\n` and `\r\n` line
/// endings are accepted.
pub fn read_csv_str(input: &str) -> Result<RawCsv> {
    let parsed = parse_csv(input)?;
    let cells = parsed
        .rows
        .into_iter()
        .map(|row| row.into_iter().map(|c| c.map(Cow::into_owned)).collect())
        .collect();
    Ok(RawCsv {
        header: parsed.header,
        cells,
    })
}

/// Parses a CSV document and infers a typed [`DataFrame`] from it. Cells
/// stay borrowed from `input` until typed decode — no per-cell `String` is
/// allocated for unquoted fields.
pub fn read_frame(input: &str) -> Result<DataFrame> {
    let parsed = parse_csv(input)?;
    let ncols = parsed.header.len();
    let mut frame = DataFrame::new();
    for c in 0..ncols {
        let values: Vec<Option<&str>> = parsed.rows.iter().map(|row| row[c].as_deref()).collect();
        let column = infer_column(&values);
        // Duplicate headers get positional suffixes rather than failing;
        // keep extending until unique (a file may already contain `a.1`).
        let mut name = parsed.header[c].clone();
        while frame.names().contains(&name) {
            name = format!("{name}.{c}");
        }
        frame.push(name, column)?;
    }
    Ok(frame)
}

/// Serializes a frame to CSV with a header row. Missing cells render empty;
/// fields containing commas, quotes or newlines are quoted.
pub fn write_csv(frame: &DataFrame) -> String {
    fn escape(s: &str) -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    }
    let mut out = String::new();
    out.push_str(
        &frame
            .names()
            .iter()
            .map(|n| escape(n))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for r in 0..frame.num_rows() {
        let row: Vec<String> = frame
            .columns()
            .iter()
            .map(|c| c.as_string(r).map(|s| escape(&s)).unwrap_or_default())
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;

    #[test]
    fn parses_simple_document() {
        let raw = read_csv_str("a,b\n1,2\n3,4\n").unwrap();
        assert_eq!(raw.header, vec!["a", "b"]);
        assert_eq!(raw.cells.len(), 2);
        assert_eq!(raw.cells[1][0].as_deref(), Some("3"));
    }

    #[test]
    fn handles_quotes_commas_and_embedded_newlines() {
        let raw = read_csv_str("t\n\"a, b\"\n\"line1\nline2\"\n\"he said \"\"hi\"\"\"\n").unwrap();
        assert_eq!(raw.cells[0][0].as_deref(), Some("a, b"));
        assert_eq!(raw.cells[1][0].as_deref(), Some("line1\nline2"));
        assert_eq!(raw.cells[2][0].as_deref(), Some("he said \"hi\""));
    }

    #[test]
    fn empty_unquoted_cell_is_missing_but_quoted_empty_is_not() {
        let raw = read_csv_str("a,b\n,\"\"\n").unwrap();
        assert_eq!(raw.cells[0][0], None);
        assert_eq!(raw.cells[0][1].as_deref(), Some(""));
    }

    #[test]
    fn crlf_line_endings() {
        let raw = read_csv_str("a,b\r\n1,2\r\n").unwrap();
        assert_eq!(raw.cells.len(), 1);
        assert_eq!(raw.cells[0][1].as_deref(), Some("2"));
    }

    #[test]
    fn missing_trailing_newline_is_fine() {
        let raw = read_csv_str("a\n1").unwrap();
        assert_eq!(raw.cells.len(), 1);
    }

    #[test]
    fn ragged_rows_error_with_line_number() {
        let err = read_csv_str("a,b\n1\n").unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_errors() {
        assert!(matches!(
            read_csv_str("a\n\"oops\n"),
            Err(TabularError::Csv { .. })
        ));
    }

    #[test]
    fn read_frame_infers_types() {
        let f = read_frame("x,city,essay\n1.5,paris,hello there friend\n2.5,lyon,more words here\n3.5,paris,lots of unique text\n").unwrap();
        assert_eq!(f.column("x").unwrap().kind(), ColumnKind::Numeric);
        assert_eq!(f.column("city").unwrap().kind(), ColumnKind::Categorical);
    }

    #[test]
    fn roundtrip_preserves_cells() {
        let input = "a,b\n1,hello\n2,\"x,y\"\n";
        let f = read_frame(input).unwrap();
        let out = write_csv(&f);
        let f2 = read_frame(&out).unwrap();
        assert_eq!(f2.num_rows(), f.num_rows());
        assert_eq!(
            f2.column("b").unwrap().as_string(1),
            f.column("b").unwrap().as_string(1)
        );
    }

    #[test]
    fn duplicate_headers_get_suffixes() {
        let f = read_frame("a,a\n1,2\n").unwrap();
        assert_eq!(f.names(), &["a".to_string(), "a.1".to_string()]);
    }

    #[test]
    fn borrowed_cells_for_unquoted_fields() {
        let input = "a,b\nplain,\"quo,ted\"\n\"he said \"\"hi\"\"\",tail\n";
        let spans = scan_records(input).unwrap();
        assert_eq!(spans.len(), 3);
        let row1 = parse_span(input, spans[1]).unwrap();
        assert!(matches!(row1[0], Some(Cow::Borrowed("plain"))));
        assert!(matches!(row1[1], Some(Cow::Borrowed("quo,ted"))));
        let row2 = parse_span(input, spans[2]).unwrap();
        // Doubled quotes force an owned spill; the value is unchanged.
        assert_eq!(row2[0].as_deref(), Some("he said \"hi\""));
        assert!(matches!(row2[0], Some(Cow::Owned(_))));
        assert!(matches!(row2[1], Some(Cow::Borrowed("tail"))));
    }

    #[test]
    fn scanner_matches_machine_on_bare_cr_and_blank_lines() {
        // Bare \r ends a record; "\r\n" is one terminator; a lone "\n"
        // yields a single missing field (the legacy machine's behavior).
        let raw = read_csv_str("a\rx\r\ny\n").unwrap();
        assert_eq!(raw.header, vec!["a"]);
        assert_eq!(raw.cells.len(), 2);
        assert_eq!(raw.cells[0][0].as_deref(), Some("x"));
        let raw2 = read_csv_str("\n\n").unwrap();
        assert_eq!(raw2.header, vec!["col0"]);
        assert_eq!(raw2.cells.len(), 1);
        assert_eq!(raw2.cells[0][0], None);
    }

    #[test]
    fn text_after_closing_quote_joins_field() {
        let raw = read_csv_str("a\n\"x\"y\n").unwrap();
        assert_eq!(raw.cells[0][0].as_deref(), Some("xy"));
        // ...but a quote opening after content is still an error.
        let err = read_csv_str("a\nx\"y\"\n").unwrap_err();
        assert!(matches!(err, TabularError::Csv { line: 2, .. }));
    }

    #[test]
    fn duplicate_headers_survive_existing_suffix_collisions() {
        // `a.1` already exists; the dedup of the second `a` must not
        // collide with it.
        let f = read_frame("a,a.1,a\n1,2,3\n").unwrap();
        assert_eq!(f.num_columns(), 3);
        let mut names = f.names().to_vec();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 3);
    }
}
