//! Supervised datasets: a feature frame plus a target column and task type.

use crate::column::Column;
use crate::error::TabularError;
use crate::frame::DataFrame;
use crate::infer::infer_task;
use crate::Result;

/// The supervised learning task of a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Binary classification (2 classes).
    Binary,
    /// Multi-class classification with the given number of classes (≥ 3).
    MultiClass(usize),
    /// Regression on a continuous target.
    Regression,
}

impl Task {
    /// Builds the right classification variant for `classes` classes.
    pub fn classification(classes: usize) -> Task {
        if classes <= 2 {
            Task::Binary
        } else {
            Task::MultiClass(classes)
        }
    }

    /// Number of classes; 0 for regression.
    pub fn num_classes(&self) -> usize {
        match self {
            Task::Binary => 2,
            Task::MultiClass(k) => *k,
            Task::Regression => 0,
        }
    }

    /// True for either classification variant.
    pub fn is_classification(&self) -> bool {
        !matches!(self, Task::Regression)
    }
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::Binary => write!(f, "binary"),
            Task::MultiClass(k) => write!(f, "multi-class({k})"),
            Task::Regression => write!(f, "regression"),
        }
    }
}

/// A named supervised dataset: features, target, and task.
///
/// For classification the target is stored as class indices `0..k`; the
/// original labels are kept in `class_labels`. For regression the target is
/// the raw numeric value.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable dataset name (e.g. the Table-4 benchmark name).
    pub name: String,
    /// Feature columns.
    pub features: DataFrame,
    /// Per-row target: class index for classification, value for regression.
    pub target: Vec<f64>,
    /// The inferred or declared task.
    pub task: Task,
    /// Class labels for classification tasks, indexed by class id.
    pub class_labels: Vec<String>,
}

impl Dataset {
    /// Builds a dataset from a frame by designating one column as the
    /// target; the task is inferred from the target's distribution.
    ///
    /// Rows with a missing target are dropped (they carry no supervision).
    pub fn from_frame(name: impl Into<String>, mut frame: DataFrame, target: &str) -> Result<Self> {
        let target_col = frame.remove(target)?;
        let task = infer_task(&target_col);
        let keep: Vec<usize> = (0..target_col.len())
            .filter(|&i| match &target_col {
                Column::Numeric(v) => v[i].is_some(),
                Column::Categorical { codes, .. } => codes[i].is_some(),
                Column::Text(v) => v[i].is_some(),
            })
            .collect();
        if keep.is_empty() {
            return Err(TabularError::Empty(
                "dataset after dropping missing targets",
            ));
        }
        let features = frame.take(&keep);
        let target_col = target_col.take(&keep);

        let (target, class_labels) = match (&task, &target_col) {
            (Task::Regression, Column::Numeric(v)) => {
                (v.iter().map(|x| x.unwrap()).collect(), Vec::new())
            }
            (_, col) => {
                // Classification: map labels (strings or numbers) to 0..k by
                // sorted label order for determinism.
                let labels: Vec<String> =
                    (0..col.len()).map(|i| col.as_string(i).unwrap()).collect();
                let mut sorted: Vec<String> = labels.clone();
                sorted.sort();
                sorted.dedup();
                let target = labels
                    .iter()
                    .map(|l| sorted.binary_search(l).unwrap() as f64)
                    .collect();
                (target, sorted)
            }
        };
        Ok(Dataset {
            name: name.into(),
            features,
            target,
            task,
            class_labels,
        })
    }

    /// Builds a dataset directly from parts, validating lengths.
    pub fn new(
        name: impl Into<String>,
        features: DataFrame,
        target: Vec<f64>,
        task: Task,
    ) -> Result<Self> {
        if features.num_rows() != target.len() {
            return Err(TabularError::LengthMismatch {
                column: "<target>".into(),
                expected: features.num_rows(),
                actual: target.len(),
            });
        }
        let class_labels = if task.is_classification() {
            (0..task.num_classes()).map(|c| c.to_string()).collect()
        } else {
            Vec::new()
        };
        Ok(Dataset {
            name: name.into(),
            features,
            target,
            task,
            class_labels,
        })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.target.len()
    }

    /// Number of feature columns.
    pub fn num_features(&self) -> usize {
        self.features.num_columns()
    }

    /// Selects rows into a new dataset (rows may repeat).
    pub fn take(&self, rows: &[usize]) -> Dataset {
        Dataset {
            name: self.name.clone(),
            features: self.features.take(rows),
            target: rows.iter().map(|&i| self.target[i]).collect(),
            task: self.task,
            class_labels: self.class_labels.clone(),
        }
    }

    /// Per-class row counts for classification tasks (empty for regression).
    pub fn class_counts(&self) -> Vec<usize> {
        if !self.task.is_classification() {
            return Vec::new();
        }
        let k = self.task.num_classes();
        let mut counts = vec![0usize; k];
        for &y in &self.target {
            let c = y as usize;
            if c < k {
                counts[c] += 1;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_target() -> DataFrame {
        DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            (
                "y".to_string(),
                Column::categorical(vec![Some("pos"), Some("neg"), None, Some("pos")]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn from_frame_drops_missing_targets_and_maps_labels() {
        let ds = Dataset::from_frame("toy", frame_with_target(), "y").unwrap();
        assert_eq!(ds.task, Task::Binary);
        assert_eq!(ds.num_rows(), 3);
        assert_eq!(ds.class_labels, vec!["neg".to_string(), "pos".to_string()]);
        // "pos" -> 1, "neg" -> 0 (sorted order).
        assert_eq!(ds.target, vec![1.0, 0.0, 1.0]);
        assert_eq!(ds.num_features(), 1);
    }

    #[test]
    fn from_frame_regression() {
        let f = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_f64(vec![1.0, 2.0, 3.0])),
            ("p".to_string(), Column::from_f64(vec![0.5, 1.7, 2.9])),
        ])
        .unwrap();
        let ds = Dataset::from_frame("r", f, "p").unwrap();
        assert_eq!(ds.task, Task::Regression);
        assert_eq!(ds.target, vec![0.5, 1.7, 2.9]);
    }

    #[test]
    fn new_validates_lengths() {
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(vec![1.0, 2.0]))])
            .unwrap();
        assert!(Dataset::new("bad", f, vec![1.0], Task::Regression).is_err());
    }

    #[test]
    fn class_counts_and_take() {
        let ds = Dataset::from_frame("toy", frame_with_target(), "y").unwrap();
        assert_eq!(ds.class_counts(), vec![1, 2]);
        let sub = ds.take(&[0, 0]);
        assert_eq!(sub.target, vec![1.0, 1.0]);
        assert_eq!(sub.class_counts(), vec![0, 2]);
    }

    #[test]
    fn all_missing_target_is_error() {
        let f = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_f64(vec![1.0])),
            ("y".to_string(), Column::numeric(vec![None])),
        ])
        .unwrap();
        assert!(Dataset::from_frame("bad", f, "y").is_err());
    }

    #[test]
    fn task_display() {
        assert_eq!(Task::Binary.to_string(), "binary");
        assert_eq!(Task::MultiClass(7).to_string(), "multi-class(7)");
        assert_eq!(Task::Regression.to_string(), "regression");
    }
}
