//! Error type shared across the tabular substrate.

use std::fmt;

/// Errors produced while constructing or manipulating tabular data.
#[derive(Debug, Clone, PartialEq)]
pub enum TabularError {
    /// Columns in a frame must all share the same length.
    LengthMismatch {
        /// Name of the offending column.
        column: String,
        /// Length the frame expects.
        expected: usize,
        /// Length the column actually has.
        actual: usize,
    },
    /// A column name was requested that does not exist in the frame.
    UnknownColumn(String),
    /// A column with the same name already exists in the frame.
    DuplicateColumn(String),
    /// A CSV document could not be parsed.
    Csv {
        /// 1-based line at which parsing failed.
        line: usize,
        /// Human-readable description of the failure.
        message: String,
    },
    /// An operation required a non-empty frame or column.
    Empty(&'static str),
    /// An operation received an argument outside its domain.
    InvalidArgument(String),
}

impl fmt::Display for TabularError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TabularError::LengthMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "column `{column}` has length {actual}, frame expects {expected}"
            ),
            TabularError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            TabularError::DuplicateColumn(name) => write!(f, "duplicate column `{name}`"),
            TabularError::Csv { line, message } => {
                write!(f, "csv parse error, line {line}: {message}")
            }
            TabularError::Empty(what) => write!(f, "{what} must be non-empty"),
            TabularError::InvalidArgument(message) => write!(f, "invalid argument: {message}"),
        }
    }
}

impl std::error::Error for TabularError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(TabularError, &str)> = vec![
            (
                TabularError::LengthMismatch {
                    column: "a".into(),
                    expected: 3,
                    actual: 2,
                },
                "column `a` has length 2, frame expects 3",
            ),
            (
                TabularError::UnknownColumn("x".into()),
                "unknown column `x`",
            ),
            (
                TabularError::DuplicateColumn("x".into()),
                "duplicate column `x`",
            ),
            (
                TabularError::Csv {
                    line: 4,
                    message: "bad quote".into(),
                },
                "csv parse error, line 4: bad quote",
            ),
            (TabularError::Empty("frame"), "frame must be non-empty"),
            (
                TabularError::InvalidArgument("k = 0".into()),
                "invalid argument: k = 0",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }
}
