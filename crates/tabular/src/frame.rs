//! [`DataFrame`]: an ordered collection of equally-long named columns.

use crate::column::{Column, ColumnKind};
use crate::error::TabularError;
use crate::Result;
use std::collections::HashMap;

/// An ordered collection of named, equally-long [`Column`]s.
///
/// Column order is significant (it defines feature order for learners);
/// lookup by name is O(1) via an internal index.
#[derive(Debug, Clone, Default)]
pub struct DataFrame {
    names: Vec<String>,
    columns: Vec<Column>,
    index: HashMap<String, usize>,
    rows: usize,
}

impl DataFrame {
    /// Creates an empty frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a frame from `(name, column)` pairs.
    pub fn from_columns<I, S>(pairs: I) -> Result<Self>
    where
        I: IntoIterator<Item = (S, Column)>,
        S: Into<String>,
    {
        let mut frame = Self::new();
        for (name, column) in pairs {
            frame.push(name, column)?;
        }
        Ok(frame)
    }

    /// Appends a column. The first column fixes the row count.
    pub fn push<S: Into<String>>(&mut self, name: S, column: Column) -> Result<()> {
        let name = name.into();
        if self.index.contains_key(&name) {
            return Err(TabularError::DuplicateColumn(name));
        }
        if self.columns.is_empty() {
            self.rows = column.len();
        } else if column.len() != self.rows {
            return Err(TabularError::LengthMismatch {
                column: name,
                expected: self.rows,
                actual: column.len(),
            });
        }
        self.index.insert(name.clone(), self.columns.len());
        self.names.push(name);
        self.columns.push(column);
        Ok(())
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i])
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))
    }

    /// Column by position.
    pub fn column_at(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Name by position.
    pub fn name_at(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Removes and returns a column, preserving the order of the rest.
    pub fn remove(&mut self, name: &str) -> Result<Column> {
        let pos = *self
            .index
            .get(name)
            .ok_or_else(|| TabularError::UnknownColumn(name.to_string()))?;
        self.names.remove(pos);
        let col = self.columns.remove(pos);
        self.index.remove(name);
        // xlint: allow(nondeterministic-iteration): each position is adjusted independently and the updates commute, so visit order cannot affect the resulting index
        for v in self.index.values_mut() {
            if *v > pos {
                *v -= 1;
            }
        }
        if self.columns.is_empty() {
            self.rows = 0;
        }
        Ok(col)
    }

    /// Selects the given rows into a new frame (rows may repeat).
    pub fn take(&self, rows: &[usize]) -> DataFrame {
        let mut out = DataFrame::new();
        for (name, col) in self.names.iter().zip(&self.columns) {
            out.push(name.clone(), col.take(rows))
                .expect("take preserves uniqueness and lengths");
        }
        out.rows = rows.len();
        out
    }

    /// Counts of each column kind, in the order (numeric, categorical, text).
    pub fn kind_counts(&self) -> (usize, usize, usize) {
        let mut n = (0, 0, 0);
        for c in &self.columns {
            match c.kind() {
                ColumnKind::Numeric => n.0 += 1,
                ColumnKind::Categorical => n.1 += 1,
                ColumnKind::Text => n.2 += 1,
            }
        }
        n
    }

    /// Total missing cells across all columns.
    pub fn missing_cells(&self) -> usize {
        self.columns.iter().map(Column::missing_count).sum()
    }

    /// FNV-1a content fingerprint over the frame's schema and every cell
    /// (column names, kinds, exact value bits, missingness). Two frames
    /// share a fingerprint exactly when a deterministic computation over
    /// their content is interchangeable — the cache key contract of the
    /// serving layer's result cache.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        eat(&(self.columns.len() as u64).to_le_bytes());
        eat(&(self.rows as u64).to_le_bytes());
        for (name, column) in self.names.iter().zip(&self.columns) {
            eat(&(name.len() as u64).to_le_bytes());
            eat(name.as_bytes());
            match column {
                Column::Numeric(values) => {
                    eat(&[1]);
                    for v in values {
                        match v {
                            Some(x) => eat(&x.to_bits().to_le_bytes()),
                            None => eat(&[0xff]),
                        }
                    }
                }
                Column::Categorical { codes, dictionary } => {
                    eat(&[2]);
                    for label in dictionary.iter() {
                        eat(&(label.len() as u64).to_le_bytes());
                        eat(label.as_bytes());
                    }
                    for c in codes {
                        match c {
                            Some(code) => eat(&code.to_le_bytes()),
                            None => eat(&[0xff]),
                        }
                    }
                }
                Column::Text(values) => {
                    eat(&[3]);
                    for v in values {
                        match v {
                            Some(s) => {
                                eat(&(s.len() as u64).to_le_bytes());
                                eat(s.as_bytes());
                            }
                            None => eat(&[0xff]),
                        }
                    }
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("age".to_string(), Column::from_f64(vec![1.0, 2.0, 3.0])),
            (
                "color".to_string(),
                Column::categorical(vec![Some("r"), Some("g"), Some("r")]),
            ),
            (
                "note".to_string(),
                Column::text(vec![Some("a b"), None, Some("c")]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_lookup() {
        let f = sample();
        assert_eq!(f.num_rows(), 3);
        assert_eq!(f.num_columns(), 3);
        assert_eq!(f.kind_counts(), (1, 1, 1));
        assert_eq!(f.column("age").unwrap().as_f64(2), Some(3.0));
        assert!(matches!(
            f.column("nope"),
            Err(TabularError::UnknownColumn(_))
        ));
    }

    #[test]
    fn rejects_duplicate_and_mismatched_columns() {
        let mut f = sample();
        assert!(matches!(
            f.push("age", Column::from_f64(vec![0.0, 0.0, 0.0])),
            Err(TabularError::DuplicateColumn(_))
        ));
        assert!(matches!(
            f.push("short", Column::from_f64(vec![0.0])),
            Err(TabularError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut f = sample();
        let removed = f.remove("color").unwrap();
        assert_eq!(removed.kind(), ColumnKind::Categorical);
        assert_eq!(f.num_columns(), 2);
        // "note" shifted left; lookup must still work.
        assert_eq!(
            f.column("note").unwrap().as_string(0).as_deref(),
            Some("a b")
        );
        assert_eq!(f.name_at(1), "note");
    }

    #[test]
    fn take_subsets_and_repeats() {
        let f = sample();
        let t = f.take(&[2, 0, 0]);
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.column("age").unwrap().as_f64(0), Some(3.0));
        assert_eq!(t.column("age").unwrap().as_f64(1), Some(1.0));
    }

    #[test]
    fn missing_cells_counts_across_columns() {
        let f = sample();
        assert_eq!(f.missing_cells(), 1);
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let f = sample();
        assert_eq!(f.fingerprint(), sample().fingerprint(), "pure in content");
        let mut renamed = DataFrame::new();
        for (name, col) in f.names().iter().zip(f.columns()) {
            let name = if name == "age" { "age2" } else { name };
            renamed.push(name.to_string(), col.clone()).unwrap();
        }
        assert_ne!(f.fingerprint(), renamed.fingerprint(), "names matter");
        let mut cell_changed = DataFrame::from_columns(vec![(
            "age".to_string(),
            Column::from_f64(vec![1.0, 2.0, 4.0]),
        )])
        .unwrap();
        let one_col = DataFrame::from_columns(vec![(
            "age".to_string(),
            Column::from_f64(vec![1.0, 2.0, 3.0]),
        )])
        .unwrap();
        assert_ne!(one_col.fingerprint(), cell_changed.fingerprint());
        cell_changed.remove("age").unwrap();
        assert_eq!(cell_changed.fingerprint(), DataFrame::new().fingerprint());
    }

    #[test]
    fn empty_frame_after_removing_all() {
        let mut f = DataFrame::new();
        f.push("x", Column::from_f64(vec![1.0])).unwrap();
        f.remove("x").unwrap();
        assert_eq!(f.num_rows(), 0);
        // Can now push a column of a different length.
        f.push("y", Column::from_f64(vec![1.0, 2.0])).unwrap();
        assert_eq!(f.num_rows(), 2);
    }
}
