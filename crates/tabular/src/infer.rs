//! Column-type and task-type inference.
//!
//! Paper §3.6: KGpip "applies different pre-processing techniques", among
//! them "1) detecting task type (i.e. regression or classification)
//! automatically based on the distribution of the target column 2)
//! automatically inferring accurate data types of columns". This module
//! implements both inferences over raw string cells / typed columns.

use crate::column::Column;
use crate::dataset::Task;

/// Fraction of distinct values below which a string column is treated as
/// categorical rather than free text.
const CATEGORICAL_DISTINCT_RATIO: f64 = 0.5;
/// Absolute distinct-count cap for categorical treatment regardless of size.
const CATEGORICAL_MAX_DISTINCT: usize = 128;
/// Mean token count above which a string column is treated as text even if
/// its cardinality is low.
const TEXT_MEAN_TOKENS: f64 = 4.0;

/// Infers a typed [`Column`] from raw string cells (`None` = missing).
///
/// Heuristics, mirroring the behaviour of pandas-style readers plus KGpip's
/// categorical/text split:
/// 1. if every non-missing cell parses as a number → numeric;
/// 2. else if the column "reads like prose" (mean whitespace-token count
///    > 4) or has high cardinality → text;
/// 3. else → categorical.
pub fn infer_column(values: &[Option<&str>]) -> Column {
    let present: Vec<&str> = values.iter().filter_map(|v| *v).collect();
    if present.is_empty() {
        // All-missing: default to numeric, the cheapest to impute.
        return Column::numeric(values.iter().map(|_| None));
    }
    // A column is numeric when every non-missing cell is either a parseable
    // number or a recognized missing marker, and at least one real number
    // exists (markers parse to missing, not to a value).
    let all_numeric = present
        .iter()
        .all(|s| parse_number(s).is_some() || is_missing_marker(s))
        && present.iter().any(|s| parse_number(s).is_some());
    if all_numeric {
        return Column::numeric(values.iter().map(|v| v.and_then(parse_number)));
    }
    let mut distinct: Vec<&str> = present.clone();
    distinct.sort_unstable();
    distinct.dedup();
    let distinct_ratio = distinct.len() as f64 / present.len() as f64;
    let mean_tokens = present
        .iter()
        .map(|s| s.split_whitespace().count())
        .sum::<usize>() as f64
        / present.len() as f64;

    let is_text = mean_tokens > TEXT_MEAN_TOKENS
        || (distinct.len() > CATEGORICAL_MAX_DISTINCT
            && distinct_ratio > CATEGORICAL_DISTINCT_RATIO);
    if is_text {
        Column::text(values.iter().map(|v| v.map(str::to_string)))
    } else {
        Column::categorical(values.iter().copied())
    }
}

/// True for cells that conventionally denote a missing value.
pub fn is_missing_marker(s: &str) -> bool {
    matches!(
        s.trim().to_ascii_lowercase().as_str(),
        "" | "na" | "n/a" | "null" | "nan" | "?"
    )
}

/// Parses a cell as a number, accepting surrounding whitespace and treating
/// common missing markers (`NA`, `N/A`, `null`, `nan`, `?`) as missing.
pub fn parse_number(s: &str) -> Option<f64> {
    if is_missing_marker(s) {
        return None;
    }
    s.trim().parse::<f64>().ok().filter(|x| x.is_finite())
}

/// Maximum distinct target values for a numeric column to still be treated
/// as classification.
const CLASSIFICATION_MAX_CLASSES: usize = 50;

/// Infers the supervised task type from a target column, following the
/// paper's "distribution of the target column" rule:
///
/// * categorical or text targets → classification;
/// * numeric targets that are all integers with few distinct values →
///   classification (class labels stored as numbers, common in OpenML);
/// * otherwise → regression.
pub fn infer_task(target: &Column) -> Task {
    match target {
        Column::Categorical { .. } | Column::Text(_) => {
            let classes = target.cardinality().max(1);
            Task::classification(classes)
        }
        Column::Numeric(values) => {
            let present: Vec<f64> = values.iter().copied().flatten().collect();
            if present.is_empty() {
                return Task::Regression;
            }
            let all_integral = present.iter().all(|x| x.fract() == 0.0);
            let mut distinct: Vec<u64> = present.iter().map(|x| x.to_bits()).collect();
            distinct.sort_unstable();
            distinct.dedup();
            let few = distinct.len() <= CLASSIFICATION_MAX_CLASSES
                && (distinct.len() as f64) < (present.len() as f64).sqrt().max(3.0);
            if all_integral && few && distinct.len() >= 2 {
                Task::classification(distinct.len())
            } else {
                Task::Regression
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::ColumnKind;

    #[test]
    fn numeric_inference_with_missing_markers() {
        let c = infer_column(&[Some("1.5"), Some("NA"), Some("-2"), None, Some("?")]);
        assert_eq!(c.kind(), ColumnKind::Numeric);
        assert_eq!(c.missing_count(), 3);
        assert_eq!(c.as_f64(2), Some(-2.0));
    }

    #[test]
    fn categorical_inference_for_low_cardinality_strings() {
        let cells: Vec<Option<&str>> = (0..100)
            .map(|i| Some(if i % 3 == 0 { "red" } else { "blue" }))
            .collect();
        assert_eq!(infer_column(&cells).kind(), ColumnKind::Categorical);
    }

    #[test]
    fn text_inference_for_prose() {
        let cells: Vec<Option<&str>> = vec![
            Some("this is a long movie review with many words"),
            Some("another long piece of user generated text content"),
        ];
        assert_eq!(infer_column(&cells).kind(), ColumnKind::Text);
    }

    #[test]
    fn text_inference_for_high_cardinality_short_strings() {
        let owned: Vec<String> = (0..500).map(|i| format!("id_{i}")).collect();
        let cells: Vec<Option<&str>> = owned.iter().map(|s| Some(s.as_str())).collect();
        assert_eq!(infer_column(&cells).kind(), ColumnKind::Text);
    }

    #[test]
    fn all_missing_column_is_numeric() {
        let c = infer_column(&[None, None]);
        assert_eq!(c.kind(), ColumnKind::Numeric);
        assert_eq!(c.missing_count(), 2);
    }

    #[test]
    fn task_inference_categorical_target() {
        let t = Column::categorical(vec![Some("yes"), Some("no"), Some("yes")]);
        assert_eq!(infer_task(&t), Task::classification(2));
    }

    #[test]
    fn task_inference_integer_labels() {
        let vals: Vec<f64> = (0..300).map(|i| (i % 3) as f64).collect();
        let t = Column::from_f64(vals);
        assert_eq!(infer_task(&t), Task::classification(3));
    }

    #[test]
    fn task_inference_continuous_target() {
        let vals: Vec<f64> = (0..300).map(|i| i as f64 * 0.37).collect();
        let t = Column::from_f64(vals);
        assert_eq!(infer_task(&t), Task::Regression);
    }

    #[test]
    fn task_inference_many_distinct_integers_is_regression() {
        // e.g. house prices in whole dollars: integral but clearly continuous.
        let vals: Vec<f64> = (0..300).map(|i| (100_000 + i * 137) as f64).collect();
        let t = Column::from_f64(vals);
        assert_eq!(infer_task(&t), Task::Regression);
    }

    #[test]
    fn parse_number_rejects_infinite() {
        assert_eq!(parse_number("inf"), None);
        assert_eq!(parse_number(" 3.25 "), Some(3.25));
    }
}
