//! Tabular data substrate for the KGpip reproduction.
//!
//! The KGpip paper operates on tabular datasets drawn from OpenML, PMLB,
//! Kaggle and the Open AutoML Benchmark. Its preprocessing stage (paper
//! §3.6) "detects task type automatically based on the distribution of the
//! target column", "automatically infers accurate data types of columns",
//! vectorizes textual columns, and imputes missing values. No mature
//! dataframe library is assumed; this crate provides the minimal, fully
//! owned substrate those steps require:
//!
//! * [`Column`] — typed columns (numeric, categorical with a dictionary,
//!   free text) with missing-value support,
//! * [`DataFrame`] — an ordered collection of named columns,
//! * [`csv`] — a small RFC-4180-style reader/writer,
//! * [`infer`] — column-type and task-type inference,
//! * [`split`] — train/test and (stratified) k-fold splitting,
//! * [`stats`] — column summary statistics shared by the dataset-embedding
//!   and meta-feature components,
//! * [`parallel`] — the [`effective_parallelism`] worker-count clamp every
//!   rayon entry point in the workspace consults,
//! * [`chunk`] — [`ChunkedFrame`], the out-of-core chunked columnar
//!   substrate with deterministic row sampling and streamed statistics,
//! * [`stream`] — chunk-parallel CSV ingest, bit-identical to the
//!   in-memory reader at any chunk size × worker count,
//! * [`Dataset`] — a feature frame plus a supervised target.
//!
//! Everything is deterministic given an RNG seed; nothing performs I/O
//! besides the explicit CSV helpers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chunk;
pub mod column;
pub mod csv;
pub mod dataset;
pub mod error;
pub mod frame;
pub mod infer;
pub mod parallel;
pub mod split;
pub mod stats;
pub mod stream;

pub use chunk::{concat_column, row_priority, sample_rows, ChunkedFrame};
pub use column::{Column, ColumnKind};
pub use dataset::{Dataset, Task};
pub use error::TabularError;
pub use frame::DataFrame;
pub use infer::{infer_column, infer_task};
pub use parallel::effective_parallelism;
pub use split::{kfold, stratified_kfold, train_test_split};
pub use stats::{fnv1a, ColumnStats};
pub use stream::{
    read_chunked, read_chunked_with_report, read_frame_chunked, ChunkedReadOptions, IngestReport,
};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TabularError>;
