//! The canonical worker-count clamp every parallel stage consults.
//!
//! The house invariant — parallelism changes what a stage *costs*, never
//! what it *computes* — has a corollary about worker counts: asking for
//! more workers than the host has CPUs only adds contention (the 1-CPU
//! `parallelism = 2` regression tracked in ROADMAP), so every rayon entry
//! point in the workspace routes its requested parallelism through
//! [`effective_parallelism`] before building a pool. The `xlint`
//! `unclamped-rayon` rule enforces this statically: a function that
//! constructs a pool or enters `par_iter` without consulting this clamp
//! (directly or through a sanctioned pool constructor) fails the
//! workspace lint.
//!
//! The function lives in `kgpip-tabular` — the bottom crate of the
//! workspace — so every compute crate can reach it without dependency
//! cycles; `kgpip-graphgen` re-exports it under its historical path.

/// Requested parallelism clamped to the CPUs the host actually has.
///
/// `0` (a directly-constructed config bypassing the builder's clamp) is
/// treated as sequential. Worker counts above the hardware width only add
/// contention; results never depend on the worker count, so clamping is
/// invisible except in cost.
pub fn effective_parallelism(requested: usize) -> usize {
    let available = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    requested.clamp(1, available)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_clamped_to_sequential() {
        assert_eq!(effective_parallelism(0), 1);
    }

    #[test]
    fn one_is_identity() {
        assert_eq!(effective_parallelism(1), 1);
    }

    #[test]
    fn never_exceeds_the_host_width() {
        let available = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        assert_eq!(effective_parallelism(usize::MAX), available);
        assert!(effective_parallelism(2) <= available.max(2));
    }
}
