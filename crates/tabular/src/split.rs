//! Train/test and k-fold splitting with deterministic seeding.

use crate::dataset::Dataset;
use crate::error::TabularError;
use crate::Result;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Splits a dataset into `(train, test)` with `test_fraction` of rows in the
/// test part, after a seeded shuffle.
pub fn train_test_split(ds: &Dataset, test_fraction: f64, seed: u64) -> Result<(Dataset, Dataset)> {
    if !(0.0..1.0).contains(&test_fraction) || test_fraction <= 0.0 {
        return Err(TabularError::InvalidArgument(format!(
            "test_fraction must be in (0, 1), got {test_fraction}"
        )));
    }
    let n = ds.num_rows();
    if n < 2 {
        return Err(TabularError::Empty("dataset with at least 2 rows"));
    }
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut StdRng::seed_from_u64(seed));
    let test_n = ((n as f64 * test_fraction).round() as usize).clamp(1, n - 1);
    let (test_rows, train_rows) = rows.split_at(test_n);
    Ok((ds.take(train_rows), ds.take(test_rows)))
}

/// Produces `k` folds of `(train_rows, validation_rows)` index pairs over
/// `n` rows, after a seeded shuffle. Fold sizes differ by at most one.
pub fn kfold(n: usize, k: usize, seed: u64) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    if k < 2 || k > n {
        return Err(TabularError::InvalidArgument(format!(
            "k must be in [2, n={n}], got {k}"
        )));
    }
    let mut rows: Vec<usize> = (0..n).collect();
    rows.shuffle(&mut StdRng::seed_from_u64(seed));
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0usize;
    for f in 0..k {
        let size = base + usize::from(f < extra);
        let val: Vec<usize> = rows[start..start + size].to_vec();
        let train: Vec<usize> = rows[..start]
            .iter()
            .chain(&rows[start + size..])
            .copied()
            .collect();
        folds.push((train, val));
        start += size;
    }
    Ok(folds)
}

/// Stratified k-fold for classification targets: each fold's class mix
/// approximates the global mix. `targets` are class indices.
pub fn stratified_kfold(
    targets: &[f64],
    k: usize,
    seed: u64,
) -> Result<Vec<(Vec<usize>, Vec<usize>)>> {
    let n = targets.len();
    if k < 2 || k > n {
        return Err(TabularError::InvalidArgument(format!(
            "k must be in [2, n={n}], got {k}"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Group row indices by class, shuffle within class, deal round-robin.
    let mut by_class: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    for (i, &y) in targets.iter().enumerate() {
        by_class.entry(y.to_bits()).or_default().push(i);
    }
    let mut fold_of = vec![0usize; n];
    let mut next_fold = 0usize;
    for rows in by_class.values_mut() {
        rows.shuffle(&mut rng);
        for &row in rows.iter() {
            fold_of[row] = next_fold;
            next_fold = (next_fold + 1) % k;
        }
    }
    let mut folds = Vec::with_capacity(k);
    for f in 0..k {
        let val: Vec<usize> = (0..n).filter(|&i| fold_of[i] == f).collect();
        let train: Vec<usize> = (0..n).filter(|&i| fold_of[i] != f).collect();
        if val.is_empty() || train.is_empty() {
            return Err(TabularError::InvalidArgument(
                "stratified fold would be empty; reduce k".into(),
            ));
        }
        folds.push((train, val));
    }
    Ok(folds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;
    use crate::dataset::Task;
    use crate::frame::DataFrame;

    fn toy(n: usize) -> Dataset {
        let f = DataFrame::from_columns(vec![(
            "x".to_string(),
            Column::from_f64((0..n).map(|i| i as f64).collect::<Vec<_>>()),
        )])
        .unwrap();
        let y: Vec<f64> = (0..n).map(|i| (i % 2) as f64).collect();
        Dataset::new("toy", f, y, Task::Binary).unwrap()
    }

    #[test]
    fn split_is_deterministic_and_disjoint() {
        let ds = toy(100);
        let (tr1, te1) = train_test_split(&ds, 0.3, 7).unwrap();
        let (tr2, te2) = train_test_split(&ds, 0.3, 7).unwrap();
        assert_eq!(tr1.num_rows(), 70);
        assert_eq!(te1.num_rows(), 30);
        assert_eq!(tr1.target, tr2.target);
        assert_eq!(te1.target, te2.target);
        let mut xs: Vec<f64> = tr1
            .features
            .column("x")
            .unwrap()
            .numeric_values()
            .into_iter()
            .chain(te1.features.column("x").unwrap().numeric_values())
            .collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(xs, (0..100).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn split_different_seed_differs() {
        let ds = toy(100);
        let (_, te1) = train_test_split(&ds, 0.3, 1).unwrap();
        let (_, te2) = train_test_split(&ds, 0.3, 2).unwrap();
        assert_ne!(
            te1.features.column("x").unwrap().numeric_values(),
            te2.features.column("x").unwrap().numeric_values()
        );
    }

    #[test]
    fn split_rejects_bad_fraction() {
        let ds = toy(10);
        assert!(train_test_split(&ds, 0.0, 0).is_err());
        assert!(train_test_split(&ds, 1.0, 0).is_err());
    }

    #[test]
    fn kfold_covers_every_row_exactly_once_in_validation() {
        let folds = kfold(23, 5, 3).unwrap();
        assert_eq!(folds.len(), 5);
        let mut all_val: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all_val.sort_unstable();
        assert_eq!(all_val, (0..23).collect::<Vec<_>>());
        for (train, val) in &folds {
            assert_eq!(train.len() + val.len(), 23);
            assert!(val.len() == 4 || val.len() == 5);
        }
    }

    #[test]
    fn kfold_rejects_bad_k() {
        assert!(kfold(10, 1, 0).is_err());
        assert!(kfold(10, 11, 0).is_err());
    }

    #[test]
    fn stratified_preserves_class_balance() {
        // 90 of class 0, 10 of class 1.
        let targets: Vec<f64> = (0..100).map(|i| f64::from(i < 10)).collect();
        let folds = stratified_kfold(&targets, 5, 11).unwrap();
        for (_, val) in &folds {
            let minority = val.iter().filter(|&&i| targets[i] == 1.0).count();
            assert_eq!(minority, 2, "each fold should carry 2 minority rows");
        }
    }

    #[test]
    fn stratified_validation_partition_is_exact() {
        let targets: Vec<f64> = (0..30).map(|i| (i % 3) as f64).collect();
        let folds = stratified_kfold(&targets, 3, 0).unwrap();
        let mut all: Vec<usize> = folds.iter().flat_map(|(_, v)| v.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>());
    }
}
