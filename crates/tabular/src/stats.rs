//! Column summary statistics.
//!
//! These sketches serve two consumers in the reproduction:
//! * the content-based dataset embeddings of `kgpip-embeddings` (paper §3.2
//!   builds column embeddings from actual values), and
//! * the meta-features used by the Auto-Sklearn-style warm start and the AL
//!   baseline (paper §2 "Dataset embeddings" discusses meta-features such as
//!   the number of numerical attributes or skewness).

use crate::column::{Column, ColumnKind};

/// 64-bit FNV-1a hash — the workspace's canonical cheap string hash
/// (feature hashing, n-gram buckets, deterministic synthetic seeds).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Summary statistics of a single column, computed over non-missing values.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Kind of the source column.
    pub kind: ColumnKind,
    /// Total rows including missing.
    pub len: usize,
    /// Missing-value count.
    pub missing: usize,
    /// Distinct non-missing values.
    pub cardinality: usize,
    /// Mean of the numeric view (0 when no numeric view exists).
    pub mean: f64,
    /// Standard deviation of the numeric view.
    pub std: f64,
    /// Minimum of the numeric view.
    pub min: f64,
    /// Maximum of the numeric view.
    pub max: f64,
    /// Skewness (third standardized moment) of the numeric view.
    pub skewness: f64,
    /// Excess kurtosis (fourth standardized moment − 3) of the numeric view.
    pub kurtosis: f64,
    /// Evenly spaced quantiles of the numeric view: p10..p90 in steps of 20.
    pub quantiles: [f64; 5],
    /// Mean whitespace-token count for text columns (0 otherwise).
    pub mean_tokens: f64,
    /// Mean character length of the string view.
    pub mean_chars: f64,
}

impl ColumnStats {
    /// Computes statistics for a column.
    pub fn compute(column: &Column) -> ColumnStats {
        let len = column.len();
        let missing = column.missing_count();
        let cardinality = column.cardinality();
        let values = column.numeric_values();

        let (mean, std, min, max, skewness, kurtosis, quantiles) = if values.is_empty() {
            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0, [0.0; 5])
        } else {
            let n = values.len() as f64;
            let mean = values.iter().sum::<f64>() / n;
            let var = values.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            let std = var.sqrt();
            let (skew, kurt) = if std > 1e-12 {
                let m3 = values
                    .iter()
                    .map(|x| ((x - mean) / std).powi(3))
                    .sum::<f64>()
                    / n;
                let m4 = values
                    .iter()
                    .map(|x| ((x - mean) / std).powi(4))
                    .sum::<f64>()
                    / n;
                (m3, m4 - 3.0)
            } else {
                (0.0, 0.0)
            };
            let mut sorted = values.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let q = |p: f64| -> f64 {
                let idx = (p * (sorted.len() - 1) as f64).round() as usize;
                sorted[idx.min(sorted.len() - 1)]
            };
            let quantiles = [q(0.1), q(0.3), q(0.5), q(0.7), q(0.9)];
            (
                mean,
                std,
                sorted[0],
                sorted[sorted.len() - 1],
                skew,
                kurt,
                quantiles,
            )
        };

        let mut token_sum = 0usize;
        let mut char_sum = 0usize;
        let mut string_count = 0usize;
        for i in 0..len {
            if let Some(s) = column.as_string(i) {
                token_sum += s.split_whitespace().count();
                char_sum += s.chars().count();
                string_count += 1;
            }
        }
        let mean_tokens = if string_count > 0 && column.kind() == ColumnKind::Text {
            token_sum as f64 / string_count as f64
        } else {
            0.0
        };
        let mean_chars = if string_count > 0 {
            char_sum as f64 / string_count as f64
        } else {
            0.0
        };

        ColumnStats {
            kind: column.kind(),
            len,
            missing,
            cardinality,
            mean,
            std,
            min,
            max,
            skewness,
            kurtosis,
            quantiles,
            mean_tokens,
            mean_chars,
        }
    }

    /// Fraction of missing values.
    pub fn missing_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.missing as f64 / self.len as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::column::Column;

    #[test]
    fn fnv1a_known_values() {
        // Reference vector for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }

    #[test]
    fn numeric_moments() {
        let c = Column::from_f64(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let s = ColumnStats::compute(&c);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.std - (2.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(s.skewness.abs() < 1e-12, "symmetric data has zero skew");
        assert_eq!(s.quantiles[2], 3.0);
    }

    #[test]
    fn skewness_sign_follows_tail() {
        let right_tail = Column::from_f64(vec![1.0, 1.0, 1.0, 1.0, 10.0]);
        assert!(ColumnStats::compute(&right_tail).skewness > 0.5);
        let left_tail = Column::from_f64(vec![10.0, 10.0, 10.0, 10.0, 1.0]);
        assert!(ColumnStats::compute(&left_tail).skewness < -0.5);
    }

    #[test]
    fn constant_column_has_no_skew_or_kurtosis() {
        let c = Column::from_f64(vec![7.0; 10]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.skewness, 0.0);
        assert_eq!(s.kurtosis, 0.0);
    }

    #[test]
    fn missing_ratio_and_cardinality() {
        let c = Column::numeric(vec![Some(1.0), None, Some(1.0), Some(2.0)]);
        let s = ColumnStats::compute(&c);
        assert_eq!(s.missing, 1);
        assert!((s.missing_ratio() - 0.25).abs() < 1e-12);
        assert_eq!(s.cardinality, 2);
    }

    #[test]
    fn text_stats() {
        let c = Column::text(vec![Some("one two three"), Some("four five")]);
        let s = ColumnStats::compute(&c);
        assert!((s.mean_tokens - 2.5).abs() < 1e-12);
        assert!(s.mean_chars > 0.0);
        assert_eq!(s.mean, 0.0, "text has no numeric view");
    }

    #[test]
    fn categorical_numeric_view_uses_codes() {
        let c = Column::categorical(vec![Some("a"), Some("b"), Some("b")]);
        let s = ColumnStats::compute(&c);
        // Codes 0, 1, 1 -> mean 2/3.
        assert!((s.mean - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.mean_tokens, 0.0, "only text columns report token stats");
    }

    #[test]
    fn empty_column() {
        let c = Column::numeric(Vec::<Option<f64>>::new());
        let s = ColumnStats::compute(&c);
        assert_eq!(s.len, 0);
        assert_eq!(s.missing_ratio(), 0.0);
    }
}
