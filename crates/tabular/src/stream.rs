//! Streaming chunked CSV ingest.
//!
//! [`read_chunked`] parses a CSV document into a [`ChunkedFrame`] in
//! fixed-size row chunks on a clamped rayon pool, bit-identical to
//! [`crate::csv::read_frame`] at any chunk size × worker count:
//!
//! 1. a sequential quote-aware scan locates record boundaries (cheap: no
//!    field is materialized) and surfaces every structural error at the
//!    same source line the in-memory reader reports;
//! 2. **pass 1** parses each chunk of records on the pool and reduces it
//!    to per-column accumulators — present count, the numeric/marker
//!    lattice flags, token sums, and the first-appearance distinct list;
//! 3. the accumulators meet in chunk order, which reproduces
//!    `infer_column`'s decisions exactly (the distinct lists merge into
//!    the global first-appearance dictionary);
//! 4. **pass 2** decodes each chunk into typed [`Column`]s under the
//!    decided kinds, all categorical chunks sharing one dictionary `Arc`;
//!    chunks merge in submission order.
//!
//! With [`ChunkedReadOptions::bounded_memory`] the reader trades one extra
//! parse for bounded buffering: chunks are processed in waves of at most
//! `2 × workers`, so no more than two chunks of parsed cells are resident
//! per worker at any time (pass 2 re-parses from the source). The default
//! mode parses once and keeps the borrowed cells between passes — cells
//! are slices into the input, so this costs pointers, not string copies.

use crate::chunk::ChunkedFrame;
use crate::column::Column;
use crate::csv::{header_names, parse_span, ragged_row_error, scan_records, RecordSpan};
use crate::infer::{is_missing_marker, parse_number};
use crate::parallel::effective_parallelism;
use crate::Result;
use rayon::prelude::*;
use std::borrow::Cow;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::Arc;

/// One parsed record: borrowed cells, `None` = missing.
type Record<'a> = Vec<Option<Cow<'a, str>>>;

/// Options for [`read_chunked`].
#[derive(Debug, Clone)]
pub struct ChunkedReadOptions {
    /// Rows per chunk (clamped to at least 1).
    pub chunk_rows: usize,
    /// Requested worker count; clamped through [`effective_parallelism`].
    pub parallelism: usize,
    /// When set, parse in waves of `2 × workers` chunks and re-parse in
    /// pass 2, bounding resident parse buffers instead of keeping every
    /// chunk's cells alive between passes.
    pub bounded_memory: bool,
}

impl Default for ChunkedReadOptions {
    fn default() -> Self {
        ChunkedReadOptions {
            chunk_rows: 8192,
            parallelism: 1,
            bounded_memory: false,
        }
    }
}

/// What the ingest cost: the observability half of the house invariant
/// (the frame itself is identical on every path).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReport {
    /// Data rows parsed.
    pub rows: usize,
    /// Number of chunks.
    pub chunks: usize,
    /// Workers used after clamping.
    pub workers: usize,
    /// Peak number of chunks whose parsed cells were resident at once —
    /// the peak-RSS proxy. `<= 2 × workers` in bounded mode.
    pub peak_resident_chunks: usize,
}

/// Per-column accumulator a chunk reduces to in pass 1. Merging these in
/// chunk order reproduces `infer_column`'s decision inputs exactly.
struct ColAcc {
    present: usize,
    all_num_or_marker: bool,
    any_real: bool,
    token_sum: usize,
    /// Distinct present values in first-appearance order within the chunk.
    distinct: Vec<String>,
}

impl ColAcc {
    fn new() -> ColAcc {
        ColAcc {
            present: 0,
            all_num_or_marker: true,
            any_real: false,
            token_sum: 0,
            distinct: Vec::new(),
        }
    }
}

/// The decided kind of a column, carried into pass-2 decode.
enum KindDecision {
    Numeric,
    Text,
    Categorical {
        dictionary: Arc<Vec<String>>,
        lookup: HashMap<String, u32>,
    },
}

/// Parses one chunk of record spans and ragged-checks it. `base` is the
/// global index of the chunk's first data record (for error parity with
/// the in-memory reader).
fn parse_chunk<'a>(
    input: &'a str,
    spans: &[RecordSpan],
    base: usize,
    ncols: usize,
) -> Result<Vec<Record<'a>>> {
    let mut rows = Vec::with_capacity(spans.len());
    for (i, span) in spans.iter().enumerate() {
        let row = parse_span(input, *span)?;
        if row.len() != ncols {
            return Err(ragged_row_error(base + i, ncols, row.len()));
        }
        rows.push(row);
    }
    Ok(rows)
}

/// Reduces a parsed chunk to per-column accumulators. With `details`
/// unset, only the cheap numeric-lattice flags are collected — the
/// token sums and distinct lists those flags gate are consumed solely
/// for non-numeric columns (`infer_column` early-returns on numeric
/// ones), so the resident-cells mode defers them to
/// [`accumulate_details`] once the numeric mask is known. Bounded mode
/// collects everything in one pass because the cells are dropped after
/// it.
fn accumulate(rows: &[Record<'_>], ncols: usize, details: bool) -> Vec<ColAcc> {
    let mut accs: Vec<ColAcc> = (0..ncols).map(|_| ColAcc::new()).collect();
    for c in 0..ncols {
        // Chunk-local membership; the set is never iterated.
        let mut seen: HashSet<&str> = HashSet::new();
        let acc = &mut accs[c];
        for row in rows {
            if let Some(s) = row[c].as_deref() {
                acc.present += 1;
                // Once one cell breaks the numeric lattice the column can
                // never be numeric (`decide` tests `all_num && any_real`),
                // so the remaining cells skip the parse probe entirely.
                if acc.all_num_or_marker {
                    if parse_number(s).is_some() {
                        acc.any_real = true;
                    } else if !is_missing_marker(s) {
                        acc.all_num_or_marker = false;
                    }
                }
                if details {
                    acc.token_sum += s.split_whitespace().count();
                    if seen.insert(s) {
                        acc.distinct.push(s.to_string());
                    }
                }
            }
        }
    }
    accs
}

/// The deferred half of pass 1: token sums and first-appearance distinct
/// lists for the given (non-numeric) columns only. Returns
/// `(column, token_sum, distinct)` triples to fold back into the chunk's
/// accumulators.
fn accumulate_details(rows: &[Record<'_>], cols: &[usize]) -> Vec<(usize, usize, Vec<String>)> {
    cols.iter()
        .map(|&c| {
            let mut seen: HashSet<&str> = HashSet::new();
            let mut token_sum = 0usize;
            let mut distinct: Vec<String> = Vec::new();
            for row in rows {
                if let Some(s) = row[c].as_deref() {
                    token_sum += s.split_whitespace().count();
                    if seen.insert(s) {
                        distinct.push(s.to_string());
                    }
                }
            }
            (c, token_sum, distinct)
        })
        .collect()
}

/// Merges chunk accumulators (in chunk order) and takes `infer_column`'s
/// decision per column, building the shared dictionary for categoricals.
fn decide(ncols: usize, chunk_accs: &[Vec<ColAcc>]) -> Vec<KindDecision> {
    const CATEGORICAL_DISTINCT_RATIO: f64 = 0.5;
    const CATEGORICAL_MAX_DISTINCT: usize = 128;
    const TEXT_MEAN_TOKENS: f64 = 4.0;
    (0..ncols)
        .map(|c| {
            let mut present = 0usize;
            let mut all_num = true;
            let mut any_real = false;
            let mut token_sum = 0usize;
            for accs in chunk_accs {
                let a = &accs[c];
                present += a.present;
                all_num &= a.all_num_or_marker;
                any_real |= a.any_real;
                token_sum += a.token_sum;
            }
            if present == 0 || (all_num && any_real) {
                return KindDecision::Numeric;
            }
            // Global first-appearance dictionary: chunk lists merged in
            // chunk order reproduce row-order first appearance.
            let mut dictionary: Vec<String> = Vec::new();
            let mut lookup: HashMap<String, u32> = HashMap::new();
            for accs in chunk_accs {
                for s in &accs[c].distinct {
                    if !lookup.contains_key(s.as_str()) {
                        lookup.insert(s.clone(), dictionary.len() as u32);
                        dictionary.push(s.clone());
                    }
                }
            }
            let distinct_ratio = dictionary.len() as f64 / present as f64;
            let mean_tokens = token_sum as f64 / present as f64;
            let is_text = mean_tokens > TEXT_MEAN_TOKENS
                || (dictionary.len() > CATEGORICAL_MAX_DISTINCT
                    && distinct_ratio > CATEGORICAL_DISTINCT_RATIO);
            if is_text {
                KindDecision::Text
            } else {
                KindDecision::Categorical {
                    dictionary: Arc::new(dictionary),
                    lookup,
                }
            }
        })
        .collect()
}

/// Decodes a parsed chunk into typed columns under the decided kinds.
fn decode_chunk(rows: &[Record<'_>], decisions: &[KindDecision]) -> Vec<Column> {
    decisions
        .iter()
        .enumerate()
        .map(|(c, decision)| match decision {
            KindDecision::Numeric => {
                Column::numeric(rows.iter().map(|r| r[c].as_deref().and_then(parse_number)))
            }
            KindDecision::Text => {
                Column::text(rows.iter().map(|r| r[c].as_deref().map(str::to_string)))
            }
            KindDecision::Categorical { dictionary, lookup } => {
                let codes = rows
                    .iter()
                    .map(|r| r[c].as_deref().and_then(|s| lookup.get(s).copied()))
                    .collect();
                Column::Categorical {
                    codes,
                    dictionary: Arc::clone(dictionary),
                }
            }
        })
        .collect()
}

// xlint: allow(unclamped-rayon): the pool argument is built by read_chunked_with_report from effective_parallelism(); `None` means sequential
fn map_ordered<T, U, F>(pool: Option<&rayon::ThreadPool>, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    match pool {
        Some(p) => p.install(|| items.par_iter().map(&f).collect()),
        None => items.iter().map(f).collect(),
    }
}

/// Reads a CSV document into a [`ChunkedFrame`]; see the module docs for
/// the two-pass scheme. `to_frame()` of the result is bit-identical to
/// [`crate::csv::read_frame`] on the same input at any chunk size and
/// worker count.
pub fn read_chunked(input: &str, opts: &ChunkedReadOptions) -> Result<ChunkedFrame> {
    read_chunked_with_report(input, opts).map(|(frame, _)| frame)
}

/// [`read_chunked`] plus the cost report benches consume.
pub fn read_chunked_with_report(
    input: &str,
    opts: &ChunkedReadOptions,
) -> Result<(ChunkedFrame, IngestReport)> {
    let spans = scan_records(input)?;
    let mut span_iter = spans.iter();
    let header_span = span_iter
        .next()
        .ok_or(crate::error::TabularError::Empty("csv document"))?;
    let header = header_names(parse_span(input, *header_span)?);
    let ncols = header.len();
    let data_spans: &[RecordSpan] = &spans[1..];
    let rows = data_spans.len();
    let chunk_rows = opts.chunk_rows.max(1);
    let groups: Vec<&[RecordSpan]> = data_spans.chunks(chunk_rows).collect();
    let workers = effective_parallelism(opts.parallelism);
    let pool = if workers > 1 && groups.len() > 1 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .build()
            .ok()
    } else {
        None
    };
    let wave_len = if opts.bounded_memory {
        (2 * workers).max(1)
    } else {
        groups.len().max(1)
    };

    let mut columns: Vec<Vec<Column>> = (0..ncols).map(|_| Vec::new()).collect();
    let mut chunk_sizes: Vec<usize> = Vec::with_capacity(groups.len());
    let mut peak_resident = 0usize;

    if opts.bounded_memory {
        // Pass 1 in waves: parse, accumulate, drop the cells.
        let mut chunk_accs: Vec<Vec<ColAcc>> = Vec::with_capacity(groups.len());
        let mut base = 0usize;
        for wave in groups.chunks(wave_len) {
            peak_resident = peak_resident.max(wave.len());
            let tasks: Vec<(usize, &[RecordSpan])> = wave
                .iter()
                .scan(base, |b, g| {
                    let t = (*b, *g);
                    *b += g.len();
                    Some(t)
                })
                .collect();
            base += wave.iter().map(|g| g.len()).sum::<usize>();
            let parsed = map_ordered(pool.as_ref(), &tasks, |&(b, g)| {
                parse_chunk(input, g, b, ncols).map(|rows| accumulate(&rows, ncols, true))
            });
            for accs in parsed {
                chunk_accs.push(accs?);
            }
        }
        let decisions = decide(ncols, &chunk_accs);
        // Pass 2 in waves: re-parse and decode.
        let mut base = 0usize;
        for wave in groups.chunks(wave_len) {
            let tasks: Vec<(usize, &[RecordSpan])> = wave
                .iter()
                .scan(base, |b, g| {
                    let t = (*b, *g);
                    *b += g.len();
                    Some(t)
                })
                .collect();
            base += wave.iter().map(|g| g.len()).sum::<usize>();
            let decoded = map_ordered(pool.as_ref(), &tasks, |&(b, g)| {
                parse_chunk(input, g, b, ncols).map(|rows| decode_chunk(&rows, &decisions))
            });
            for (wave_idx, chunk) in decoded.into_iter().enumerate() {
                let chunk = chunk?;
                chunk_sizes.push(wave[wave_idx].len());
                for (c, col) in chunk.into_iter().enumerate() {
                    columns[c].push(col);
                }
            }
        }
    } else {
        // Single parse: keep borrowed cells between the passes.
        peak_resident = groups.len();
        let tasks: Vec<(usize, &[RecordSpan])> = groups
            .iter()
            .scan(0usize, |b, g| {
                let t = (*b, *g);
                *b += g.len();
                Some(t)
            })
            .collect();
        let parsed = map_ordered(pool.as_ref(), &tasks, |&(b, g)| {
            parse_chunk(input, g, b, ncols)
        });
        let mut chunks: Vec<Vec<Record<'_>>> = Vec::with_capacity(parsed.len());
        for chunk in parsed {
            chunks.push(chunk?);
        }
        let mut chunk_accs: Vec<Vec<ColAcc>> = map_ordered(pool.as_ref(), &chunks, |rows| {
            accumulate(rows, ncols, false)
        });
        // Columns the merged flags already prove numeric never need token
        // or distinct inputs; back-fill details for the rest only (the
        // condition mirrors `decide`'s numeric branch exactly).
        let needs_details: Vec<usize> = (0..ncols)
            .filter(|&c| {
                let mut present = 0usize;
                let mut all_num = true;
                let mut any_real = false;
                for accs in &chunk_accs {
                    present += accs[c].present;
                    all_num &= accs[c].all_num_or_marker;
                    any_real |= accs[c].any_real;
                }
                !(present == 0 || (all_num && any_real))
            })
            .collect();
        if !needs_details.is_empty() {
            let details = map_ordered(pool.as_ref(), &chunks, |rows| {
                accumulate_details(rows, &needs_details)
            });
            for (accs, dets) in chunk_accs.iter_mut().zip(details) {
                for (c, token_sum, distinct) in dets {
                    accs[c].token_sum = token_sum;
                    accs[c].distinct = distinct;
                }
            }
        }
        let decisions = decide(ncols, &chunk_accs);
        let decoded = map_ordered(pool.as_ref(), &chunks, |rows| {
            decode_chunk(rows, &decisions)
        });
        for (g, chunk) in decoded.into_iter().enumerate() {
            chunk_sizes.push(groups[g].len());
            for (c, col) in chunk.into_iter().enumerate() {
                columns[c].push(col);
            }
        }
    }

    // Duplicate headers get the same positional suffixes read_frame applies.
    let mut names: Vec<String> = Vec::with_capacity(ncols);
    for (c, base_name) in header.into_iter().enumerate() {
        let mut name = base_name;
        while names.contains(&name) {
            name = format!("{name}.{c}");
        }
        names.push(name);
    }

    let frame = ChunkedFrame::from_parts(names, columns, chunk_sizes);
    let report = IngestReport {
        rows,
        chunks: groups.len(),
        workers,
        peak_resident_chunks: peak_resident,
    };
    Ok((frame, report))
}

/// Chunked-parallel drop-in for [`crate::csv::read_frame`]: same
/// `DataFrame`, parsed in parallel chunks.
pub fn read_frame_chunked(input: &str, opts: &ChunkedReadOptions) -> Result<crate::DataFrame> {
    read_chunked(input, opts)?.to_frame()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::read_frame;

    const DOC: &str = "x,city,note,empty\n1.5,paris,\"alpha, beta\",\n2.5,lyon,short,\n\
                       NA,paris,\"he said \"\"hi\"\"\",\n4.5,nice,words words words words words,\n\
                       5.5,lyon,tail text,\n";

    #[test]
    fn chunked_matches_read_frame_at_every_chunk_size() {
        let expected = read_frame(DOC).unwrap();
        for chunk_rows in [1, 2, 3, 100] {
            for parallelism in [1, 2, 4] {
                for bounded in [false, true] {
                    let opts = ChunkedReadOptions {
                        chunk_rows,
                        parallelism,
                        bounded_memory: bounded,
                    };
                    let frame = read_frame_chunked(DOC, &opts).unwrap();
                    assert_eq!(
                        frame.fingerprint(),
                        expected.fingerprint(),
                        "chunk_rows={chunk_rows} parallelism={parallelism} bounded={bounded}"
                    );
                }
            }
        }
    }

    #[test]
    fn bounded_mode_caps_resident_chunks() {
        let opts = ChunkedReadOptions {
            chunk_rows: 1,
            parallelism: 1,
            bounded_memory: true,
        };
        let (_, report) = read_chunked_with_report(DOC, &opts).unwrap();
        assert_eq!(report.rows, 5);
        assert_eq!(report.chunks, 5);
        assert!(
            report.peak_resident_chunks <= 2 * report.workers,
            "bounded mode keeps at most two chunks resident per worker"
        );
    }

    #[test]
    fn errors_match_the_in_memory_reader() {
        for bad in ["a,b\n1\n", "a\n\"oops\n", "a\nx\"y\"\n"] {
            let seq = read_frame(bad).unwrap_err().to_string();
            let chk = read_frame_chunked(bad, &ChunkedReadOptions::default())
                .unwrap_err()
                .to_string();
            assert_eq!(seq, chk, "input {bad:?}");
        }
        assert!(read_frame_chunked("", &ChunkedReadOptions::default()).is_err());
    }

    #[test]
    fn duplicate_headers_suffix_like_read_frame() {
        let doc = "a,a.1,a\n1,2,3\n";
        let expected = read_frame(doc).unwrap();
        let frame = read_frame_chunked(doc, &ChunkedReadOptions::default()).unwrap();
        assert_eq!(frame.names(), expected.names());
    }

    #[test]
    fn header_only_document_yields_empty_typed_frame() {
        let expected = read_frame("a,b\n").unwrap();
        let frame = read_frame_chunked("a,b\n", &ChunkedReadOptions::default()).unwrap();
        assert_eq!(frame.fingerprint(), expected.fingerprint());
        assert_eq!(frame.num_rows(), 0);
    }
}
