//! Property tests for the chunked engine's house invariant: chunking
//! (and ingest parallelism, and bounded-memory mode) changes what the
//! pipeline *costs*, never what it *computes*.
//!
//! The generated CSV text is the ground truth — the streaming chunked
//! reader and the in-memory `read_frame` parse the same document, so
//! their frames must agree fingerprint-for-fingerprint (and their errors
//! message-for-message) at every chunk size × worker count.

use kgpip_tabular::csv::read_frame;
use kgpip_tabular::{
    read_chunked_with_report, read_frame_chunked, ChunkedFrame, ChunkedReadOptions, Column,
    ColumnStats, DataFrame,
};
use proptest::prelude::*;

/// Chunk sizes swept by every property: single-row, small-prime,
/// medium, and whole-file-in-one-chunk.
const CHUNK_SIZES: [usize; 4] = [1, 7, 64, 1_000_000];

/// RFC-4180-quotes a cell, doubling embedded quotes.
fn quote(cell: &str) -> String {
    format!("\"{}\"", cell.replace('"', "\"\""))
}

/// Builds a CSV document from generated cells: `cols` named header
/// fields, one line per row, present cells quoted (so commas and quotes
/// inside them are data, not structure), missing cells empty.
fn doc(cols: usize, rows: &[Vec<Option<String>>]) -> String {
    let mut text = (0..cols)
        .map(|j| format!("h{j}"))
        .collect::<Vec<_>>()
        .join(",");
    text.push('\n');
    for row in rows {
        let line = row
            .iter()
            .take(cols)
            .map(|c| c.as_deref().map(quote).unwrap_or_default())
            .collect::<Vec<_>>()
            .join(",");
        text.push_str(&line);
        text.push('\n');
    }
    text
}

/// Generated grid of optional printable-ASCII cells (width 4; `doc`
/// truncates to the generated column count).
fn cells() -> impl Strategy<Value = Vec<Vec<Option<String>>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of("[ -~]{0,10}"), 4),
        0..25,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streamed chunked ingest is bit-identical to the in-memory reader
    /// at every chunk size × parallelism × memory mode, and bounded mode
    /// honours its residency cap.
    #[test]
    fn chunked_ingest_matches_the_in_memory_reader(
        cols in 1usize..4,
        rows in cells(),
    ) {
        let text = doc(cols, &rows);
        let expected = read_frame(&text).unwrap();
        for chunk_rows in CHUNK_SIZES {
            for parallelism in [1usize, 2, 4] {
                for bounded_memory in [false, true] {
                    let opts = ChunkedReadOptions { chunk_rows, parallelism, bounded_memory };
                    let (frame, report) = read_chunked_with_report(&text, &opts).unwrap();
                    prop_assert_eq!(
                        frame.to_frame().unwrap().fingerprint(),
                        expected.fingerprint(),
                        "chunk_rows={} parallelism={} bounded={}",
                        chunk_rows, parallelism, bounded_memory
                    );
                    prop_assert_eq!(report.rows, rows.len());
                    if bounded_memory {
                        prop_assert!(
                            report.peak_resident_chunks <= 2 * report.workers,
                            "bounded mode kept {} chunks resident on {} workers",
                            report.peak_resident_chunks, report.workers
                        );
                    }
                }
            }
        }
    }

    /// A malformed document (one ragged row spliced into an otherwise
    /// valid one) fails both readers with the same message at every
    /// chunk size — streaming must not change what an error looks like.
    #[test]
    fn malformed_documents_error_identically(
        rows in cells(),
        at in 0usize..26,
    ) {
        let cols = 3usize;
        let mut text = doc(cols, &rows);
        let line = at.min(rows.len()) + 1; // after the header
        let offset: usize = text
            .split_inclusive('\n')
            .take(line)
            .map(str::len)
            .sum();
        text.insert_str(offset, "lonely\n"); // 1 field where 3 are expected
        let expected = read_frame(&text).unwrap_err().to_string();
        for chunk_rows in CHUNK_SIZES {
            for parallelism in [1usize, 2, 4] {
                let opts = ChunkedReadOptions { chunk_rows, parallelism, bounded_memory: false };
                let got = read_frame_chunked(&text, &opts).unwrap_err().to_string();
                prop_assert_eq!(
                    &expected, &got,
                    "chunk_rows={} parallelism={}", chunk_rows, parallelism
                );
            }
        }
    }

    /// With the sample bound at (or above) the row count, sampled chunk
    /// statistics replay the exact in-memory computation — same floating
    /// point operation sequence, same result — at every chunk size.
    #[test]
    fn sampled_stats_are_exact_under_full_coverage(
        values in proptest::collection::vec(proptest::option::of(-1e6f64..1e6), 1..60),
    ) {
        let col = Column::numeric(values.clone());
        let exact = ColumnStats::compute(&col);
        let frame = DataFrame::from_columns(vec![("v".to_string(), col)]).unwrap();
        for chunk_rows in CHUNK_SIZES {
            let cf = ChunkedFrame::from_frame(&frame, chunk_rows);
            let sample = cf.sample(values.len(), 0);
            let sampled = cf.column_stats_sampled(0, &sample);
            // Debug formatting compares NaN fields as equal too.
            prop_assert_eq!(format!("{exact:?}"), format!("{sampled:?}"), "chunk_rows={}", chunk_rows);
        }
    }

    /// Below the bound the row sample is keyed by global row index, so
    /// the sample — and the statistics computed from it — are invariant
    /// to how the rows are chunked.
    #[test]
    fn sampling_is_chunk_size_invariant(
        values in proptest::collection::vec(proptest::option::of(-1e3f64..1e3), 12..80),
        bound in 3usize..10,
        seed in 0u64..20,
    ) {
        let frame =
            DataFrame::from_columns(vec![("v".to_string(), Column::numeric(values))]).unwrap();
        let reference = ChunkedFrame::from_frame(&frame, 1);
        let ref_sample = reference.sample(bound, seed);
        prop_assert_eq!(ref_sample.len(), bound.min(frame.num_rows()));
        let ref_stats = reference.column_stats_sampled(0, &ref_sample);
        for chunk_rows in [7usize, 64, 1_000_000] {
            let cf = ChunkedFrame::from_frame(&frame, chunk_rows);
            let sample = cf.sample(bound, seed);
            prop_assert_eq!(&ref_sample, &sample, "chunk_rows={}", chunk_rows);
            prop_assert_eq!(
                format!("{ref_stats:?}"),
                format!("{:?}", cf.column_stats_sampled(0, &sample)),
                "chunk_rows={}", chunk_rows
            );
        }
    }
}
