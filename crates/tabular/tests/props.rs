//! Property-based tests for the tabular substrate.

use kgpip_tabular::{
    infer_column, kfold, stratified_kfold, Column, ColumnStats, DataFrame, Dataset, Task,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Type inference must be total over arbitrary cell content.
    #[test]
    fn infer_column_never_panics(cells in proptest::collection::vec(
        proptest::option::of("[ -~]{0,24}"), 0..50
    )) {
        let refs: Vec<Option<&str>> = cells.iter().map(|c| c.as_deref()).collect();
        let col = infer_column(&refs);
        prop_assert_eq!(col.len(), cells.len());
        // Missing count can only grow (markers become missing).
        let explicit_missing = cells.iter().filter(|c| c.is_none()).count();
        prop_assert!(col.missing_count() >= explicit_missing);
    }

    /// take() then take() composes like a single index composition.
    #[test]
    fn take_composes(
        values in proptest::collection::vec(-1e9f64..1e9, 3..40),
        picks in proptest::collection::vec(0usize..3, 1..10),
    ) {
        let col = Column::from_f64(values.clone());
        let first: Vec<usize> = (0..values.len()).rev().collect();
        let a = col.take(&first);
        let picks: Vec<usize> = picks.iter().map(|p| p % values.len()).collect();
        let b = a.take(&picks);
        let direct: Vec<usize> = picks.iter().map(|&p| first[p]).collect();
        let c = col.take(&direct);
        for i in 0..picks.len() {
            prop_assert_eq!(b.as_f64(i), c.as_f64(i));
        }
    }

    /// Every fold of kfold partitions the row set exactly.
    #[test]
    fn kfold_is_a_partition(n in 4usize..200, k in 2usize..6, seed in 0u64..50) {
        prop_assume!(k <= n);
        let folds = kfold(n, k, seed).unwrap();
        let mut seen = vec![0usize; n];
        for (train, val) in &folds {
            for &i in val {
                seen[i] += 1;
            }
            // Train and validation are disjoint and cover everything.
            let mut all: Vec<usize> = train.iter().chain(val.iter()).copied().collect();
            all.sort_unstable();
            all.dedup();
            prop_assert_eq!(all.len(), n);
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "each row validates exactly once");
    }

    /// Stratified folds keep every class's count within ±1 of ideal.
    #[test]
    fn stratified_kfold_balances_classes(
        class_sizes in proptest::collection::vec(4usize..30, 2..4),
        seed in 0u64..20,
    ) {
        let mut targets = Vec::new();
        for (c, &size) in class_sizes.iter().enumerate() {
            targets.extend(std::iter::repeat_n(c as f64, size));
        }
        let k = 3usize;
        let folds = stratified_kfold(&targets, k, seed).unwrap();
        for (_, val) in &folds {
            for (c, &size) in class_sizes.iter().enumerate() {
                let count = val.iter().filter(|&&i| targets[i] == c as f64).count();
                let ideal = size as f64 / k as f64;
                prop_assert!(
                    (count as f64 - ideal).abs() <= 1.0,
                    "class {c}: {count} in fold vs ideal {ideal}"
                );
            }
        }
    }

    /// Column statistics quantiles are sorted and bounded by min/max.
    #[test]
    fn stats_quantiles_are_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
        let stats = ColumnStats::compute(&Column::from_f64(values));
        for w in stats.quantiles.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert!(stats.min <= stats.quantiles[0]);
        prop_assert!(stats.quantiles[4] <= stats.max);
        prop_assert!(stats.std >= 0.0);
    }

    /// Dataset::take preserves the task and class labels.
    #[test]
    fn dataset_take_preserves_metadata(
        n in 4usize..50,
        picks in proptest::collection::vec(0usize..4, 1..8),
    ) {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i % 3) as f64).collect();
        let f = DataFrame::from_columns(vec![("x".to_string(), Column::from_f64(x))]).unwrap();
        let ds = Dataset::new("p", f, y.clone(), Task::MultiClass(3)).unwrap();
        let picks: Vec<usize> = picks.iter().map(|p| p % n).collect();
        let sub = ds.take(&picks);
        prop_assert_eq!(sub.task, ds.task);
        prop_assert_eq!(sub.num_rows(), picks.len());
        for (j, &i) in picks.iter().enumerate() {
            prop_assert_eq!(sub.target[j], y[i]);
        }
    }
}
