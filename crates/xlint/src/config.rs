//! Per-crate rule configuration.
//!
//! The house configuration ([`WorkspaceConfig::house`]) is compiled in so
//! `kgpip-cli xlint` needs no external file, but a JSON override can be
//! loaded with `--config` (the format is this module's serde shape) —
//! useful for experiments and for the fixture tests.

use crate::diag::Rule;
use serde::{Deserialize, Serialize};

/// The rule set applied to one crate (one `src/` tree).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrateRules {
    /// Workspace-relative directory whose `src/` is scanned (`"."` means
    /// the root package's own `src/`).
    pub path: String,
    /// Kebab-case names of the rules enforced in this crate.
    pub rules: Vec<String>,
    /// For `panic-in-serve-path`: restrict the rule to these files
    /// (paths relative to the crate dir). Empty means the whole crate is
    /// in scope.
    #[serde(default)]
    pub panic_files: Vec<String>,
}

impl CrateRules {
    /// The parsed rule set, ignoring names that fail to parse (configs
    /// are validated separately via [`WorkspaceConfig::unknown_rules`]).
    pub fn parsed_rules(&self) -> Vec<Rule> {
        self.rules
            .iter()
            .filter_map(|n| Rule::from_name(n))
            .collect()
    }

    /// True when `file` (crate-relative) is in scope for
    /// `panic-in-serve-path`.
    pub fn panic_file_in_scope(&self, file: &str) -> bool {
        self.panic_files.is_empty() || self.panic_files.iter().any(|f| f == file)
    }
}

/// The full workspace lint configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkspaceConfig {
    /// Identifiers whose presence in a function body marks its pool usage
    /// as clamped (`effective_parallelism`, `worker_pool`). A function
    /// using rayon without mentioning any of these trips
    /// `unclamped-rayon`.
    pub pool_sanctioned: Vec<String>,
    /// One entry per scanned crate, in scan order.
    pub crates: Vec<CrateRules>,
}

/// Rules enforced in every compute crate: anything between the data frame
/// and the trained artifact must be bit-identical at any worker count,
/// free of wall-clock reads, and free of ambient randomness.
const COMPUTE: &[&str] = &[
    "nondeterministic-iteration",
    "unclamped-rayon",
    "wall-clock-in-compute",
    "unseeded-rng",
    "missing-crate-guards",
];

impl WorkspaceConfig {
    /// The compiled-in house configuration for this workspace.
    pub fn house() -> WorkspaceConfig {
        let compute = |path: &str| CrateRules {
            path: path.to_string(),
            rules: COMPUTE.iter().map(|s| s.to_string()).collect(),
            panic_files: Vec::new(),
        };
        let mut crates = vec![
            compute("crates/tabular"),
            compute("crates/learners"),
            compute("crates/nn"),
            compute("crates/codegraph"),
            compute("crates/graphgen"),
            compute("crates/hpo"),
            compute("crates/benchdata"),
            compute("crates/xlint"),
        ];
        // kgpip-embeddings: compute rules plus the serve-path panic rule
        // on the similarity tiers a serving process runs — the HNSW
        // graph, the mapped (`KGVI`) catalog, and the product-quantized
        // store its scans read. A malformed index file or a query of any
        // shape must surface as a Result or an empty answer, never a
        // panic in a worker.
        let mut embeddings = compute("crates/embeddings");
        embeddings.rules.push("panic-in-serve-path".to_string());
        embeddings.panic_files = vec![
            "src/hnsw.rs".to_string(),
            "src/mapped.rs".to_string(),
            "src/pq.rs".to_string(),
        ];
        crates.push(embeddings);
        // kgpip-core: compute rules plus the serve-path panic rule on the
        // artifact read/predict path (training may still assert).
        let mut core = compute("crates/core");
        core.rules.push("panic-in-serve-path".to_string());
        core.panic_files = vec![
            "src/artifact.rs".to_string(),
            "src/predict.rs".to_string(),
            "src/snapshot.rs".to_string(),
        ];
        crates.push(core);
        // kgpip-serve: every file is a serving path.
        let mut serve = compute("crates/serve");
        serve.rules.push("panic-in-serve-path".to_string());
        crates.push(serve);
        // kgpip-bench measures wall-clock by design and iterates its own
        // reporting maps; it still must not use ambient randomness.
        crates.push(CrateRules {
            path: "crates/bench".to_string(),
            rules: vec![
                "unseeded-rng".to_string(),
                "missing-crate-guards".to_string(),
            ],
            panic_files: Vec::new(),
        });
        // The root facade + CLI: no wall-clock rule (the CLI prints
        // timings for humans) but determinism rules still apply.
        crates.push(CrateRules {
            path: ".".to_string(),
            rules: vec![
                "nondeterministic-iteration".to_string(),
                "unclamped-rayon".to_string(),
                "unseeded-rng".to_string(),
                "missing-crate-guards".to_string(),
            ],
            panic_files: Vec::new(),
        });
        WorkspaceConfig {
            pool_sanctioned: vec![
                "effective_parallelism".to_string(),
                "worker_pool".to_string(),
            ],
            crates,
        }
    }

    /// Parses a JSON config override.
    pub fn from_json(json: &str) -> Result<WorkspaceConfig, String> {
        serde_json::from_str(json).map_err(|e| format!("bad xlint config: {e}"))
    }

    /// Rule names appearing in the config that xlint does not know —
    /// non-empty means the config is rejected before any file is scanned.
    pub fn unknown_rules(&self) -> Vec<String> {
        let mut unknown = Vec::new();
        for c in &self.crates {
            for name in &c.rules {
                if Rule::from_name(name).is_none() && !unknown.contains(name) {
                    unknown.push(name.clone());
                }
            }
        }
        unknown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn house_config_is_valid() {
        let cfg = WorkspaceConfig::house();
        assert!(cfg.unknown_rules().is_empty());
        assert!(cfg.crates.len() >= 12, "every workspace crate is covered");
        let serve = cfg
            .crates
            .iter()
            .find(|c| c.path == "crates/serve")
            .unwrap();
        assert!(serve.parsed_rules().contains(&Rule::PanicInServePath));
        assert!(serve.panic_file_in_scope("src/anything.rs"));
        let core = cfg.crates.iter().find(|c| c.path == "crates/core").unwrap();
        assert!(core.panic_file_in_scope("src/predict.rs"));
        assert!(!core.panic_file_in_scope("src/train.rs"));
        // The chunked engine (stream.rs/chunk.rs) rides the tabular
        // crate's full compute rule set: its rayon pool must be clamped
        // and its accumulator merges must iterate deterministically.
        let tabular = cfg
            .crates
            .iter()
            .find(|c| c.path == "crates/tabular")
            .unwrap();
        assert!(tabular.parsed_rules().contains(&Rule::UnclampedRayon));
        assert!(tabular
            .parsed_rules()
            .contains(&Rule::NondeterministicIteration));
        let embeddings = cfg
            .crates
            .iter()
            .find(|c| c.path == "crates/embeddings")
            .unwrap();
        assert!(embeddings.parsed_rules().contains(&Rule::PanicInServePath));
        assert!(embeddings.panic_file_in_scope("src/hnsw.rs"));
        assert!(embeddings.panic_file_in_scope("src/mapped.rs"));
        assert!(embeddings.panic_file_in_scope("src/pq.rs"));
        assert!(!embeddings.panic_file_in_scope("src/tsne.rs"));
    }

    #[test]
    fn json_round_trip() {
        let cfg = WorkspaceConfig::house();
        let json = serde_json::to_string(&cfg).unwrap();
        let back = WorkspaceConfig::from_json(&json).unwrap();
        assert_eq!(back.crates.len(), cfg.crates.len());
        assert_eq!(back.pool_sanctioned, cfg.pool_sanctioned);
    }

    #[test]
    fn unknown_rules_are_reported() {
        let mut cfg = WorkspaceConfig::house();
        cfg.crates[0].rules.push("made-up-rule".to_string());
        assert_eq!(cfg.unknown_rules(), vec!["made-up-rule".to_string()]);
    }
}
