//! Rule identifiers and span-carrying lint diagnostics.
//!
//! Mirrors the `kgpip-codegraph` diagnostic style (`error[pass] line:col:
//! message`) but adds the file path — xlint walks the whole workspace,
//! not a single script — and the kebab-case rule name in place of the
//! analyzer pass.

use kgpip_codegraph::{Severity, Span};
use serde::{Deserialize, Serialize};

/// Every rule xlint knows. The first six are configurable per crate; the
/// two `*Suppression` meta-rules are always on — they police the allow
/// comments themselves and cannot be suppressed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Rule {
    /// HashMap/HashSet iteration feeding arithmetic, ordering, or
    /// serialization in a compute crate (violates bit-identity).
    NondeterministicIteration,
    /// Rayon pool construction or `par_iter` in a function that never
    /// consults `effective_parallelism()` (or another sanctioned clamp).
    UnclampedRayon,
    /// `Instant::now` / `SystemTime` outside the stats/bench allowlist.
    WallClockInCompute,
    /// `thread_rng` / `from_entropy` / `OsRng` — unseeded randomness.
    UnseededRng,
    /// `unwrap` / `expect` / `panic!` / slice indexing in the serving
    /// path, which must return typed `KgpipError`s instead.
    PanicInServePath,
    /// A library crate missing `#![forbid(unsafe_code)]` or
    /// `#![warn(missing_docs)]` at the top of its `lib.rs`.
    MissingCrateGuards,
    /// An `xlint: allow(...)` comment with a missing justification or an
    /// unknown rule name. Always on.
    BadSuppression,
    /// An `xlint: allow(...)` comment that matched no diagnostic — stale
    /// suppressions must be deleted, not accumulated. Always on.
    UnusedSuppression,
}

/// The six crate-configurable rules, in canonical order.
pub const CONFIGURABLE_RULES: [Rule; 6] = [
    Rule::NondeterministicIteration,
    Rule::UnclampedRayon,
    Rule::WallClockInCompute,
    Rule::UnseededRng,
    Rule::PanicInServePath,
    Rule::MissingCrateGuards,
];

impl Rule {
    /// The kebab-case name used in config files, `allow(...)` comments,
    /// and rendered diagnostics.
    pub fn name(&self) -> &'static str {
        match self {
            Rule::NondeterministicIteration => "nondeterministic-iteration",
            Rule::UnclampedRayon => "unclamped-rayon",
            Rule::WallClockInCompute => "wall-clock-in-compute",
            Rule::UnseededRng => "unseeded-rng",
            Rule::PanicInServePath => "panic-in-serve-path",
            Rule::MissingCrateGuards => "missing-crate-guards",
            Rule::BadSuppression => "bad-suppression",
            Rule::UnusedSuppression => "unused-suppression",
        }
    }

    /// Parses a kebab-case rule name. Only the six configurable rules are
    /// accepted — the meta-rules cannot be named in configs or allows.
    pub fn from_name(name: &str) -> Option<Rule> {
        CONFIGURABLE_RULES
            .iter()
            .copied()
            .find(|r| r.name() == name)
    }
}

impl std::fmt::Display for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding, anchored to a file + span.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintDiagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// Location within the file.
    pub span: Span,
    /// Severity (every house rule is an error; there are no warnings).
    pub severity: Severity,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable description of the violation.
    pub message: String,
}

impl LintDiagnostic {
    /// Builds an error-severity diagnostic (the only severity the house
    /// rules emit — a violation either exists or it does not).
    pub fn error(file: &str, span: Span, rule: Rule, message: impl Into<String>) -> LintDiagnostic {
        LintDiagnostic {
            file: file.to_string(),
            span,
            severity: Severity::Error,
            rule,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for LintDiagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}[{}] {}:{}: {}",
            self.severity, self.rule, self.file, self.span, self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for rule in CONFIGURABLE_RULES {
            assert_eq!(Rule::from_name(rule.name()), Some(rule));
        }
        assert_eq!(Rule::from_name("bad-suppression"), None);
        assert_eq!(Rule::from_name("nonsense"), None);
    }

    #[test]
    fn display_matches_codegraph_style() {
        let d = LintDiagnostic::error(
            "crates/core/src/train.rs",
            Span::new(10, 15, 322, 19),
            Rule::NondeterministicIteration,
            "HashMap::values() feeds arithmetic",
        );
        assert_eq!(
            d.to_string(),
            "error[nondeterministic-iteration] crates/core/src/train.rs:322:19: \
             HashMap::values() feeds arithmetic"
        );
    }
}
