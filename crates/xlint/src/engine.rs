//! The lint driver: single files for fixtures, the whole workspace for
//! the `kgpip-cli xlint` gate.
//!
//! Per file the pipeline is lex → scan suppressions (from the comment
//! tokens) → build the [`FileContext`] (comments stripped, test regions
//! masked) → run the crate's configured rules → apply suppressions.
//! Surviving diagnostics plus the two meta-rules (`bad-suppression`,
//! `unused-suppression`) are what the gate counts; suppressed
//! diagnostics are reported with their justifications so the audit trail
//! is visible in `--json` output.

use crate::config::{CrateRules, WorkspaceConfig};
use crate::diag::LintDiagnostic;
use crate::lexer::lex;
use crate::rules::{run_rules, FileContext};
use crate::suppress;
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// A diagnostic silenced by a justified allow — kept in the report so
/// reviewers can audit every justification without grepping the tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SuppressedDiagnostic {
    /// The silenced finding.
    pub diagnostic: LintDiagnostic,
    /// The mandatory justification text from the allow comment.
    pub justification: String,
}

/// The outcome of linting one source file.
#[derive(Debug, Clone, Default)]
pub struct FileOutcome {
    /// Diagnostics that survive suppression (these fail the gate).
    pub diagnostics: Vec<LintDiagnostic>,
    /// Diagnostics silenced by a justified allow.
    pub suppressed: Vec<SuppressedDiagnostic>,
}

/// Lints one source string under one crate's rule set. `file` is the
/// label stamped onto diagnostics (workspace-relative in real runs);
/// `crate_file` is the crate-relative path used for `panic_files`
/// scoping and the lib.rs guard check.
pub fn lint_source(
    file: &str,
    crate_file: &str,
    source: &str,
    rules: &CrateRules,
    pool_sanctioned: &[String],
) -> FileOutcome {
    let tokens = lex(source);
    let (sups, mut bad) = suppress::scan(file, &tokens);
    let ctx = FileContext::new(&tokens);
    let raw = run_rules(file, crate_file, &ctx, rules, pool_sanctioned);
    let (mut surviving, suppressed, unused) = suppress::apply(file, raw, &sups);
    surviving.append(&mut bad);
    surviving.extend(unused);
    FileOutcome {
        diagnostics: surviving,
        suppressed: suppressed
            .into_iter()
            .map(|(diagnostic, justification)| SuppressedDiagnostic {
                diagnostic,
                justification,
            })
            .collect(),
    }
}

/// The aggregate result of a workspace lint run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LintReport {
    /// Source files scanned, across every configured crate.
    pub files_scanned: usize,
    /// Unsuppressed diagnostics, in (crate, file, emission) order. Empty
    /// means the gate passes.
    pub diagnostics: Vec<LintDiagnostic>,
    /// Suppressed diagnostics with their justifications.
    pub suppressed: Vec<SuppressedDiagnostic>,
}

impl LintReport {
    /// True when no unsuppressed diagnostic remains — the gate condition.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Human-readable rendering: one diagnostic per line, then a summary
    /// line counting findings, suppressions, and files.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "xlint: {} finding(s), {} suppressed (justified), {} file(s) scanned\n",
            self.diagnostics.len(),
            self.suppressed.len(),
            self.files_scanned
        ));
        out
    }

    /// JSON rendering for tooling (`kgpip-cli xlint --json`).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lint report serializes")
    }
}

/// Lints every configured crate under `root` (the workspace directory).
/// Files are visited in sorted path order within each crate, crates in
/// config order, so output is stable run to run.
pub fn lint_workspace(root: &Path, config: &WorkspaceConfig) -> Result<LintReport, String> {
    let unknown = config.unknown_rules();
    if !unknown.is_empty() {
        return Err(format!(
            "config names unknown rule(s): {}",
            unknown.join(", ")
        ));
    }
    let mut report = LintReport::default();
    for crate_rules in &config.crates {
        let crate_dir = if crate_rules.path == "." {
            root.to_path_buf()
        } else {
            root.join(&crate_rules.path)
        };
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            return Err(format!(
                "configured crate `{}` has no src/ under {}",
                crate_rules.path,
                crate_dir.display()
            ));
        }
        let mut files = Vec::new();
        collect_rs_files(&src_dir, &mut files)?;
        files.sort();
        for path in files {
            let source = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            let crate_file = rel_label(&path, &crate_dir);
            let file_label = if crate_rules.path == "." {
                crate_file.clone()
            } else {
                format!("{}/{}", crate_rules.path, crate_file)
            };
            let outcome = lint_source(
                &file_label,
                &crate_file,
                &source,
                crate_rules,
                &config.pool_sanctioned,
            );
            report.files_scanned += 1;
            report.diagnostics.extend(outcome.diagnostics);
            report.suppressed.extend(outcome.suppressed);
        }
    }
    Ok(report)
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading dir {}: {e}", dir.display()))?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// `path` relative to `base`, with forward slashes.
fn rel_label(path: &Path, base: &Path) -> String {
    let rel = path.strip_prefix(base).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Rule;

    fn compute_rules() -> CrateRules {
        CrateRules {
            path: "crates/fake".to_string(),
            rules: vec![
                "nondeterministic-iteration".to_string(),
                "unseeded-rng".to_string(),
            ],
            panic_files: Vec::new(),
        }
    }

    #[test]
    fn suppression_with_justification_silences_and_is_reported() {
        let src = "fn f() {\n\
                   // xlint: allow(unseeded-rng): demo only; value is discarded\n\
                   let r = thread_rng();\n}";
        let out = lint_source("f.rs", "src/f.rs", src, &compute_rules(), &[]);
        assert!(out.diagnostics.is_empty(), "{:?}", out.diagnostics);
        assert_eq!(out.suppressed.len(), 1);
        assert_eq!(out.suppressed[0].diagnostic.rule, Rule::UnseededRng);
        assert!(out.suppressed[0].justification.contains("demo only"));
    }

    #[test]
    fn unjustified_suppression_fails_even_if_it_would_match() {
        let src = "fn f() {\n// xlint: allow(unseeded-rng)\nlet r = thread_rng();\n}";
        let out = lint_source("f.rs", "src/f.rs", src, &compute_rules(), &[]);
        // The malformed allow is itself an error AND the violation it
        // failed to cover still fires.
        assert_eq!(out.diagnostics.len(), 2, "{:?}", out.diagnostics);
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.rule == Rule::BadSuppression));
        assert!(out.diagnostics.iter().any(|d| d.rule == Rule::UnseededRng));
    }

    #[test]
    fn stale_suppression_is_an_error() {
        let src = "// xlint: allow(unseeded-rng): no longer true\nfn f() { g(); }";
        let out = lint_source("f.rs", "src/f.rs", src, &compute_rules(), &[]);
        assert_eq!(out.diagnostics.len(), 1);
        assert_eq!(out.diagnostics[0].rule, Rule::UnusedSuppression);
    }

    #[test]
    fn report_renders_both_forms() {
        let report = LintReport {
            files_scanned: 3,
            diagnostics: vec![LintDiagnostic::error(
                "a.rs",
                kgpip_codegraph::Span::at_line(4),
                Rule::UnseededRng,
                "thread_rng",
            )],
            suppressed: Vec::new(),
        };
        assert!(!report.is_clean());
        let human = report.render_human();
        assert!(human.contains("error[unseeded-rng] a.rs:4:1"));
        assert!(human.contains("1 finding(s)"));
        let back: LintReport = serde_json::from_str(&report.to_json()).unwrap();
        assert_eq!(back.files_scanned, 3);
        assert_eq!(back.diagnostics[0].file, "a.rs");
        assert_eq!(back.diagnostics[0].rule, Rule::UnseededRng);
    }
}
