//! A hand-rolled Rust lexer: just enough tokenization for lint rules.
//!
//! The rule engine needs to see identifiers, punctuation, and comments
//! with accurate [`Span`]s — and crucially it must *not* see into string
//! literals (rule patterns like `HashMap` appear as string data in this
//! very crate) or into comments (except the suppression scanner, which
//! reads them deliberately). This lexer handles the full Rust surface the
//! workspace uses: nested block comments, raw strings with `#` fences,
//! byte/char literals, lifetimes, raw identifiers, and numeric literals
//! with suffixes. It never fails: unexpected bytes become single-character
//! punctuation tokens, so the rules always get a token stream to walk.

use kgpip_codegraph::Span;

/// What a token is. Rules match mostly on [`TokenKind::Ident`] and
/// [`TokenKind::Punct`]; the suppression scanner reads
/// [`TokenKind::LineComment`] / [`TokenKind::BlockComment`] text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `HashMap`, `unwrap`, …).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A numeric literal, suffix included (`1_000u64`, `0.5`, `0xff`).
    Number,
    /// A string, raw-string, byte-string, or char literal.
    Literal,
    /// A `// …` comment (doc comments included), text without newline.
    LineComment,
    /// A `/* … */` comment (possibly nested), full text.
    BlockComment,
    /// A single punctuation character (`.`, `::` arrives as two tokens).
    Punct,
}

/// One lexed token: kind, source text, and the span locating it.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification used by the rule matchers.
    pub kind: TokenKind,
    /// The exact source slice.
    pub text: String,
    /// Byte range + 1-based line/column of the token start.
    pub span: Span,
}

impl Token {
    /// True when this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == name
    }

    /// True when this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }

    /// True for line or block comments.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// Tokenizes Rust source. Total: every byte of input is consumed and the
/// lexer never panics on malformed input (stray bytes become punctuation).
pub fn lex(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer<'s> {
    src: &'s [u8],
    source: &'s str,
    pos: usize,
    line: usize,
    col: usize,
    out: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(source: &'s str) -> Lexer<'s> {
        Lexer {
            src: source.as_bytes(),
            source,
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    /// Advances one byte, maintaining the line/column cursor. Column
    /// counts bytes within the line — adequate for diagnostics, exact for
    /// the ASCII source this workspace is written in.
    fn bump(&mut self) {
        if self.peek(0) == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        self.pos += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    fn emit(&mut self, kind: TokenKind, start: usize, line: usize, col: usize) {
        self.out.push(Token {
            kind,
            text: self.source[start..self.pos].to_string(),
            span: Span::new(start, self.pos, line, col),
        });
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let (start, line, col) = (self.pos, self.line, self.col);
            let c = self.peek(0);
            match c {
                b' ' | b'\t' | b'\r' | b'\n' => self.bump(),
                b'/' if self.peek(1) == b'/' => {
                    while self.pos < self.src.len() && self.peek(0) != b'\n' {
                        self.bump();
                    }
                    self.emit(TokenKind::LineComment, start, line, col);
                }
                b'/' if self.peek(1) == b'*' => {
                    self.bump_n(2);
                    let mut depth = 1usize;
                    while self.pos < self.src.len() && depth > 0 {
                        if self.peek(0) == b'/' && self.peek(1) == b'*' {
                            depth += 1;
                            self.bump_n(2);
                        } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                            depth -= 1;
                            self.bump_n(2);
                        } else {
                            self.bump();
                        }
                    }
                    self.emit(TokenKind::BlockComment, start, line, col);
                }
                b'"' => {
                    self.string_literal();
                    self.emit(TokenKind::Literal, start, line, col);
                }
                b'r' | b'b' if self.raw_or_byte_prefix() => {
                    self.emit(TokenKind::Literal, start, line, col);
                }
                b'r' if self.peek(1) == b'#' && is_ident_start(self.peek(2)) => {
                    // Raw identifier `r#type`.
                    self.bump_n(2);
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                b'\'' => {
                    // Lifetime (`'a` not followed by a closing quote) or
                    // char literal (everything else).
                    if is_ident_start(self.peek(1)) && self.peek(2) != b'\'' {
                        self.bump();
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                        self.emit(TokenKind::Lifetime, start, line, col);
                    } else {
                        self.bump();
                        while self.pos < self.src.len() {
                            match self.peek(0) {
                                b'\\' => self.bump_n(2),
                                b'\'' => {
                                    self.bump();
                                    break;
                                }
                                _ => self.bump(),
                            }
                        }
                        self.emit(TokenKind::Literal, start, line, col);
                    }
                }
                c if is_ident_start(c) => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    self.emit(TokenKind::Ident, start, line, col);
                }
                b'0'..=b'9' => {
                    while is_ident_continue(self.peek(0)) {
                        self.bump();
                    }
                    // A fractional part: `.` followed by a digit (never
                    // consume `..` range syntax or `.method()` calls).
                    if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
                        self.bump();
                        while is_ident_continue(self.peek(0)) {
                            self.bump();
                        }
                    }
                    self.emit(TokenKind::Number, start, line, col);
                }
                _ => {
                    self.bump();
                    self.emit(TokenKind::Punct, start, line, col);
                }
            }
        }
        self.out
    }

    /// Consumes `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, or `b'…'` when the
    /// cursor sits on such a prefix; returns false (consuming nothing)
    /// otherwise.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut ahead = 0usize;
        let mut raw = false;
        if self.peek(ahead) == b'b' {
            ahead += 1;
        }
        if self.peek(ahead) == b'r' {
            raw = true;
            ahead += 1;
        }
        let mut fences = 0usize;
        if raw {
            while self.peek(ahead) == b'#' {
                fences += 1;
                ahead += 1;
            }
        }
        match self.peek(ahead) {
            b'"' => {
                self.bump_n(ahead + 1);
                if raw {
                    // Scan for `"` followed by `fences` hashes.
                    'outer: while self.pos < self.src.len() {
                        if self.peek(0) == b'"' {
                            for f in 0..fences {
                                if self.peek(1 + f) != b'#' {
                                    self.bump();
                                    continue 'outer;
                                }
                            }
                            self.bump_n(1 + fences);
                            break;
                        }
                        self.bump();
                    }
                } else {
                    self.string_tail();
                }
                true
            }
            b'\'' if !raw && ahead == 1 => {
                // Byte literal `b'x'`.
                self.bump_n(2);
                while self.pos < self.src.len() {
                    match self.peek(0) {
                        b'\\' => self.bump_n(2),
                        b'\'' => {
                            self.bump();
                            break;
                        }
                        _ => self.bump(),
                    }
                }
                true
            }
            _ => false,
        }
    }

    /// Consumes a `"…"` literal starting at the opening quote.
    fn string_literal(&mut self) {
        self.bump();
        self.string_tail();
    }

    /// Consumes up to and including the closing `"`, honoring escapes.
    fn string_tail(&mut self) {
        while self.pos < self.src.len() {
            match self.peek(0) {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_and_numbers() {
        let toks = kinds("let x = map.values();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".into()));
        assert_eq!(toks[3], (TokenKind::Ident, "map".into()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[5], (TokenKind::Ident, "values".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "HashMap.values() thread_rng";"#);
        assert!(toks
            .iter()
            .all(|(_, t)| t != "HashMap" && t != "thread_rng"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::Literal));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r##"let s = r#"Instant::now() "quoted" inside"#; x"##);
        assert!(toks.iter().all(|(_, t)| t != "Instant"));
        assert!(toks.iter().any(|(_, t)| t == "x"), "lexing continues after");
    }

    #[test]
    fn comments_are_captured_whole() {
        let toks = lex("a // xlint: allow(unseeded-rng): test data only\nb");
        assert_eq!(toks[1].kind, TokenKind::LineComment);
        assert!(toks[1].text.contains("allow(unseeded-rng)"));
        assert_eq!(toks[1].span.line, 1);
        assert_eq!(toks[2].span.line, 2);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1].1, "x");
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'y'; let n = '\\n'; }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'y'"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("0..5 1.5 2.max(3) 0xffu64");
        let texts: Vec<&str> = toks.iter().map(|(_, t)| t.as_str()).collect();
        assert!(texts.contains(&"0"));
        assert!(texts.contains(&"5"));
        assert!(texts.contains(&"1.5"));
        assert!(texts.contains(&"max"));
        assert!(texts.contains(&"0xffu64"));
    }

    #[test]
    fn byte_and_raw_idents() {
        let toks = kinds(r#"b"KGPS" b'\n' r#type"#);
        assert_eq!(toks[0].0, TokenKind::Literal);
        assert_eq!(toks[1].0, TokenKind::Literal);
        assert_eq!(toks[2], (TokenKind::Ident, "r#type".into()));
    }

    #[test]
    fn spans_locate_tokens() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].span.line, toks[0].span.col), (1, 1));
        assert_eq!((toks[1].span.line, toks[1].span.col), (2, 3));
        assert_eq!(&"ab\n  cd"[toks[1].span.start..toks[1].span.end], "cd");
    }
}
