//! kgpip-xlint: a workspace static-analysis pass that enforces the
//! determinism & serving house invariants.
//!
//! The workspace's north-star invariant — parallelism and caches may
//! change what a stage *costs*, never what it *computes* — cannot be
//! checked by the type system, and clippy has no notion of "this crate
//! is a compute stage". This crate closes the gap with a hand-rolled
//! Rust lexer ([`lexer`]) and six token-stream rules ([`rules`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `nondeterministic-iteration` | hash-container iteration must not feed arithmetic/ordering/serialization |
//! | `unclamped-rayon` | every rayon fan-out consults `effective_parallelism()` |
//! | `wall-clock-in-compute` | clock reads confined to audited stats sites |
//! | `unseeded-rng` | all randomness flows from an explicit u64 seed |
//! | `panic-in-serve-path` | the serving path returns typed errors, never panics |
//! | `missing-crate-guards` | every lib.rs carries `#![forbid(unsafe_code)]` + `#![warn(missing_docs)]` |
//!
//! False positives are silenced in-source with a **justified** allow —
//! `// xlint: allow(<rule>): <why this is sound>` — covering its own
//! line and the next ([`suppress`]). Justifications are mandatory and
//! audited: a bare allow, an unknown rule name, or a stale allow that no
//! longer matches anything are all themselves errors.
//!
//! Entry points: [`lint_source`] for one file (fixtures, tests) and
//! [`lint_workspace`] for the whole tree (the `kgpip-cli xlint` gate,
//! wired into `scripts/check.sh`). Diagnostics reuse the
//! `kgpip-codegraph` span/severity machinery and render in its style:
//! `error[unclamped-rayon] crates/hpo/src/trial.rs:118:8: …`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod engine;
pub mod lexer;
pub mod rules;
pub mod suppress;

pub use config::{CrateRules, WorkspaceConfig};
pub use diag::{LintDiagnostic, Rule, CONFIGURABLE_RULES};
pub use engine::{lint_source, lint_workspace, FileOutcome, LintReport, SuppressedDiagnostic};
pub use suppress::Suppression;
