//! The six house rules, implemented as token-stream heuristics.
//!
//! Each rule walks the comment-stripped token stream of one file (with
//! `#[cfg(test)]` regions masked out — tests may time, randomize, and
//! unwrap freely) and emits [`LintDiagnostic`]s. The heuristics are
//! deliberately simple and slightly over-eager: a false positive costs
//! one justified `xlint: allow` comment, which doubles as documentation
//! of *why* the site is sound; a false negative costs a nondeterminism
//! bug that survives to production.

use crate::config::CrateRules;
use crate::diag::{LintDiagnostic, Rule};
use crate::lexer::{Token, TokenKind};
use kgpip_codegraph::Span;

/// Methods that iterate a hash container in arbitrary order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "drain",
    "retain",
    "par_iter",
];

/// Idents that, appearing in the same statement as a hash iteration,
/// make its order irrelevant: the items are re-sorted, rehomed into an
/// ordered container, or folded through an order-insensitive predicate.
/// `sum`/`min_by_key`/`max_by_key` are deliberately absent — float
/// summation is order-sensitive and min/max need unique keys to be
/// well-defined, so those sites must be fixed or individually justified.
const NEUTRALIZERS: &[&str] = &[
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "count",
    "any",
    "all",
];

/// Idents that put a function into rayon territory.
const RAYON_TRIGGERS: &[&str] = &[
    "par_iter",
    "into_par_iter",
    "par_iter_mut",
    "par_chunks",
    "par_bridge",
    "par_extend",
    "ThreadPoolBuilder",
];

/// Panicking macros (flagged when followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// A function found by brace-matching: its name and its body as a token
/// index range (exclusive of the braces).
#[derive(Debug, Clone)]
struct Function {
    name: String,
    name_span: Span,
    body: std::ops::Range<usize>,
}

/// Pre-computed per-file state shared by every rule: the comment-stripped
/// token stream, a test-region mask, and the function map.
pub struct FileContext {
    code: Vec<Token>,
    in_test: Vec<bool>,
    functions: Vec<Function>,
}

impl FileContext {
    /// Builds the context from a full lexed token stream (comments
    /// included — they are stripped here, after the suppression scanner
    /// has had its chance at them).
    pub fn new(tokens: &[Token]) -> FileContext {
        let code: Vec<Token> = tokens.iter().filter(|t| !t.is_comment()).cloned().collect();
        let in_test = mask_test_regions(&code);
        let functions = find_functions(&code, &in_test);
        FileContext {
            code,
            in_test,
            functions,
        }
    }

    /// True when the token at `i` sits inside a `#[cfg(test)]` item.
    fn is_test(&self, i: usize) -> bool {
        self.in_test.get(i).copied().unwrap_or(false)
    }

    fn tok(&self, i: usize) -> Option<&Token> {
        self.code.get(i)
    }
}

/// Runs the configured rules over one file. `crate_file` is the path
/// relative to the crate dir (for `panic_files` scoping); `file` is the
/// workspace-relative path stamped onto diagnostics.
pub fn run_rules(
    file: &str,
    crate_file: &str,
    ctx: &FileContext,
    rules: &CrateRules,
    pool_sanctioned: &[String],
) -> Vec<LintDiagnostic> {
    let mut out = Vec::new();
    for rule in rules.parsed_rules() {
        match rule {
            Rule::NondeterministicIteration => nondeterministic_iteration(file, ctx, &mut out),
            Rule::UnclampedRayon => unclamped_rayon(file, ctx, pool_sanctioned, &mut out),
            Rule::WallClockInCompute => wall_clock(file, ctx, &mut out),
            Rule::UnseededRng => unseeded_rng(file, ctx, &mut out),
            Rule::PanicInServePath => {
                if rules.panic_file_in_scope(crate_file) {
                    panic_in_serve_path(file, ctx, &mut out);
                }
            }
            Rule::MissingCrateGuards => {
                if crate_file == "src/lib.rs" {
                    missing_crate_guards(file, ctx, &mut out);
                }
            }
            Rule::BadSuppression | Rule::UnusedSuppression => {}
        }
    }
    out
}

/// Matches `pattern` against the code tokens starting at `i`. Pattern
/// items that are a single non-identifier character match puncts; all
/// other items match identifiers.
fn seq_matches(code: &[Token], i: usize, pattern: &[&str]) -> bool {
    pattern.iter().enumerate().all(|(k, p)| {
        let Some(t) = code.get(i + k) else {
            return false;
        };
        let mut chars = p.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) if !c.is_ascii_alphanumeric() && c != '_' => t.is_punct(c),
            _ => t.is_ident(p),
        }
    })
}

/// Marks every token belonging to a `#[cfg(test)]`-gated item.
fn mask_test_regions(code: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if seq_matches(code, i, &["#", "[", "cfg", "(", "test", ")", "]"]) {
            let mut j = i + 7;
            // Skip any further attributes on the same item.
            while seq_matches(code, j, &["#", "["]) {
                let mut depth = 0i32;
                while let Some(t) = code.get(j) {
                    if t.is_punct('[') {
                        depth += 1;
                    } else if t.is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            }
            // The item body: everything to the matching `}` of its first
            // top-level brace (or the terminating `;` for brace-less
            // items such as `#[cfg(test)] use …;`).
            let mut depth = 0i32;
            while let Some(t) = code.get(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    break;
                }
                j += 1;
            }
            for m in &mut mask[i..(j + 1).min(code.len())] {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// Finds every `fn name … { body }`, brace-matching past generics,
/// argument lists, and return types. Functions inside test regions are
/// not recorded (no rule wants them).
fn find_functions(code: &[Token], in_test: &[bool]) -> Vec<Function> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 1 < code.len() {
        if code[i].is_ident("fn")
            && code[i + 1].kind == TokenKind::Ident
            && !in_test.get(i).copied().unwrap_or(false)
        {
            let name = code[i + 1].text.clone();
            let name_span = code[i + 1].span;
            // Find the body `{` at paren/bracket depth 0 (a `;` first
            // means a body-less trait method).
            let mut j = i + 2;
            let mut depth = 0i32;
            let mut open = None;
            while let Some(t) = code.get(j) {
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if depth == 0 && t.is_punct('{') {
                    open = Some(j);
                    break;
                } else if depth == 0 && t.is_punct(';') {
                    break;
                }
                j += 1;
            }
            if let Some(open) = open {
                let mut j = open;
                let mut braces = 0i32;
                while let Some(t) = code.get(j) {
                    if t.is_punct('{') {
                        braces += 1;
                    } else if t.is_punct('}') {
                        braces -= 1;
                        if braces == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                out.push(Function {
                    name,
                    name_span,
                    body: (open + 1)..j.min(code.len()),
                });
                i = open + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// nondeterministic-iteration: hash containers iterate in arbitrary
/// order, so feeding their iteration into arithmetic, ordering, or
/// serialization breaks the bit-identity invariant.
fn nondeterministic_iteration(file: &str, ctx: &FileContext, out: &mut Vec<LintDiagnostic>) {
    let code = &ctx.code;
    // Pass 1: names bound or typed as HashMap/HashSet.
    let mut tracked: Vec<String> = Vec::new();
    let mut track = |name: &str| {
        if !tracked.iter().any(|t| t == name) {
            tracked.push(name.to_string());
        }
    };
    for i in 0..code.len() {
        if ctx.is_test(i) {
            continue;
        }
        // `name : [&] [mut] HashMap` — struct fields, fn params, lets
        // with type ascription.
        if code[i].kind == TokenKind::Ident && seq_matches(code, i + 1, &[":"]) {
            let mut j = i + 2;
            while code
                .get(j)
                .map(|t| t.is_punct('&') || t.is_ident("mut") || t.kind == TokenKind::Lifetime)
                .unwrap_or(false)
            {
                j += 1;
            }
            if code
                .get(j)
                .map(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
                .unwrap_or(false)
            {
                track(&code[i].text);
            }
        }
        // `let [mut] name = HashMap::…` / `HashSet::…`.
        if code[i].is_ident("let") {
            let mut j = i + 1;
            if code.get(j).map(|t| t.is_ident("mut")).unwrap_or(false) {
                j += 1;
            }
            if code
                .get(j)
                .map(|t| t.kind == TokenKind::Ident)
                .unwrap_or(false)
                && seq_matches(code, j + 1, &["="])
                && code
                    .get(j + 2)
                    .map(|t| t.is_ident("HashMap") || t.is_ident("HashSet"))
                    .unwrap_or(false)
            {
                track(&code[j].text);
            }
        }
    }
    if tracked.is_empty() {
        return;
    }
    // Pass 2: iteration sites on tracked names.
    for i in 0..code.len() {
        if ctx.is_test(i) || code[i].kind != TokenKind::Ident {
            continue;
        }
        if !tracked.iter().any(|t| *t == code[i].text) {
            continue;
        }
        // `tracked . method (` with an iterating method.
        let method_site = seq_matches(code, i + 1, &["."])
            && ctx
                .tok(i + 2)
                .map(|t| ITER_METHODS.contains(&t.text.as_str()))
                .unwrap_or(false);
        // `for pat in &tracked {` / `for pat in tracked {`.
        let prev = i.checked_sub(1).and_then(|p| ctx.tok(p));
        let prev2 = i.checked_sub(2).and_then(|p| ctx.tok(p));
        let for_site = ctx.tok(i + 1).map(|t| t.is_punct('{')).unwrap_or(false)
            && (prev.map(|t| t.is_ident("in")).unwrap_or(false)
                || (prev.map(|t| t.is_punct('&')).unwrap_or(false)
                    && prev2.map(|t| t.is_ident("in")).unwrap_or(false)));
        if !(method_site || for_site) {
            continue;
        }
        if statement_neutralized(ctx, i) {
            continue;
        }
        let what = if method_site {
            format!("`{}.{}()`", code[i].text, code[i + 2].text)
        } else {
            format!("`for … in &{}`", code[i].text)
        };
        out.push(LintDiagnostic::error(
            file,
            code[i].span,
            Rule::NondeterministicIteration,
            format!(
                "{what} iterates a hash container in arbitrary order; sort the items, \
                 iterate the catalog order instead, or justify with an allow"
            ),
        ));
    }
}

/// True when the statement around token `i` re-sorts, rehomes, or
/// order-insensitively folds the iterated items.
fn statement_neutralized(ctx: &FileContext, i: usize) -> bool {
    let code = &ctx.code;
    // Backward to the statement start (`;`, `{`, or `}`), bounded.
    let mut lo = i;
    for _ in 0..200 {
        let Some(p) = lo.checked_sub(1) else { break };
        let t = &code[p];
        if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
            break;
        }
        lo = p;
    }
    // Forward to the statement end: `;` at brace depth 0, or the `}`
    // closing the enclosing block.
    let mut hi = i;
    let mut depth = 0i32;
    for _ in 0..200 {
        let Some(t) = code.get(hi + 1) else { break };
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            break;
        }
        hi += 1;
    }
    code[lo..=hi]
        .iter()
        .any(|t| t.kind == TokenKind::Ident && NEUTRALIZERS.contains(&t.text.as_str()))
}

/// unclamped-rayon: any function that builds pools or fans work out with
/// rayon must consult the canonical worker-count clamp, so worker counts
/// never exceed the host and config plumbing stays in one place.
fn unclamped_rayon(
    file: &str,
    ctx: &FileContext,
    pool_sanctioned: &[String],
    out: &mut Vec<LintDiagnostic>,
) {
    for f in &ctx.functions {
        let body = &ctx.code[f.body.clone()];
        let trigger = body
            .iter()
            .find(|t| t.kind == TokenKind::Ident && RAYON_TRIGGERS.contains(&t.text.as_str()));
        let Some(trigger) = trigger else { continue };
        let clamped = body
            .iter()
            .any(|t| pool_sanctioned.iter().any(|s| t.is_ident(s)));
        if !clamped {
            out.push(LintDiagnostic::error(
                file,
                f.name_span,
                Rule::UnclampedRayon,
                format!(
                    "fn `{}` uses rayon (`{}`) without consulting a sanctioned worker-count \
                     clamp ({}); route the count through effective_parallelism() or justify \
                     with an allow",
                    f.name,
                    trigger.text,
                    pool_sanctioned.join("/"),
                ),
            ));
        }
    }
}

/// wall-clock-in-compute: compute stages may *measure* time for stats,
/// never *consume* it — and the measuring sites are few enough to audit
/// one by one with justified allows.
fn wall_clock(file: &str, ctx: &FileContext, out: &mut Vec<LintDiagnostic>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.is_test(i) {
            continue;
        }
        if seq_matches(code, i, &["Instant", ":", ":", "now"]) {
            out.push(LintDiagnostic::error(
                file,
                code[i].span,
                Rule::WallClockInCompute,
                "`Instant::now()` in a compute crate: wall-clock reads must be confined to \
                 audited stats/bench sites — justify with an allow or move the timing out",
            ));
        } else if code[i].is_ident("SystemTime") {
            out.push(LintDiagnostic::error(
                file,
                code[i].span,
                Rule::WallClockInCompute,
                "`SystemTime` in a compute crate: computed values must not depend on the \
                 clock — justify with an allow or derive the value deterministically",
            ));
        }
    }
}

/// unseeded-rng: every random draw must flow from an explicit u64 seed,
/// or reruns stop being reproducible.
fn unseeded_rng(file: &str, ctx: &FileContext, out: &mut Vec<LintDiagnostic>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.is_test(i) || code[i].kind != TokenKind::Ident {
            continue;
        }
        let ambient = match code[i].text.as_str() {
            "thread_rng" | "from_entropy" | "OsRng" => true,
            "random" => seq_matches(code, i.saturating_sub(3), &["rand", ":", ":"]) && i >= 3,
            _ => false,
        };
        if ambient {
            out.push(LintDiagnostic::error(
                file,
                code[i].span,
                Rule::UnseededRng,
                format!(
                    "`{}` draws ambient entropy: all randomness must flow from an explicit \
                     u64 seed (see kgpip-nn::rng)",
                    code[i].text
                ),
            ));
        }
    }
}

/// panic-in-serve-path: the serving path returns typed `KgpipError`s; a
/// panic in a worker thread poisons shared state and kills throughput.
fn panic_in_serve_path(file: &str, ctx: &FileContext, out: &mut Vec<LintDiagnostic>) {
    let code = &ctx.code;
    for i in 0..code.len() {
        if ctx.is_test(i) {
            continue;
        }
        let t = &code[i];
        if t.kind == TokenKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && seq_matches(code, i + 1, &["("])
        {
            out.push(LintDiagnostic::error(
                file,
                t.span,
                Rule::PanicInServePath,
                format!(
                    "`.{}()` in the serving path: propagate a typed KgpipError instead of \
                     panicking (or justify with an allow if the invariant is locally provable)",
                    t.text
                ),
            ));
        } else if t.kind == TokenKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && seq_matches(code, i + 1, &["!"])
        {
            out.push(LintDiagnostic::error(
                file,
                t.span,
                Rule::PanicInServePath,
                format!(
                    "`{}!` in the serving path: return a typed KgpipError instead",
                    t.text
                ),
            ));
        } else if t.is_punct('[') {
            // Indexing: `expr[…]` where expr ends in an ident, `)`, or
            // `]`. Excludes attributes (`#[`), macro brackets (`vec![`),
            // array literals (prev is `=`/`(`/`,`), and types (prev `:`).
            let indexing = i
                .checked_sub(1)
                .and_then(|p| ctx.tok(p))
                .map(|p| {
                    p.kind == TokenKind::Ident && !p.is_ident("mut")
                        || p.is_punct(')')
                        || p.is_punct(']')
                })
                .unwrap_or(false);
            if indexing {
                out.push(LintDiagnostic::error(
                    file,
                    t.span,
                    Rule::PanicInServePath,
                    "slice/map indexing in the serving path can panic: use .get() and return \
                     a typed KgpipError (or justify with an allow if bounds are locally checked)",
                ));
            }
        }
    }
}

/// missing-crate-guards: every library crate opts into the workspace
/// safety floor at the top of its `lib.rs`.
fn missing_crate_guards(file: &str, ctx: &FileContext, out: &mut Vec<LintDiagnostic>) {
    let code = &ctx.code;
    let has = |ident: &str, arg: &str| {
        (0..code.len()).any(|i| seq_matches(code, i, &["#", "!", "[", ident, "(", arg, ")", "]"]))
    };
    if !has("forbid", "unsafe_code") {
        out.push(LintDiagnostic::error(
            file,
            Span::at_line(1),
            Rule::MissingCrateGuards,
            "lib.rs is missing `#![forbid(unsafe_code)]`: every library crate carries the \
             workspace safety floor",
        ));
    }
    if !has("warn", "missing_docs") {
        out.push(LintDiagnostic::error(
            file,
            Span::at_line(1),
            Rule::MissingCrateGuards,
            "lib.rs is missing `#![warn(missing_docs)]`: every public item in a library \
             crate is documented",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(src: &str, rules: &[&str]) -> Vec<LintDiagnostic> {
        let tokens = lex(src);
        let ctx = FileContext::new(&tokens);
        let cr = CrateRules {
            path: "crates/fake".to_string(),
            rules: rules.iter().map(|s| s.to_string()).collect(),
            panic_files: Vec::new(),
        };
        run_rules(
            "crates/fake/src/lib.rs",
            "src/lib.rs",
            &ctx,
            &cr,
            &[
                "effective_parallelism".to_string(),
                "worker_pool".to_string(),
            ],
        )
    }

    #[test]
    fn hash_iteration_into_sum_fires() {
        let src = "fn f(m: &HashMap<String, f64>) -> f64 { m.values().sum() }";
        let diags = run(src, &["nondeterministic-iteration"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("m.values()"));
    }

    #[test]
    fn sorted_collection_is_neutralized() {
        let src = "fn f(m: &HashMap<String, f64>) -> Vec<String> {\n\
                   let mut keys: Vec<_> = m.keys().cloned().collect();\n\
                   keys.sort_unstable();\n keys }";
        // The sort is in the *next* statement, so the collect statement
        // itself must carry the neutralizer to pass:
        let diags = run(src, &["nondeterministic-iteration"]);
        assert_eq!(
            diags.len(),
            1,
            "sort in a later statement does not neutralize"
        );
        let src2 = "fn f(m: &HashMap<String, f64>) -> BTreeMap<String, f64> {\n\
                    m.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>() }";
        assert!(run(src2, &["nondeterministic-iteration"]).is_empty());
    }

    #[test]
    fn for_loop_over_hash_fires() {
        let src = "fn f(s: HashSet<u32>) { for x in &s { push(x); } }";
        assert_eq!(run(src, &["nondeterministic-iteration"]).len(), 1);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f(m: &HashMap<u32, u32>) -> u32 { m.values().sum() }\n}";
        assert!(run(src, &["nondeterministic-iteration"]).is_empty());
    }

    #[test]
    fn unclamped_rayon_fires_and_clamp_silences() {
        let bad = "fn fan_out(xs: &[u32]) -> Vec<u32> { xs.par_iter().map(|x| x + 1).collect() }";
        let diags = run(bad, &["unclamped-rayon"]);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("fan_out"));
        let good = "fn fan_out(xs: &[u32], p: usize) -> Vec<u32> {\n\
                    let p = effective_parallelism(p);\n\
                    xs.par_iter().map(|x| x + 1).collect() }";
        assert!(run(good, &["unclamped-rayon"]).is_empty());
    }

    #[test]
    fn wall_clock_and_rng_fire() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }";
        assert_eq!(run(src, &["wall-clock-in-compute"]).len(), 1);
        assert_eq!(run(src, &["unseeded-rng"]).len(), 1);
    }

    #[test]
    fn panic_rule_catches_unwrap_macro_and_indexing() {
        let src = "fn f(v: &[u32], m: &M) -> u32 { let a = v[0]; let b = m.get().unwrap(); panic!(\"no\"); }";
        let tokens = lex(src);
        let ctx = FileContext::new(&tokens);
        let cr = CrateRules {
            path: "crates/fake".to_string(),
            rules: vec!["panic-in-serve-path".to_string()],
            panic_files: Vec::new(),
        };
        let diags = run_rules("f.rs", "src/f.rs", &ctx, &cr, &[]);
        assert_eq!(diags.len(), 3, "{diags:?}");
    }

    #[test]
    fn panic_rule_ignores_attrs_macros_and_array_literals() {
        let src = "#[derive(Debug)]\nfn f() { let v = vec![1, 2]; let a = [0u8; 4]; g(&v); }";
        let tokens = lex(src);
        let ctx = FileContext::new(&tokens);
        let cr = CrateRules {
            path: "c".to_string(),
            rules: vec!["panic-in-serve-path".to_string()],
            panic_files: Vec::new(),
        };
        assert!(run_rules("f.rs", "src/f.rs", &ctx, &cr, &[]).is_empty());
    }

    #[test]
    fn panic_scope_respects_panic_files() {
        let src = "fn f(v: &[u32]) -> u32 { v[0] }";
        let tokens = lex(src);
        let ctx = FileContext::new(&tokens);
        let cr = CrateRules {
            path: "c".to_string(),
            rules: vec!["panic-in-serve-path".to_string()],
            panic_files: vec!["src/serve.rs".to_string()],
        };
        assert!(run_rules("f.rs", "src/other.rs", &ctx, &cr, &[]).is_empty());
        assert_eq!(run_rules("f.rs", "src/serve.rs", &ctx, &cr, &[]).len(), 1);
    }

    #[test]
    fn crate_guards_checked_on_lib_rs_only() {
        let bare = "pub fn f() {}";
        let diags = run(bare, &["missing-crate-guards"]);
        assert_eq!(diags.len(), 2);
        let guarded = "#![forbid(unsafe_code)]\n#![warn(missing_docs)]\npub fn f() {}";
        assert!(run(guarded, &["missing-crate-guards"]).is_empty());
        // Not lib.rs → not checked.
        let tokens = lex(bare);
        let ctx = FileContext::new(&tokens);
        let cr = CrateRules {
            path: "c".to_string(),
            rules: vec!["missing-crate-guards".to_string()],
            panic_files: Vec::new(),
        };
        assert!(run_rules("c/src/m.rs", "src/m.rs", &ctx, &cr, &[]).is_empty());
    }

    #[test]
    fn string_literals_never_fire() {
        let src = r#"fn f() -> &'static str { "thread_rng Instant::now HashMap.values()" }"#;
        assert!(run(
            src,
            &[
                "unseeded-rng",
                "wall-clock-in-compute",
                "nondeterministic-iteration"
            ]
        )
        .is_empty());
    }
}
