//! In-source suppressions: `// xlint: allow(<rule>): <justification>`.
//!
//! A suppression silences one rule on its own line and the line directly
//! below it (so it can sit at the end of the offending line or on the
//! line above). The justification is mandatory — an allow without one is
//! itself an error ([`Rule::BadSuppression`]), as is naming a rule xlint
//! does not know. A suppression that silences nothing is also an error
//! ([`Rule::UnusedSuppression`]): stale allows must be deleted, not
//! accumulated, or the audit trail rots.

use crate::diag::{LintDiagnostic, Rule};
use crate::lexer::Token;
use kgpip_codegraph::Span;
use serde::{Deserialize, Serialize};

/// The marker that introduces a suppression inside a comment.
const MARKER: &str = "xlint:";

/// One parsed `allow` comment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Suppression {
    /// The rule being allowed.
    pub rule: Rule,
    /// Why the violation is acceptable (mandatory, audited in review).
    pub justification: String,
    /// 1-based line of the comment; the suppression covers this line and
    /// the next one.
    pub line: usize,
    /// Span of the comment token carrying the allow.
    pub span: Span,
}

impl Suppression {
    /// True when this suppression covers a diagnostic for `rule` at
    /// `line`.
    pub fn covers(&self, rule: Rule, line: usize) -> bool {
        self.rule == rule && (line == self.line || line == self.line + 1)
    }
}

/// Scans comment tokens for suppressions. Returns the well-formed ones
/// plus a `bad-suppression` diagnostic for each malformed allow.
pub fn scan(file: &str, tokens: &[Token]) -> (Vec<Suppression>, Vec<LintDiagnostic>) {
    let mut found = Vec::new();
    let mut bad = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        // The marker must open the comment (after the `//`/`/*` sigils):
        // prose that merely *mentions* `xlint:` — like this sentence, or
        // the grammar documentation in this module — is not an allow.
        let body = tok.text.trim_start_matches(['/', '!', '*']).trim_start();
        let Some(rest) = body.strip_prefix(MARKER) else {
            continue;
        };
        let rest = rest.trim_start();
        match parse_allow(rest) {
            Ok((rule, justification)) => found.push(Suppression {
                rule,
                justification,
                line: tok.span.line,
                span: tok.span,
            }),
            Err(problem) => bad.push(LintDiagnostic::error(
                file,
                tok.span,
                Rule::BadSuppression,
                problem,
            )),
        }
    }
    (found, bad)
}

/// Parses `allow(<rule>): <justification>` (the text after `xlint:`).
fn parse_allow(rest: &str) -> Result<(Rule, String), String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed xlint comment: expected `xlint: allow(<rule>): <justification>`, got `xlint: {}`",
            rest.trim_end()
        ));
    };
    let Some(close) = inner.find(')') else {
        return Err("malformed xlint comment: unclosed `allow(`".to_string());
    };
    let name = inner[..close].trim();
    let Some(rule) = Rule::from_name(name) else {
        return Err(format!("unknown rule `{name}` in xlint allow"));
    };
    let after = inner[close + 1..].trim_start();
    let Some(just) = after.strip_prefix(':') else {
        return Err(format!(
            "suppression of `{name}` is missing its justification: write `allow({name}): <why this is sound>`"
        ));
    };
    let just = just.trim();
    if just.is_empty() {
        return Err(format!(
            "suppression of `{name}` has an empty justification: say why this is sound"
        ));
    }
    Ok((rule, just.to_string()))
}

/// Splits `diags` into (surviving, suppressed-with-justification)
/// against `sups`, and appends an `unused-suppression` error for every
/// allow that matched nothing. Each suppression may cover any number of
/// diagnostics on its two lines; "used" means it covered at least one.
pub fn apply(
    file: &str,
    diags: Vec<LintDiagnostic>,
    sups: &[Suppression],
) -> (
    Vec<LintDiagnostic>,
    Vec<(LintDiagnostic, String)>,
    Vec<LintDiagnostic>,
) {
    let mut used = vec![false; sups.len()];
    let mut surviving = Vec::new();
    let mut suppressed = Vec::new();
    for d in diags {
        let hit = sups.iter().position(|s| s.covers(d.rule, d.span.line));
        match hit {
            Some(i) => {
                used[i] = true;
                suppressed.push((d, sups[i].justification.clone()));
            }
            None => surviving.push(d),
        }
    }
    let mut unused = Vec::new();
    for (s, was_used) in sups.iter().zip(used) {
        if !was_used {
            unused.push(LintDiagnostic::error(
                file,
                s.span,
                Rule::UnusedSuppression,
                format!(
                    "suppression of `{}` matched no diagnostic on lines {}-{}: delete it",
                    s.rule,
                    s.line,
                    s.line + 1
                ),
            ));
        }
    }
    (surviving, suppressed, unused)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scan_src(src: &str) -> (Vec<Suppression>, Vec<LintDiagnostic>) {
        scan("test.rs", &lex(src))
    }

    #[test]
    fn well_formed_allow_parses() {
        let (sups, bad) = scan_src(
            "// xlint: allow(unseeded-rng): fixture generation, output is asserted exactly\nlet x = 1;",
        );
        assert!(bad.is_empty());
        assert_eq!(sups.len(), 1);
        assert_eq!(sups[0].rule, Rule::UnseededRng);
        assert!(sups[0].justification.starts_with("fixture generation"));
        assert!(sups[0].covers(Rule::UnseededRng, 1));
        assert!(sups[0].covers(Rule::UnseededRng, 2));
        assert!(!sups[0].covers(Rule::UnseededRng, 3));
        assert!(!sups[0].covers(Rule::WallClockInCompute, 1));
    }

    #[test]
    fn missing_justification_is_rejected() {
        let (sups, bad) = scan_src("// xlint: allow(unseeded-rng)\n");
        assert!(sups.is_empty());
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::BadSuppression);
        assert!(bad[0].message.contains("missing its justification"));
    }

    #[test]
    fn empty_justification_is_rejected() {
        let (sups, bad) = scan_src("// xlint: allow(unseeded-rng):   \n");
        assert!(sups.is_empty());
        assert!(bad[0].message.contains("empty justification"));
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let (_, bad) = scan_src("// xlint: allow(made-up): because\n");
        assert!(bad[0].message.contains("unknown rule `made-up`"));
    }

    #[test]
    fn prose_mentioning_the_marker_is_not_an_allow() {
        let (sups, bad) =
            scan_src("// the `xlint: allow(...)` grammar is documented in suppress.rs\n");
        assert!(sups.is_empty() && bad.is_empty());
        let (sups, bad) = scan_src("//! kgpip-xlint: a workspace static-analysis pass\n");
        assert!(sups.is_empty() && bad.is_empty());
    }

    #[test]
    fn meta_rules_cannot_be_allowed() {
        let (_, bad) = scan_src("// xlint: allow(bad-suppression): ha\n");
        assert_eq!(bad.len(), 1, "meta-rules are not suppressible");
    }

    #[test]
    fn apply_partitions_and_flags_unused() {
        let src = "\n// xlint: allow(unseeded-rng): demo entropy, not in any compute path\n\n// xlint: allow(wall-clock-in-compute): never matches\n";
        let (sups, bad) = scan_src(src);
        assert!(bad.is_empty());
        let diags = vec![LintDiagnostic::error(
            "test.rs",
            Span::at_line(3),
            Rule::UnseededRng,
            "thread_rng",
        )];
        let (surviving, suppressed, unused) = apply("test.rs", diags, &sups);
        assert!(surviving.is_empty());
        assert_eq!(suppressed.len(), 1);
        assert!(suppressed[0].1.starts_with("demo entropy"));
        assert_eq!(unused.len(), 1);
        assert_eq!(unused[0].rule, Rule::UnusedSuppression);
        assert_eq!(unused[0].span.line, 4);
    }
}
