//! Fixture: a crate root carrying both house hardening attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The answer.
pub fn answer() -> u32 {
    42
}
