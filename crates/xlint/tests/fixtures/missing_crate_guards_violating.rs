//! Fixture: a crate root missing the house hardening attributes.

pub fn answer() -> u32 {
    42
}
