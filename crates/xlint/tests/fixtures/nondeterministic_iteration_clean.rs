//! Fixture: hash containers used only through order-erasing operations,
//! plus iteration over an ordered catalog instead of the map itself.
use std::collections::{BTreeMap, HashMap};

pub fn feature_means(catalog: &[String], stats: &HashMap<String, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for name in catalog {
        if let Some(v) = stats.get(name) {
            out.push(*v);
        }
    }
    out
}

pub fn population(stats: &HashMap<String, f64>) -> usize {
    stats.keys().count()
}

pub fn ordered_view(stats: &HashMap<String, f64>) -> BTreeMap<String, f64> {
    stats.iter().map(|(k, v)| (k.clone(), *v)).collect::<BTreeMap<_, _>>()
}
