//! Fixture: iterates a HashMap in arbitrary order inside compute code.
use std::collections::HashMap;

pub fn feature_means(stats: &HashMap<String, f64>) -> Vec<f64> {
    let mut out = Vec::new();
    for (_, v) in stats.iter() {
        out.push(*v);
    }
    out
}

pub fn drop_stale(mut cache: HashMap<u64, f64>) -> HashMap<u64, f64> {
    cache.retain(|_, v| *v > 0.0);
    cache
}
