//! Fixture: serving-path code that surfaces every failure as a typed
//! error the caller can handle.
use std::collections::HashMap;

pub enum ServeError {
    MissingEmbedding(String),
    EmptyBatch,
    Truncated,
}

pub fn lookup(
    embeddings: &HashMap<String, Vec<f32>>,
    name: &str,
) -> Result<Vec<f32>, ServeError> {
    embeddings
        .get(name)
        .cloned()
        .ok_or_else(|| ServeError::MissingEmbedding(name.to_string()))
}

pub fn first_row(rows: &[Vec<f32>]) -> Result<&Vec<f32>, ServeError> {
    rows.first().ok_or(ServeError::EmptyBatch)
}

pub fn decode(bytes: &[u8]) -> Result<u32, ServeError> {
    let arr = bytes.get(..4).ok_or(ServeError::Truncated)?;
    let mut out = [0u8; 4];
    out.copy_from_slice(arr);
    Ok(u32::from_le_bytes(out))
}
