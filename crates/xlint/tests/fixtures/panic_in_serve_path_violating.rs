//! Fixture: serving-path code that can abort the process instead of
//! returning a typed error.
use std::collections::HashMap;

pub fn lookup(embeddings: &HashMap<String, Vec<f32>>, name: &str) -> Vec<f32> {
    embeddings.get(name).unwrap().clone()
}

pub fn first_row(rows: &[Vec<f32>]) -> &Vec<f32> {
    &rows[0]
}

pub fn decode(bytes: &[u8]) -> u32 {
    let arr: [u8; 4] = bytes[..4].try_into().expect("four bytes");
    u32::from_le_bytes(arr)
}

pub fn must_have(model: Option<&str>) -> &str {
    match model {
        Some(m) => m,
        None => panic!("no model loaded"),
    }
}
