//! Fixture: a real violation silenced by a correctly-formed allow with a
//! justification — the gate must pass and report it as suppressed.
use std::time::Instant;

pub fn timed(xs: &[f64]) -> (f64, u128) {
    // xlint: allow(wall-clock-in-compute): duration feeds a reported statistic only, never a computed value
    let started = Instant::now();
    let s = xs.iter().sum();
    (s, started.elapsed().as_millis())
}
