//! Fixture: an allow with no justification — the gate must reject the
//! suppression itself and keep the underlying finding alive.
use std::time::Instant;

pub fn timed(xs: &[f64]) -> (f64, u128) {
    // xlint: allow(wall-clock-in-compute)
    let started = Instant::now();
    let s = xs.iter().sum();
    (s, started.elapsed().as_millis())
}
