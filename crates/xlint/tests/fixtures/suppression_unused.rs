//! Fixture: a justified allow sitting above a line that never produced a
//! finding — the stale suppression must itself be reported.

pub fn sum(xs: &[f64]) -> f64 {
    // xlint: allow(wall-clock-in-compute): stale claim, nothing here reads the clock
    xs.iter().sum()
}
