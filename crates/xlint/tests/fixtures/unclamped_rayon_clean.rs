//! Fixture: rayon usage that mentions the sanctioned clamp in the same
//! function body.
use kgpip_tabular::effective_parallelism;
use rayon::prelude::*;

pub fn score_all(xs: &[f64], requested: usize) -> f64 {
    let workers = effective_parallelism(requested);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(workers)
        .build()
        .expect("pool");
    pool.install(|| xs.par_iter().map(|x| x * x).sum::<f64>())
}

pub fn plain_sum(xs: &[f64]) -> f64 {
    xs.iter().sum()
}
