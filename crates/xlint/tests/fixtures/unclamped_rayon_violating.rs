//! Fixture: spins up rayon work without routing the worker count through
//! the canonical clamp.
use rayon::prelude::*;

pub fn score_all(xs: &[f64]) -> f64 {
    xs.par_iter().map(|x| x * x).sum::<f64>()
}

pub fn build_pool(requested: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(requested)
        .build()
        .unwrap()
}
