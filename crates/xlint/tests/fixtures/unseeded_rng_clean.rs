//! Fixture: all randomness flows from an explicit caller-provided seed.
use rand::prelude::*;

pub fn jitter(xs: &mut [f64], seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    for x in xs.iter_mut() {
        *x += rng.gen::<f64>() * 1e-9;
    }
}
