//! Fixture: ambient randomness in compute code.
use rand::prelude::*;

pub fn jitter(xs: &mut [f64]) {
    let mut rng = rand::thread_rng();
    for x in xs.iter_mut() {
        *x += rng.gen::<f64>() * 1e-9;
    }
}

pub fn fresh() -> StdRng {
    StdRng::from_entropy()
}
