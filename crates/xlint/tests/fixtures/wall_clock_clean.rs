//! Fixture: compute code with no clock reads; progress is tracked by a
//! caller-supplied counter instead.
pub fn fit(xs: &[f64], steps_done: &mut u64) -> f64 {
    *steps_done += 1;
    xs.iter().sum()
}
