//! Fixture: reads the wall clock inside compute code.
use std::time::{Instant, SystemTime};

pub fn timed_fit(xs: &[f64]) -> (f64, u128) {
    let started = Instant::now();
    let s = xs.iter().sum();
    (s, started.elapsed().as_millis())
}

pub fn stamp() -> SystemTime {
    SystemTime::now()
}
