//! Fixture-driven rule tests: every rule has a violating fixture it must
//! flag and a clean fixture it must pass, and the suppression grammar is
//! exercised end to end (honored, malformed, stale).

use kgpip_xlint::{lint_source, CrateRules, FileOutcome, Rule};

const POOL_SANCTIONED: &[&str] = &["effective_parallelism", "worker_pool"];

fn run(rule: &str, crate_file: &str, source: &str) -> FileOutcome {
    let rules = CrateRules {
        path: "crates/fixture".to_string(),
        rules: vec![rule.to_string()],
        panic_files: Vec::new(),
    };
    let sanctioned: Vec<String> = POOL_SANCTIONED.iter().map(|s| s.to_string()).collect();
    lint_source("fixture.rs", crate_file, source, &rules, &sanctioned)
}

fn fired(outcome: &FileOutcome, rule: Rule) -> usize {
    outcome
        .diagnostics
        .iter()
        .filter(|d| d.rule == rule)
        .count()
}

#[test]
fn nondeterministic_iteration_fires_and_clears() {
    let bad = run(
        "nondeterministic-iteration",
        "src/x.rs",
        include_str!("fixtures/nondeterministic_iteration_violating.rs"),
    );
    assert!(
        fired(&bad, Rule::NondeterministicIteration) >= 2,
        "expected the iter() and retain() sites to fire: {:?}",
        bad.diagnostics
    );
    let clean = run(
        "nondeterministic-iteration",
        "src/x.rs",
        include_str!("fixtures/nondeterministic_iteration_clean.rs"),
    );
    assert!(
        clean.diagnostics.is_empty(),
        "catalog-order / neutralized uses must pass: {:?}",
        clean.diagnostics
    );
}

#[test]
fn unclamped_rayon_fires_and_clears() {
    let bad = run(
        "unclamped-rayon",
        "src/x.rs",
        include_str!("fixtures/unclamped_rayon_violating.rs"),
    );
    assert_eq!(
        fired(&bad, Rule::UnclampedRayon),
        2,
        "both unclamped functions must fire: {:?}",
        bad.diagnostics
    );
    let clean = run(
        "unclamped-rayon",
        "src/x.rs",
        include_str!("fixtures/unclamped_rayon_clean.rs"),
    );
    assert!(
        clean.diagnostics.is_empty(),
        "effective_parallelism in the body sanctions the pool: {:?}",
        clean.diagnostics
    );
}

#[test]
fn wall_clock_fires_and_clears() {
    let bad = run(
        "wall-clock-in-compute",
        "src/x.rs",
        include_str!("fixtures/wall_clock_violating.rs"),
    );
    assert!(
        fired(&bad, Rule::WallClockInCompute) >= 2,
        "Instant::now and SystemTime must both fire: {:?}",
        bad.diagnostics
    );
    let clean = run(
        "wall-clock-in-compute",
        "src/x.rs",
        include_str!("fixtures/wall_clock_clean.rs"),
    );
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
}

#[test]
fn unseeded_rng_fires_and_clears() {
    let bad = run(
        "unseeded-rng",
        "src/x.rs",
        include_str!("fixtures/unseeded_rng_violating.rs"),
    );
    assert!(
        fired(&bad, Rule::UnseededRng) >= 2,
        "thread_rng and from_entropy must both fire: {:?}",
        bad.diagnostics
    );
    let clean = run(
        "unseeded-rng",
        "src/x.rs",
        include_str!("fixtures/unseeded_rng_clean.rs"),
    );
    assert!(
        clean.diagnostics.is_empty(),
        "seed_from_u64 is the sanctioned entry point: {:?}",
        clean.diagnostics
    );
}

#[test]
fn panic_in_serve_path_fires_and_clears() {
    let bad = run(
        "panic-in-serve-path",
        "src/x.rs",
        include_str!("fixtures/panic_in_serve_path_violating.rs"),
    );
    assert!(
        fired(&bad, Rule::PanicInServePath) >= 4,
        "unwrap, indexing, expect, and panic! must all fire: {:?}",
        bad.diagnostics
    );
    let clean = run(
        "panic-in-serve-path",
        "src/x.rs",
        include_str!("fixtures/panic_in_serve_path_clean.rs"),
    );
    assert!(
        clean.diagnostics.is_empty(),
        "typed-error serving code must pass: {:?}",
        clean.diagnostics
    );
}

#[test]
fn panic_rule_respects_file_scoping() {
    let rules = CrateRules {
        path: "crates/fixture".to_string(),
        rules: vec!["panic-in-serve-path".to_string()],
        panic_files: vec!["src/serve.rs".to_string()],
    };
    let source = include_str!("fixtures/panic_in_serve_path_violating.rs");
    let in_scope = lint_source("fixture.rs", "src/serve.rs", source, &rules, &[]);
    assert!(!in_scope.diagnostics.is_empty());
    let out_of_scope = lint_source("fixture.rs", "src/train.rs", source, &rules, &[]);
    assert!(
        out_of_scope.diagnostics.is_empty(),
        "panic_files must scope the rule: {:?}",
        out_of_scope.diagnostics
    );
}

#[test]
fn missing_crate_guards_fires_on_lib_rs_only() {
    let bad_src = include_str!("fixtures/missing_crate_guards_violating.rs");
    let bad = run("missing-crate-guards", "src/lib.rs", bad_src);
    assert_eq!(
        fired(&bad, Rule::MissingCrateGuards),
        2,
        "both missing attributes must be reported: {:?}",
        bad.diagnostics
    );
    // The same source under a non-root path is out of scope.
    let elsewhere = run("missing-crate-guards", "src/util.rs", bad_src);
    assert!(elsewhere.diagnostics.is_empty());
    let clean = run(
        "missing-crate-guards",
        "src/lib.rs",
        include_str!("fixtures/missing_crate_guards_clean.rs"),
    );
    assert!(clean.diagnostics.is_empty(), "{:?}", clean.diagnostics);
}

#[test]
fn justified_suppression_is_honored_and_audited() {
    let outcome = run(
        "wall-clock-in-compute",
        "src/x.rs",
        include_str!("fixtures/suppression_justified.rs"),
    );
    assert!(
        outcome.diagnostics.is_empty(),
        "the justified allow must silence the finding: {:?}",
        outcome.diagnostics
    );
    assert_eq!(outcome.suppressed.len(), 1);
    assert!(outcome.suppressed[0]
        .justification
        .contains("reported statistic"));
}

#[test]
fn suppression_without_justification_is_rejected() {
    let outcome = run(
        "wall-clock-in-compute",
        "src/x.rs",
        include_str!("fixtures/suppression_missing_justification.rs"),
    );
    assert!(
        fired(&outcome, Rule::BadSuppression) >= 1,
        "a bare allow must be flagged as bad-suppression: {:?}",
        outcome.diagnostics
    );
    assert!(
        fired(&outcome, Rule::WallClockInCompute) >= 1,
        "the malformed allow must NOT silence the finding: {:?}",
        outcome.diagnostics
    );
    assert!(outcome.suppressed.is_empty());
}

#[test]
fn stale_suppression_is_reported() {
    let outcome = run(
        "wall-clock-in-compute",
        "src/x.rs",
        include_str!("fixtures/suppression_unused.rs"),
    );
    assert_eq!(
        fired(&outcome, Rule::UnusedSuppression),
        1,
        "an allow matching nothing must be flagged: {:?}",
        outcome.diagnostics
    );
}
