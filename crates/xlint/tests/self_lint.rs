//! The gate applied to the gatekeeper: the whole workspace — xlint
//! included — must lint clean under the compiled-in house configuration,
//! with every suppression justified. This is the same run `kgpip-cli
//! xlint` and `scripts/check.sh` perform.

use kgpip_xlint::{lint_workspace, WorkspaceConfig};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/xlint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("xlint lives two levels below the workspace root")
}

#[test]
fn workspace_lints_clean_under_house_config() {
    let report = lint_workspace(workspace_root(), &WorkspaceConfig::house())
        .expect("house config resolves every configured crate");
    assert!(
        report.files_scanned > 50,
        "expected to scan the whole workspace, got {} files",
        report.files_scanned
    );
    assert!(
        report.diagnostics.is_empty(),
        "workspace must be xlint-clean:\n{}",
        report.render_human()
    );
}

#[test]
fn every_workspace_suppression_carries_a_justification() {
    let report = lint_workspace(workspace_root(), &WorkspaceConfig::house())
        .expect("house config resolves every configured crate");
    assert!(
        !report.suppressed.is_empty(),
        "the audited allow sites (budget pacing, stats timing, ...) should appear"
    );
    for s in &report.suppressed {
        assert!(
            s.justification.split_whitespace().count() >= 3,
            "justification for {} in {} is too thin: {:?}",
            s.diagnostic.rule,
            s.diagnostic.file,
            s.justification
        );
    }
}
