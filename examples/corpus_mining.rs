//! The static-analysis path on its own: take a data-science notebook
//! (the paper's Figure 2 snippet, expanded), build its code graph
//! (Figure 3), filter it (Figure 4), and extract the pipeline skeleton —
//! no ML training involved.
//!
//! ```sh
//! cargo run --example corpus_mining
//! ```

use kgpip_codegraph::{analyze, filter_graph, NodeKind};

const NOTEBOOK: &str = r#"
import pandas as pd
import matplotlib.pyplot as plt
from sklearn.model_selection import train_test_split
from sklearn.preprocessing import StandardScaler
from sklearn import svm

df = pd.read_csv('example.csv')

# exploratory analysis the filter must discard
df.describe()
df.head()
plt.hist(df['X'])
plt.show()
df.corr()

df = df.fillna(0)
df_train, df_test = train_test_split(df)
X = df_train['X']

scaler = StandardScaler()
X2 = scaler.fit_transform(X)

model = svm.SVC(C=1.5)
model.fit(X2, df_train['Y'])
preds = model.predict(df_test)
print(preds)
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Static analysis (the GraphGen4Code substitute).
    let graph = analyze(NOTEBOOK)?;
    println!(
        "code graph: {} nodes, {} edges",
        graph.num_nodes(),
        graph.num_edges()
    );
    println!("resolved call nodes:");
    for id in graph.nodes_of_kind(NodeKind::Call) {
        println!(
            "  line {:2}: {}",
            graph.nodes[id].span.line, graph.nodes[id].label
        );
    }

    // 2. The §3.4 filter.
    let filtered = filter_graph(&graph);
    let node_reduction = 100.0 * (1.0 - filtered.num_nodes() as f64 / graph.num_nodes() as f64);
    let edge_reduction = 100.0 * (1.0 - filtered.num_edges() as f64 / graph.num_edges() as f64);
    println!(
        "\nfiltered graph: {} nodes, {} edges ({node_reduction:.1}% / {edge_reduction:.1}% reduction; paper reports >= 96%)",
        filtered.num_nodes(),
        filtered.num_edges()
    );
    println!(
        "filtered ops: {:?}",
        filtered.ops.iter().map(|o| o.name()).collect::<Vec<_>>()
    );
    println!("filtered edges: {:?}", filtered.edges);

    // 3. Skeleton extraction (§3.6).
    let (transformers, estimator) = filtered
        .skeleton()
        .expect("this notebook contains a valid pipeline");
    println!("\npipeline skeleton: {transformers:?} + {estimator}");

    // 4. The Graph4ML view: dataset node attached (Figure 4).
    let with_ds = filtered.with_dataset_node();
    println!(
        "with dataset node: {} nodes, first op = {}",
        with_ds.num_nodes(),
        with_ds.ops[0].name()
    );
    Ok(())
}
