//! A Kaggle-style mixed-type scenario (the titanic motif from the paper's
//! benchmark): numeric + categorical + missing values, loaded from CSV
//! text exactly as a `pandas.read_csv` pipeline would.
//!
//! Compares cold FLAML against KGpip + FLAML under the same small budget —
//! the Figure-5 comparison in miniature.
//!
//! ```sh
//! cargo run --release --example kaggle_tabular
//! ```

use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{training_setup, ScaleConfig};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
use kgpip_hpo::{Flaml, Optimizer, TimeBudget};
use kgpip_tabular::{csv, train_test_split, Dataset};

/// Builds a titanic-like CSV in memory: pclass, sex, age (with holes),
/// fare, embarked, survived.
fn titanic_csv(rows: usize) -> String {
    let mut out = String::from("pclass,sex,age,fare,embarked,survived\n");
    for i in 0..rows {
        let pclass = 1 + i % 3;
        let sex = if (i * 7) % 10 < 4 { "female" } else { "male" };
        let age = if i % 9 == 0 {
            String::new() // missing
        } else {
            format!("{}", 18 + (i * 13) % 50)
        };
        let fare = 10.0 + ((i * 31) % 200) as f64 + (4 - pclass) as f64 * 40.0;
        let embarked = ["S", "C", "Q"][(i * 3) % 3];
        // Survival: women and first class mostly survive, with noise.
        let base = f64::from(sex == "female") * 0.6 + f64::from(pclass == 1) * 0.3;
        let survived = usize::from(base + ((i * 17) % 100) as f64 / 400.0 > 0.5);
        out.push_str(&format!(
            "{pclass},{sex},{age},{fare:.2},{embarked},{survived}\n"
        ));
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Read the "downloaded csv" with automatic type and task inference.
    let frame = csv::read_frame(&titanic_csv(600))?;
    let ds = Dataset::from_frame("titanic-like", frame, "survived")?;
    println!(
        "loaded: {} rows, {} features ({:?} kinds), task {}, {} missing cells",
        ds.num_rows(),
        ds.num_features(),
        ds.features.kind_counts(),
        ds.task,
        ds.features.missing_cells()
    );
    let (train, test) = train_test_split(&ds, 0.3, 7)?;

    // Cold FLAML.
    let budget_secs = 4.0;
    let mut cold = Flaml::new(0);
    let cold_result = cold.optimize(&train, &TimeBudget::seconds(budget_secs))?;
    let cold_score = cold_result.refit_score(&train, &test)?;
    println!(
        "\ncold FLAML:   {} -> test macro-F1 {:.3} ({} trials)",
        cold_result.spec.describe(),
        cold_score,
        cold_result.trials
    );

    // KGpip + FLAML with the same budget (training time excluded, as the
    // paper's offline phase is amortized over all datasets).
    let setup = training_setup(2, &ScaleConfig::default(), 1);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 10,
            ..CorpusConfig::default()
        },
    );
    // Parallelism 4: skeleton searches and their trials run concurrently
    // through the shared evaluation engine under the same global budget.
    let config = KgpipConfig::default().with_k(3).with_parallelism(4);
    let model = Kgpip::train(&scripts, &setup.tables, config)?;
    let mut backend = Flaml::new(0);
    let run = model.run(&train, &mut backend, TimeBudget::seconds(budget_secs))?;
    let kg_score = run.best().refit_score(&train, &test)?;
    println!(
        "KGpip+FLAML:  {} -> test macro-F1 {:.3} (neighbour: {})",
        run.best().spec.describe(),
        kg_score,
        run.neighbour
    );
    println!(
        "\npredicted skeletons, in generator rank order: {:?}",
        run.results
            .iter()
            .map(|r| r.skeleton.estimator.name())
            .collect::<Vec<_>>()
    );
    Ok(())
}
