//! Quickstart: train KGpip on a small mined corpus, then let it pick
//! pipelines for an unseen dataset and optimize them with the FLAML-style
//! backend.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{training_setup, ScaleConfig};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
use kgpip_graphgen::GeneratorConfig;
use kgpip_hpo::{Flaml, TimeBudget};
use kgpip_tabular::{Column, DataFrame, Dataset, Task};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A mined corpus: training tables (content) + notebooks (pipelines).
    //    In the paper this is 11.7K Kaggle scripts; here the benchdata
    //    crate synthesizes an equivalent.
    let scale = ScaleConfig::default();
    let setup = training_setup(2, &scale, 42);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 10,
            ..CorpusConfig::default()
        },
    );
    println!(
        "corpus: {} scripts over {} datasets",
        scripts.len(),
        setup.tables.len()
    );

    // 2. Offline phase: static analysis -> filter -> Graph4ML -> generator.
    let model = Kgpip::train(
        &scripts,
        &setup.tables,
        KgpipConfig::default()
            .with_k(3)
            .with_generator(GeneratorConfig {
                epochs: 8,
                ..GeneratorConfig::default()
            }),
    )?;
    let stats = model.stats();
    println!(
        "trained: {}/{} scripts usable, {} datasets, {} graph nodes, {:.1}s",
        stats.valid_pipelines,
        stats.scripts,
        stats.datasets,
        stats.total_nodes,
        stats.training_secs
    );

    // 3. An unseen dataset (binary classification with a nonlinear target).
    let n = 400;
    let x0: Vec<f64> = (0..n).map(|i| (i % 20) as f64).collect();
    let x1: Vec<f64> = (0..n).map(|i| ((i * 7) % 20) as f64).collect();
    let y: Vec<f64> = x0
        .iter()
        .zip(&x1)
        .map(|(a, b)| f64::from((a > &10.0) != (b > &10.0)))
        .collect();
    let features = DataFrame::from_columns(vec![
        ("x0".to_string(), Column::from_f64(x0)),
        ("x1".to_string(), Column::from_f64(x1)),
    ])?;
    let ds = Dataset::new("unseen", features, y, Task::Binary)?;

    // 4. Online phase: nearest dataset -> top-K graphs -> (T-t)/K HPO.
    let mut backend = Flaml::new(0);
    let run = model.run(&ds, &mut backend, TimeBudget::seconds(5.0))?;
    println!("\nnearest training dataset: {}", run.neighbour);
    println!(
        "generation + validation took {:.3}s (the paper's t)",
        run.generation_time.as_secs_f64()
    );
    for (i, r) in run.results.iter().enumerate() {
        let score = r
            .hpo
            .as_ref()
            .map(|h| format!("{:.3}", h.valid_score))
            .unwrap_or_else(|| "failed".to_string());
        let marker = if i == run.best_index { " <= best" } else { "" };
        println!(
            "  rank {}: {:?} + {}  -> validation {}{}",
            i + 1,
            r.skeleton
                .transformers
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>(),
            r.skeleton.estimator.name(),
            score,
            marker
        );
    }
    println!(
        "\nbest pipeline: {} (macro-F1 {:.3} on validation)",
        run.best().spec.describe(),
        run.best_score()
    );
    Ok(())
}
