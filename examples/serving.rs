//! Serving: train once, snapshot the immutable artifact, and answer
//! concurrent prediction requests through `kgpip-serve` — batched,
//! cached, and hot-swappable, with every answer bit-identical to a
//! direct `TrainedModel::predict_table` call.
//!
//! ```sh
//! cargo run --release --example serving
//! ```

use kgpip::TrainedModel;
use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{training_setup, ScaleConfig};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
use kgpip_graphgen::GeneratorConfig;
use kgpip_serve::{ServeConfig, ServeHandle, ServeRequest};
use kgpip_tabular::{Column, DataFrame, Task};

fn query_table(offset: f64, rows: usize) -> Result<DataFrame, Box<dyn std::error::Error>> {
    Ok(DataFrame::from_columns(vec![
        (
            "x0".to_string(),
            Column::from_f64(
                (0..rows)
                    .map(|i| offset + (i % 20) as f64)
                    .collect::<Vec<_>>(),
            ),
        ),
        (
            "x1".to_string(),
            Column::from_f64(
                (0..rows)
                    .map(|i| offset + ((i * 7) % 20) as f64)
                    .collect::<Vec<_>>(),
            ),
        ),
    ])?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Offline: train on a mined corpus, exactly as in `quickstart`.
    let scale = ScaleConfig::default();
    let setup = training_setup(2, &scale, 42);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 10,
            ..CorpusConfig::default()
        },
    );
    let trained = Kgpip::train(
        &scripts,
        &setup.tables,
        KgpipConfig::default().with_generator(GeneratorConfig {
            epochs: 8,
            ..GeneratorConfig::default()
        }),
    )?;

    // 2. The deployment boundary: `into_artifact()` drops the train-only
    //    state (Graph4ML, stats) and keeps the immutable serve-time
    //    slice. Snapshot it to the versioned binary format and reopen —
    //    this is what a serving process would load at startup.
    let dir = std::env::temp_dir().join("kgpip_serving_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("model.kgps");
    let artifact = trained.into_artifact();
    artifact.snapshot(&path)?;
    let model = TrainedModel::open(&path)?;
    println!(
        "snapshot: {:?} ({} catalog datasets)",
        path,
        model.catalog_len()
    );

    // 3. Start the service: 2 workers, batches of up to 4, result cache.
    let server = ServeHandle::start(
        model.share(),
        ServeConfig::default()
            .with_workers(2)
            .with_max_batch(4)
            .with_cache_capacity(64),
    );

    // 4. A wave of concurrent requests: submit first, then collect, so
    //    the workers can coalesce them into batches.
    let tables: Vec<DataFrame> = (0..6)
        .map(|i| query_table(i as f64 * 31.0, 40 + i))
        .collect::<Result<_, _>>()?;
    let pending: Vec<_> = tables
        .iter()
        .map(|t| {
            server.submit(ServeRequest {
                table: t.clone(),
                task: Task::Binary,
                k: 3,
                seed: 7,
            })
        })
        .collect();
    for (i, p) in pending.into_iter().enumerate() {
        let r = p.wait()?;
        println!(
            "query {i}: neighbour={} skeletons={} batch={} cached={}",
            r.neighbour,
            r.skeletons.len(),
            r.batch_size,
            r.cached
        );
    }

    // 5. Repeat one request: the content-fingerprint cache replays the
    //    identical answer without recomputing.
    let replay = server.predict(ServeRequest {
        table: tables[0].clone(),
        task: Task::Binary,
        k: 3,
        seed: 7,
    })?;
    println!(
        "replay: cached={} (bit-identical by construction)",
        replay.cached
    );

    // 6. Hot-swap: retrain (here: same data, different seed) and replace
    //    the model atomically. In-flight requests finish on the epoch
    //    they started with; new requests see the new epoch.
    let retrained = Kgpip::train(
        &scripts,
        &setup.tables,
        KgpipConfig::default().with_generator(GeneratorConfig {
            epochs: 8,
            seed: 1,
            ..GeneratorConfig::default()
        }),
    )?;
    let epoch = server.swap_model(retrained.into_artifact().share());
    let after = server.predict(ServeRequest {
        table: tables[0].clone(),
        task: Task::Binary,
        k: 3,
        seed: 7,
    })?;
    println!(
        "hot-swap: now epoch {epoch}; fresh answer from epoch {}",
        after.model_epoch
    );

    let stats = server.shutdown();
    println!(
        "served {} requests in {} batches ({} cache hits, {} swaps)",
        stats.served, stats.batches, stats.cache.hits, stats.swaps
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
