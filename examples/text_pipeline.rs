//! A text-classification scenario (the paper's
//! `spooky-author-identification` motif): the dataset is mostly free
//! text, which the AL baseline hard-fails on ("it failed on many of the
//! datasets during the fitting process") while KGpip's preprocessing
//! vectorizes it and proceeds — the Figure-6 contrast in miniature.
//!
//! ```sh
//! cargo run --release --example text_pipeline
//! ```

use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{training_setup, ScaleConfig};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
use kgpip_hpo::{Al, Flaml, Optimizer, TimeBudget};
use kgpip_tabular::{train_test_split, Column, DataFrame, Dataset, Task};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three "authors" with distinct vocabularies.
    let vocab: [&[&str]; 3] = [
        &["midnight", "raven", "shadow", "dreary", "phantom", "sorrow"],
        &["whale", "voyage", "harbor", "captain", "compass", "tide"],
        &["garden", "meadow", "blossom", "spring", "lark", "morning"],
    ];
    let n = 450;
    let mut texts = Vec::with_capacity(n);
    let mut lengths = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let author = i % 3;
        let words = vocab[author];
        let len = 5 + (i * 7) % 6;
        let sentence: Vec<&str> = (0..len)
            .map(|w| words[(i * 3 + w * 5) % words.len()])
            .collect();
        let joined = sentence.join(" ");
        lengths.push(joined.len() as f64);
        texts.push(Some(joined));
        labels.push(author as f64);
    }
    let features = DataFrame::from_columns(vec![
        ("excerpt".to_string(), Column::text(texts)),
        ("length".to_string(), Column::from_f64(lengths)),
    ])?;
    let ds = Dataset::new("spooky-like", features, labels, Task::MultiClass(3))?;
    let (train, test) = train_test_split(&ds, 0.3, 3)?;
    println!(
        "dataset: {} rows, kinds {:?}, task {}",
        ds.num_rows(),
        ds.features.kind_counts(),
        ds.task
    );

    // AL: replay-based, no text path -> hard failure, as in the paper.
    let mut al = Al::new(0);
    match al.optimize(&train, &TimeBudget::seconds(2.0)) {
        Ok(r) => println!("AL unexpectedly succeeded: {:.3}", r.valid_score),
        Err(e) => println!("AL: {e}"),
    }

    // KGpip: text columns are hash-vectorized by the encoder; the
    // predicted skeletons run unchanged.
    let setup = training_setup(2, &ScaleConfig::default(), 9);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 10,
            ..CorpusConfig::default()
        },
    );
    let model = Kgpip::train(&scripts, &setup.tables, KgpipConfig::default().with_k(3))?;
    let mut backend = Flaml::new(0);
    let run = model.run(&train, &mut backend, TimeBudget::seconds(5.0))?;
    let score = run.best().refit_score(&train, &test)?;
    println!(
        "KGpip+FLAML: {} -> test macro-F1 {:.3}",
        run.best().spec.describe(),
        score
    );
    assert!(score > 0.5, "text signal should be recoverable");
    Ok(())
}
