#!/usr/bin/env bash
# Runs the graph-generation criterion suite and emits BENCH_graphgen.json —
# a machine-readable summary so the perf trajectory is tracked across PRs.
#   scripts/bench.sh [output.json]
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_graphgen.json}"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

echo "==> cargo bench -p kgpip-bench --bench graph_generation"
cargo bench -p kgpip-bench --bench graph_generation -- --bench | tee "$raw"

# The vendored criterion prints one `BENCH_JSON {...}` line per benchmark.
{
  echo '{'
  echo "  \"suite\": \"graph_generation\","
  echo "  \"host\": \"$(uname -sm) ($(nproc) cpu)\","
  echo '  "results": ['
  grep '^BENCH_JSON ' "$raw" | sed 's/^BENCH_JSON //' | sed '$!s/$/,/' | sed 's/^/    /'
  echo '  ]'
  echo '}'
} > "$out"

echo "==> wrote $out ($(grep -c '^BENCH_JSON ' "$raw") benchmarks)"
