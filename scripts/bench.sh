#!/usr/bin/env bash
# Runs the criterion suites and emits machine-readable summaries so the
# perf trajectory is tracked across PRs:
#   BENCH_graphgen.json — graph-generation kernels
#   BENCH_hpo.json      — HPO trial throughput (trials/sec, cache hit rate)
#   BENCH_mining.json   — corpus mining (scripts/sec cold vs warm, p1 vs pN)
#   BENCH_serve.json    — kgpip-serve (QPS, p50/p99 latency, cache hit rate)
#   BENCH_embeddings.json — similarity tiers (build secs, insert/sec, QPS,
#                           recall@10, resident bytes per tier; the
#                           tier_hnsw_pq / pq_incremental_encode rows
#                           cover the product-quantized store: fit secs,
#                           encode/sec, reranked vs raw recall, code vs
#                           f64 bytes; KGPIP_BENCH_EMBED_N sizes the
#                           catalog, default 100K)
#   BENCH_tabular.json  — chunked tabular engine (ingest rows/sec vs
#                         read_frame at p1/p2/p4 + bounded mode with its
#                         resident-chunk cap, GBT chunk-fit vs dense fit,
#                         sampled vs in-memory table embeddings)
#   scripts/bench.sh [graphgen_out.json] [hpo_out.json] [mining_out.json] [serve_out.json] [embeddings_out.json] [tabular_out.json]
#
# Guard: parallel arms (pN mining, p4/p8 HPO, multi-worker serving) are
# requested worker counts, not guarantees. Every rayon entry point clamps
# through effective_parallelism() to the host's available cores, so on a
# 1-CPU box the pN arms measure the same sequential schedule as p1 (plus
# pool overhead) instead of oversubscribing — compare speedup ratios only
# against the core count recorded in the "host" field below.
set -euo pipefail
cd "$(dirname "$0")/.."

graphgen_out="${1:-BENCH_graphgen.json}"
hpo_out="${2:-BENCH_hpo.json}"
mining_out="${3:-BENCH_mining.json}"
serve_out="${4:-BENCH_serve.json}"
embeddings_out="${5:-BENCH_embeddings.json}"
tabular_out="${6:-BENCH_tabular.json}"

# Runs one criterion bench target and folds its `BENCH_JSON {...}` lines
# (one per benchmark, printed by the vendored criterion plus any summary
# lines the bench emits itself) into a single JSON document.
run_suite() {
  local bench="$1" out="$2"
  local raw
  raw="$(mktemp)"
  echo "==> cargo bench -p kgpip-bench --bench $bench"
  cargo bench -p kgpip-bench --bench "$bench" -- --bench | tee "$raw"
  {
    echo '{'
    echo "  \"suite\": \"$bench\","
    echo "  \"host\": \"$(uname -sm) ($(nproc) cpu)\","
    echo '  "results": ['
    grep '^BENCH_JSON ' "$raw" | sed 's/^BENCH_JSON //' | sed '$!s/$/,/' | sed 's/^/    /'
    echo '  ]'
    echo '}'
  } > "$out"
  echo "==> wrote $out ($(grep -c '^BENCH_JSON ' "$raw") benchmarks)"
  rm -f "$raw"
}

run_suite graph_generation "$graphgen_out"
run_suite hpo_parallel "$hpo_out"
run_suite corpus_mining "$mining_out"
run_suite serve_bench "$serve_out"
run_suite embeddings "$embeddings_out"
run_suite tabular_chunked "$tabular_out"
