#!/usr/bin/env bash
# Pre-PR gate: run the same sequence CI expects. Fails fast.
#   scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> xlint (house invariants: determinism, clamped parallelism, typed serve errors)"
cargo run --release --quiet --bin kgpip-cli -- xlint

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo bench --no-run (kernel changes must keep benches compiling)"
cargo bench --workspace --no-run

echo "==> determinism suite (parallel engine bit-for-bit reproducibility)"
cargo test -p kgpip-graphgen --test determinism -q
cargo test -p kgpip-nn --test props -q
cargo test -p kgpip-learners --test gbt_determinism -q
cargo test -p kgpip --test mining_determinism -q

echo "==> chunked-identity suite (chunking changes cost, never results)"
cargo test -p kgpip-tabular --test chunked_identity -q
cargo test -p kgpip-learners --test gbt_chunked -q

echo "==> similarity-tier suite (HNSW determinism; mapped ≡ owned; recall gate)"
cargo test -p kgpip-embeddings --test hnsw -q
cargo test -p kgpip-benchdata --test recall -q

echo "==> product-quantization suite (rerank ≡ exact; codebooks bit-stable across workers; .kgvi PQ round-trip)"
cargo test -p kgpip-embeddings --test pq -q

echo "==> cache-equivalence suite (trial caches change cost, never results)"
cargo test -p kgpip-hpo --test cache_equivalence -q

echo "==> artifact suite (snapshot round-trips bit-for-bit; serving is bit-identical to direct prediction)"
cargo test -p kgpip --test snapshot_roundtrip -q
cargo test -p kgpip-serve -q

echo "==> lint-corpus (fixed-seed graph invariant gate)"
cargo run --release --quiet --bin kgpip-cli -- lint-corpus \
  --datasets 4 --scripts-per-dataset 50 --seed 0 \
  --malformed-fraction 0.05 --helper-fraction 0.25

echo "All checks passed."
