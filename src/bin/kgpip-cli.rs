//! `kgpip-cli` — train, snapshot, and serve KGpip models from the command
//! line.
//!
//! ```text
//! kgpip-cli train   --scripts DIR --tables DIR --out model.kgps [--epochs N] [--seed S]
//! kgpip-cli snapshot --model model.json --out model.kgps
//! kgpip-cli predict --model model.kgps --data data.csv --target COL [--k 3]
//! kgpip-cli predict --model model.kgps --data big.csv --chunked
//!                   [--chunk-rows 8192] [--workers N]
//!                   [--task binary|multiclass:N|regression] [--k 3]
//! kgpip-cli run     --model model.kgps --data data.csv --target COL
//!                   [--budget-secs 30] [--trials 100] [--backend flaml|autosklearn]
//!                   [--k 3] [--parallelism N]
//! kgpip-cli serve   --model model.kgps [--workers 2] [--batch 8] [--k 3]
//!                   [--task binary|multiclass:N|regression] [--seed 0]
//! kgpip-cli demo    [--budget-secs 5] [--parallelism N]
//! kgpip-cli lint-corpus [--datasets 4] [--scripts-per-dataset 50] [--seed 0]
//!                   [--malformed-fraction 0.05] [--helper-fraction 0.25]
//! kgpip-cli xlint   [--json] [--config rules.json] [--root DIR]
//! kgpip-cli index build --out catalog.kgvi (--model model.kgps | --n 100000)
//!                   [--dim 32] [--clusters 64] [--seed 0] [--tier auto|exact|hnsw]
//!                   [--pq m=8,rerank=4]
//! kgpip-cli index query --index catalog.kgvi [--k 10] [--queries 200]
//!                   [--seed 1] [--recall]
//! kgpip-cli index stats --index catalog.kgvi
//! ```
//!
//! Model files: `--model` everywhere accepts both the binary snapshot
//! format (`.kgps`, written by `train`/`snapshot`) and the JSON-era
//! format — the loader sniffs the file magic. `train` writes a snapshot
//! unless `--out` ends in `.json`; `snapshot` converts either format to a
//! snapshot.
//!
//! `serve` starts the batched prediction service and reads requests from
//! stdin, one CSV path per line; each line is answered with the top-K
//! pipeline skeletons for that table.
//!
//! `predict --chunked` is the larger-than-RAM path: the CSV is ingested
//! through the streaming chunked reader (`--chunk-rows` rows per chunk,
//! `--workers` parse workers, bounded resident buffers) and the table is
//! embedded from chunk statistics plus a bounded row sample — the
//! assembled `DataFrame` is never materialized. No `--target` is needed;
//! pass the task kind via `--task` (default `binary`). For tables at or
//! below the embedding sample bound the predictions are bit-identical to
//! the in-memory path on the same columns.
//!
//! `lint-corpus` generates a synthetic corpus, runs the recovering
//! analyzer + filter over every script, and verifies the graph-lint
//! invariants on every produced graph (raw, filtered, Graph4ML). It
//! prints recovered diagnostics and exits non-zero if any invariant is
//! violated.
//!
//! `xlint` runs the workspace's own static-analysis pass (`kgpip-xlint`)
//! over every crate's Rust sources, enforcing the determinism & serving
//! house rules. Exits non-zero when any unsuppressed diagnostic remains;
//! `--json` emits the full machine-readable report (findings plus every
//! justified suppression).
//!
//! `index` manages standalone `.kgvi` similarity-catalog files, the
//! mmap-backed format a serving process opens read-only for warm starts.
//! `build` exports a model's catalog (`--model`) or a seeded synthetic
//! one (`--n/--dim/--clusters`); `--tier auto` builds the HNSW graph
//! once the catalog crosses the auto-tune threshold. (IVF is an
//! in-memory mid-band tier and is not serialized to `.kgvi` files.)
//! `--pq m=8,rerank=4` product-quantizes the vector store before export:
//! tier scans read compact codes with an exact top-`rerank × k` re-rank,
//! so answers stay exact-ordered while resident bytes shrink.
//! `query` measures queries/sec over seeded synthetic probes and, with
//! `--recall`, scores the graph tier's recall@K against the exact scan.
//! `stats` prints the catalog's shape, tier, and per-component resident
//! bytes without loading vectors.
//!
//! Layout expected by `train`:
//! * `--scripts DIR` — one subdirectory per dataset, each containing the
//!   mined `.py` notebooks for that dataset (`DIR/<dataset>/<name>.py`),
//! * `--tables DIR` — one `<dataset>.csv` per dataset for content
//!   embeddings.

use kgpip::{Kgpip, KgpipConfig, TrainedModel};
use kgpip_codegraph::corpus::ScriptRecord;
use kgpip_hpo::{AutoSklearn, Flaml, Optimizer, TimeBudget};
use kgpip_serve::{ServeConfig, ServeHandle, ServeRequest};
use kgpip_tabular::{csv, DataFrame, Dataset, Task};
use std::path::Path;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let result = match command {
        "train" => cmd_train(&flag),
        "snapshot" => cmd_snapshot(&flag),
        "predict" => cmd_predict(&args, &flag),
        "run" => cmd_run(&flag),
        "serve" => cmd_serve(&flag),
        "demo" => cmd_demo(&flag),
        "lint-corpus" => cmd_lint_corpus(&flag),
        "xlint" => cmd_xlint(&args, &flag),
        "index" => cmd_index(&args, &flag),
        _ => {
            eprintln!(
                "usage: kgpip-cli <train|snapshot|predict|run|serve|demo|lint-corpus|xlint|index> [flags]\n\
                 see the module docs (`kgpip-cli --help` output) for flags"
            );
            exit(2);
        }
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1);
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn require(flag: &impl Fn(&str) -> Option<String>, name: &str) -> Result<String, String> {
    flag(name).ok_or_else(|| format!("missing required flag {name} <value>"))
}

fn read_table(path: &Path) -> Result<DataFrame, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    Ok(csv::read_frame(&text)?)
}

fn cmd_train(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    let scripts_dir = require(flag, "--scripts")?;
    let tables_dir = require(flag, "--tables")?;
    let out = require(flag, "--out")?;
    let epochs: usize = flag("--epochs").and_then(|v| v.parse().ok()).unwrap_or(15);
    let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);

    // Collect scripts grouped by dataset directory.
    let mut scripts = Vec::new();
    for entry in std::fs::read_dir(&scripts_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let dataset = entry.file_name().to_string_lossy().to_string();
        for file in std::fs::read_dir(entry.path())? {
            let file = file?;
            let path = file.path();
            if path.extension().and_then(|e| e.to_str()) == Some("py") {
                scripts.push(ScriptRecord {
                    dataset: dataset.clone(),
                    source: std::fs::read_to_string(&path)?,
                });
            }
        }
    }
    // Collect tables.
    let mut tables = Vec::new();
    for entry in std::fs::read_dir(&tables_dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.extension().and_then(|e| e.to_str()) == Some("csv") {
            let name = path
                .file_stem()
                .map(|s| s.to_string_lossy().to_string())
                .unwrap_or_default();
            tables.push((name, read_table(&path)?));
        }
    }
    eprintln!(
        "training on {} scripts across {} tables...",
        scripts.len(),
        tables.len()
    );
    let config =
        KgpipConfig::default()
            .with_seed(seed)
            .with_generator(kgpip_graphgen::GeneratorConfig {
                epochs,
                seed,
                ..kgpip_graphgen::GeneratorConfig::default()
            });
    let model = Kgpip::train(&scripts, &tables, config)?;
    let stats = model.stats();
    eprintln!(
        "trained: {}/{} scripts usable, {} datasets, {:.1}s generator training",
        stats.valid_pipelines, stats.scripts, stats.datasets, stats.training_secs
    );
    if out.ends_with(".json") {
        // JSON-era compatibility output (keeps the full training run,
        // Graph4ML and stats included).
        #[allow(deprecated)]
        model.save(&out)?;
    } else {
        model.artifact().snapshot(&out)?;
    }
    eprintln!("model written to {out}");
    Ok(())
}

/// Converts a model file (JSON-era or snapshot) into the binary snapshot
/// format.
fn cmd_snapshot(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    let model_path = require(flag, "--model")?;
    let out = require(flag, "--out")?;
    let model = TrainedModel::open(&model_path)?;
    model.snapshot(&out)?;
    let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "snapshot written to {out} ({} datasets, {bytes} bytes)",
        model.catalog_len()
    );
    Ok(())
}

fn load_dataset(
    flag: &impl Fn(&str) -> Option<String>,
) -> Result<Dataset, Box<dyn std::error::Error>> {
    let data = require(flag, "--data")?;
    let target = require(flag, "--target")?;
    let frame = read_table(Path::new(&data))?;
    Ok(Dataset::from_frame(
        Path::new(&data)
            .file_stem()
            .map(|s| s.to_string_lossy().to_string())
            .unwrap_or_else(|| "dataset".into()),
        frame,
        &target,
    )?)
}

/// Parses the `--task` flag shared by `predict --chunked` and `serve`.
fn parse_task(spec: Option<&str>) -> Result<Task, String> {
    match spec {
        None | Some("binary") => Ok(Task::Binary),
        Some("regression") => Ok(Task::Regression),
        Some(spec) => match spec
            .strip_prefix("multiclass:")
            .and_then(|n| n.parse().ok())
        {
            Some(classes) => Ok(Task::MultiClass(classes)),
            None => Err(format!("unknown task {spec}")),
        },
    }
}

fn cmd_predict(args: &[String], flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    let model_path = require(flag, "--model")?;
    let k: usize = flag("--k").and_then(|v| v.parse().ok()).unwrap_or(3);
    let model = TrainedModel::open(&model_path)?;
    let caps = Flaml::new(0).capabilities();
    let (skeletons, neighbour) = if args.iter().any(|a| a == "--chunked") {
        // Larger-than-RAM path: chunked ingest with bounded resident parse
        // buffers, then embedding from chunk statistics — the assembled
        // frame never exists.
        let data = require(flag, "--data")?;
        let task = parse_task(flag("--task").as_deref())?;
        let opts = kgpip_tabular::ChunkedReadOptions {
            chunk_rows: flag("--chunk-rows")
                .and_then(|v| v.parse().ok())
                .unwrap_or(8192),
            parallelism: flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(1),
            bounded_memory: true,
        };
        let text = std::fs::read_to_string(&data)?;
        let (frame, report) = kgpip_tabular::read_chunked_with_report(&text, &opts)?;
        drop(text);
        eprintln!(
            "chunked ingest: {} rows in {} chunk(s) of ≤ {} rows on {} worker(s), peak {} resident chunk(s)",
            report.rows, report.chunks, opts.chunk_rows, report.workers, report.peak_resident_chunks
        );
        model.predict_table_chunked(&frame, task, k, &caps, 0)?
    } else {
        let ds = load_dataset(flag)?;
        eprintln!(
            "dataset: {} rows, {} features, task {}",
            ds.num_rows(),
            ds.num_features(),
            ds.task
        );
        model.predict_skeletons(&ds, k, &caps, 0)?
    };
    println!("nearest seen dataset: {neighbour}");
    for (i, (s, score)) in skeletons.iter().enumerate() {
        println!(
            "{}. {} > {}   (generation score {score:.2})",
            i + 1,
            s.transformers
                .iter()
                .map(|t| t.name())
                .collect::<Vec<_>>()
                .join(" > "),
            s.estimator.name()
        );
    }
    Ok(())
}

fn cmd_run(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    let model_path = require(flag, "--model")?;
    let budget: f64 = flag("--budget-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(30.0);
    let backend_name = flag("--backend").unwrap_or_else(|| "flaml".into());
    let mut model = TrainedModel::open(&model_path)?;
    if let Some(parallelism) = flag("--parallelism").and_then(|v| v.parse().ok()) {
        model.set_parallelism(parallelism);
    }
    let ds = load_dataset(flag)?;
    let mut time_budget = TimeBudget::seconds(budget);
    if let Some(trials) = flag("--trials").and_then(|v| v.parse().ok()) {
        time_budget = time_budget.with_trial_cap(trials);
    }
    let k: usize = flag("--k").and_then(|v| v.parse().ok()).unwrap_or(3);
    let run = match backend_name.as_str() {
        "autosklearn" => {
            let mut backend = AutoSklearn::new(0);
            model.run_k(&ds, &mut backend, time_budget, k)?
        }
        _ => {
            let mut backend = Flaml::new(0);
            model.run_k(&ds, &mut backend, time_budget, k)?
        }
    };
    println!("nearest seen dataset: {}", run.neighbour);
    println!(
        "generation + validation: {:.2}s",
        run.generation_time.as_secs_f64()
    );
    for (i, r) in run.results.iter().enumerate() {
        let score = r
            .hpo
            .as_ref()
            .map(|h| format!("{:.3}", h.valid_score))
            .unwrap_or_else(|| "failed".into());
        println!(
            "  rank {}: {} -> validation {}{}",
            i + 1,
            r.hpo
                .as_ref()
                .map(|h| h.spec.describe())
                .unwrap_or_else(|| r.skeleton.estimator.name().to_string()),
            score,
            if i == run.best_index { "  <= best" } else { "" }
        );
    }
    println!(
        "\nbest pipeline: {}  (validation {:.3})",
        run.best().spec.describe(),
        run.best_score()
    );
    Ok(())
}

/// Starts the batched prediction service over a model file and answers
/// requests read from stdin (one CSV path per line) until EOF.
fn cmd_serve(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    let model_path = require(flag, "--model")?;
    let workers: usize = flag("--workers").and_then(|v| v.parse().ok()).unwrap_or(2);
    let batch: usize = flag("--batch").and_then(|v| v.parse().ok()).unwrap_or(8);
    let k: usize = flag("--k").and_then(|v| v.parse().ok()).unwrap_or(3);
    let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let task = parse_task(flag("--task").as_deref())?;

    let model = TrainedModel::open(&model_path)?;
    eprintln!(
        "serving {model_path} ({} datasets) on {workers} worker(s), batch ≤ {batch}",
        model.catalog_len()
    );
    let server = ServeHandle::start(
        model.share(),
        ServeConfig::default()
            .with_workers(workers)
            .with_max_batch(batch),
    );
    eprintln!("enter one CSV path per line (EOF to stop):");
    for line in std::io::stdin().lines() {
        let line = line?;
        let path = line.trim();
        if path.is_empty() {
            continue;
        }
        let table = match read_table(Path::new(path)) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{path}: cannot read table: {e}");
                continue;
            }
        };
        match server.predict(ServeRequest {
            table,
            task,
            k,
            seed,
        }) {
            Ok(response) => {
                println!(
                    "{path}: nearest {} ({}, batch of {})",
                    response.neighbour,
                    if response.cached {
                        "cached"
                    } else {
                        "computed"
                    },
                    response.batch_size
                );
                for (i, (s, score)) in response.skeletons.iter().enumerate() {
                    let mut stages: Vec<&str> = s.transformers.iter().map(|t| t.name()).collect();
                    stages.push(s.estimator.name());
                    println!(
                        "  {}. {}   (generation score {score:.2})",
                        i + 1,
                        stages.join(" > ")
                    );
                }
            }
            Err(e) => eprintln!("{path}: {e}"),
        }
    }
    let stats = server.shutdown();
    eprintln!(
        "served {} request(s) in {} batch(es); cache {}/{} hit(s)",
        stats.served,
        stats.batches,
        stats.cache.hits,
        stats.cache.hits + stats.cache.misses
    );
    Ok(())
}

/// Generates a synthetic corpus (including intentionally malformed and
/// helper-wrapped scripts), analyzes every script with the recovering
/// analyzer, and verifies the graph-lint invariants on every graph.
fn cmd_lint_corpus(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
    use kgpip_codegraph::{
        analyze_with_diagnostics, filter_graph, lint_code_graph, lint_graph4ml,
        lint_pipeline_graph, lint_reduction, Graph4Ml, Severity,
    };

    let n_datasets: usize = flag("--datasets").and_then(|v| v.parse().ok()).unwrap_or(4);
    let scripts_per_dataset: usize = flag("--scripts-per-dataset")
        .and_then(|v| v.parse().ok())
        .unwrap_or(50);
    let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let malformed_fraction: f64 = flag("--malformed-fraction")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    let helper_fraction: f64 = flag("--helper-fraction")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);

    let profiles: Vec<DatasetProfile> = (0..n_datasets)
        .map(|i| {
            let mut p = DatasetProfile::new(format!("lintds_{i}"), i % 2 == 1);
            p.has_missing = i % 2 == 0;
            p.has_categorical = i % 3 == 0;
            p
        })
        .collect();
    let cfg = CorpusConfig {
        scripts_per_dataset,
        unsupported_fraction: 0.2,
        helper_fraction,
        malformed_fraction,
        seed,
        ..CorpusConfig::default()
    };
    let scripts = generate_corpus(&profiles, &cfg);

    let mut graph4ml = Graph4Ml::new();
    let mut violations = Vec::new();
    let mut n_error_diags = 0usize;
    let mut n_warning_diags = 0usize;
    let mut scripts_with_diags = 0usize;
    let mut shown = 0usize;
    for (i, record) in scripts.iter().enumerate() {
        let (raw, diags) = analyze_with_diagnostics(&record.source);
        if !diags.is_empty() {
            scripts_with_diags += 1;
        }
        for d in &diags {
            match d.severity {
                Severity::Error => n_error_diags += 1,
                Severity::Warning => n_warning_diags += 1,
            }
            if shown < 8 {
                println!("script #{i} ({}): {d}", record.dataset);
                shown += 1;
            }
        }
        let filtered = filter_graph(&raw);
        violations.extend(lint_code_graph(&raw));
        violations.extend(lint_pipeline_graph(&filtered));
        violations.extend(lint_reduction(&raw, &filtered));
        if filtered.skeleton().is_some() {
            graph4ml.add_pipeline(&record.dataset, &filtered);
        }
    }
    violations.extend(lint_graph4ml(&graph4ml));

    println!(
        "lint-corpus: {} scripts over {} datasets (seed {seed})",
        scripts.len(),
        profiles.len()
    );
    println!(
        "  recovered diagnostics: {n_error_diags} errors + {n_warning_diags} warnings across {scripts_with_diags} scripts"
    );
    println!(
        "  graph4ml: {} pipelines, {} nodes, {} edges",
        graph4ml.pipelines().len(),
        graph4ml.total_nodes(),
        graph4ml.total_edges()
    );
    if violations.is_empty() {
        println!("  invariant violations: 0");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("  violation: {v}");
        }
        Err(format!("{} graph invariant violation(s)", violations.len()).into())
    }
}

/// Runs the kgpip-xlint house rules over the workspace sources and exits
/// non-zero if any unsuppressed diagnostic remains.
fn cmd_xlint(args: &[String], flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    use kgpip_xlint::{lint_workspace, WorkspaceConfig};
    let config = match flag("--config") {
        Some(path) => WorkspaceConfig::from_json(&std::fs::read_to_string(&path)?)?,
        None => WorkspaceConfig::house(),
    };
    let root = flag("--root").unwrap_or_else(|| ".".to_string());
    let report = lint_workspace(Path::new(&root), &config)?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_human());
    }
    if report.is_clean() {
        Ok(())
    } else {
        Err(format!("{} unsuppressed xlint finding(s)", report.diagnostics.len()).into())
    }
}

/// Builds, queries, and inspects standalone `.kgvi` similarity-catalog
/// files (`kgpip_embeddings::MappedIndex`).
// The CLI prints build times and queries/sec for humans; wall-clock here
// never reaches a compute result.
#[allow(clippy::disallowed_methods)]
fn cmd_index(args: &[String], flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    use kgpip_benchdata::{recall_at_k, synthetic_embeddings};
    use kgpip_embeddings::{HnswConfig, MappedIndex, VectorIndex};
    use std::time::Instant;

    match args.get(1).map(String::as_str) {
        Some("build") => {
            let out = require(flag, "--out")?;
            let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
            let tier = flag("--tier").unwrap_or_else(|| "auto".into());
            let started = Instant::now();
            let mut index = if let Some(model_path) = flag("--model") {
                TrainedModel::open(&model_path)?.index().clone()
            } else {
                let n: usize = require(flag, "--n")?
                    .parse()
                    .map_err(|e| format!("--n: {e}"))?;
                let dim: usize = flag("--dim").and_then(|v| v.parse().ok()).unwrap_or(32);
                let clusters: usize = flag("--clusters")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(64);
                let mut idx = VectorIndex::new();
                for (i, v) in synthetic_embeddings(n, dim, clusters, seed)
                    .into_iter()
                    .enumerate()
                {
                    idx.add(format!("t{i}"), v);
                }
                idx
            };
            let want_hnsw = match tier.as_str() {
                "hnsw" => true,
                "exact" => false,
                "auto" => index.len() >= VectorIndex::HNSW_AUTO_THRESHOLD,
                other => return Err(format!("unknown tier `{other}` (auto|exact|hnsw)").into()),
            };
            if want_hnsw {
                index.build_hnsw(HnswConfig {
                    seed,
                    ..HnswConfig::default()
                });
            }
            if let Some(spec) = flag("--pq") {
                let config = parse_pq_spec(&spec, seed)?;
                index.quantize(config).map_err(|e| format!("--pq: {e}"))?;
            }
            index.write_mapped(&out)?;
            let bytes = std::fs::metadata(&out).map(|m| m.len()).unwrap_or(0);
            eprintln!(
                "index written to {out}: {} vectors, tier {}{}, {bytes} bytes, {:.2}s",
                index.len(),
                if want_hnsw { "hnsw" } else { "exact" },
                if index.is_quantized() { "+pq" } else { "" },
                started.elapsed().as_secs_f64()
            );
            Ok(())
        }
        Some("query") => {
            let path = require(flag, "--index")?;
            let k: usize = flag("--k").and_then(|v| v.parse().ok()).unwrap_or(10);
            let queries: usize = flag("--queries")
                .and_then(|v| v.parse().ok())
                .unwrap_or(200);
            let seed: u64 = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(1);
            let mapped = MappedIndex::open(&path)?;
            if mapped.is_empty() {
                return Err("index holds no vectors".into());
            }
            // A distinct derived seed keeps probes off the catalog points
            // even when both were synthesized with the same base seed.
            let probes = synthetic_embeddings(queries, mapped.dim(), 32, seed ^ 0x9e37_79b9);
            let started = Instant::now();
            let mut retrieved = 0usize;
            for q in &probes {
                retrieved += mapped.top_k(q, k).len();
            }
            let elapsed = started.elapsed().as_secs_f64();
            println!(
                "{} probes x top-{k} over {} vectors (tier {}{}): {:.0} queries/sec ({retrieved} results)",
                probes.len(),
                mapped.len(),
                if mapped.has_hnsw() { "hnsw" } else { "exact" },
                if mapped.is_quantized() { "+pq" } else { "" },
                probes.len() as f64 / elapsed.max(1e-9),
            );
            if args.iter().any(|a| a == "--recall") {
                let mut total = 0.0;
                for q in &probes {
                    total += recall_at_k(&mapped.top_k_exact(q, k), &mapped.top_k(q, k), k);
                }
                println!(
                    "recall@{k} vs exact scan: {:.3}",
                    total / probes.len() as f64
                );
            }
            Ok(())
        }
        Some("stats") => {
            let path = require(flag, "--index")?;
            let bytes = std::fs::metadata(&path)?.len();
            let mapped = MappedIndex::open(&path)?;
            println!(
                "{path}: {} vectors x {} dims, {bytes} bytes on disk",
                mapped.len(),
                mapped.dim()
            );
            match mapped.hnsw() {
                Some(h) => println!(
                    "  tier: hnsw — {} layers, {} links, m={}, ef_construction={}, ef_search={}, seed={}",
                    h.num_layers(),
                    h.num_links(),
                    h.config().m,
                    h.config().ef_construction,
                    h.config().ef_search,
                    h.config().seed
                ),
                None => println!("  tier: exact (no graph section)"),
            }
            let stats = mapped.stats();
            println!(
                "  resident: {} bytes total — vectors {}, hnsw {}, pq {}",
                stats.resident_bytes(),
                stats.vector_bytes,
                stats.hnsw_bytes,
                stats.pq_bytes
            );
            if let Some(book) = mapped.pq_book() {
                println!(
                    "  pq: m={}, ksub={}, rerank={}, seed={} — tier scans read {} bytes (vs {} full-precision)",
                    book.m(),
                    book.ksub(),
                    book.rerank(),
                    book.seed(),
                    stats.scan_bytes(),
                    stats.vector_bytes
                );
            }
            Ok(())
        }
        _ => Err("usage: kgpip-cli index <build|query|stats> [flags]".into()),
    }
}

/// Parses a `--pq m=8,rerank=4` geometry spec. Both keys are optional
/// (defaults from [`kgpip_embeddings::PqConfig`]); the codebook seed is
/// the build's `--seed`.
fn parse_pq_spec(
    spec: &str,
    seed: u64,
) -> Result<kgpip_embeddings::PqConfig, Box<dyn std::error::Error>> {
    let mut config = kgpip_embeddings::PqConfig {
        seed,
        ..kgpip_embeddings::PqConfig::default()
    };
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--pq: expected key=value, got `{part}`"))?;
        let parsed: usize = value
            .trim()
            .parse()
            .map_err(|e| format!("--pq {key}: {e}"))?;
        match key.trim() {
            "m" => config.m = parsed,
            "rerank" => config.rerank = parsed,
            other => return Err(format!("--pq: unknown key `{other}` (m|rerank)").into()),
        }
    }
    Ok(config)
}

/// End-to-end demo on synthetic data; no files needed.
fn cmd_demo(flag: &impl Fn(&str) -> Option<String>) -> CliResult {
    use kgpip_benchdata::{training_setup, ScaleConfig};
    use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig};
    let budget: f64 = flag("--budget-secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(5.0);
    let setup = training_setup(2, &ScaleConfig::default(), 0);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 10,
            ..CorpusConfig::default()
        },
    );
    eprintln!("demo: training KGpip on a synthetic corpus...");
    let parallelism: usize = flag("--parallelism")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let model = Kgpip::train(
        &scripts,
        &setup.tables,
        KgpipConfig::default().with_parallelism(parallelism),
    )?;
    let entry = kgpip_benchdata::benchmark()
        .iter()
        .find(|e| e.name == "phoneme")
        .expect("catalog entry");
    let ds = kgpip_benchdata::generate_dataset(entry, &ScaleConfig::default(), 7);
    let mut backend = Flaml::new(0);
    let run = model.run(
        &ds,
        &mut backend,
        TimeBudget::seconds(budget).with_trial_cap(60),
    )?;
    println!(
        "demo best pipeline on `{}`: {} (validation {:.3}; nearest seen: {})",
        entry.name,
        run.best().spec.describe(),
        run.best_score(),
        run.neighbour
    );
    Ok(())
}
