//! # kgpip-repro
//!
//! A from-scratch Rust reproduction of *"A Scalable AutoML Approach Based
//! on Graph Neural Networks"* (KGpip, Helali et al., VLDB 2022).
//!
//! This root crate is a convenience facade: it re-exports the workspace
//! crates and hosts the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`). See `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured record.
//!
//! ## Crate map
//!
//! | crate | role |
//! |---|---|
//! | [`kgpip`] | the KGpip system (Figure 1): offline training, online prediction |
//! | [`kgpip_tabular`] | dataframe substrate: typed columns, CSV, inference, splits |
//! | [`kgpip_learners`] | classical-ML zoo: 13 learners, 10 preprocessors, metrics |
//! | [`kgpip_nn`] | tensor + autodiff micro-framework for the GNN |
//! | [`kgpip_codegraph`] | mini-Python static analyzer, graph filter, Graph4ML, corpus |
//! | [`kgpip_embeddings`] | content-based dataset embeddings, similarity index, t-SNE |
//! | [`kgpip_graphgen`] | the deep generative model of graphs (Li et al. 2018) |
//! | [`kgpip_hpo`] | FLAML-style and Auto-Sklearn-style HPO engines, AL baseline |
//! | [`kgpip_benchdata`] | synthetic reproduction of the 77-dataset benchmark |
//! | [`kgpip_bench`] | the experiment harness regenerating every table and figure |
//! | [`kgpip_serve`] | batched concurrent prediction service over a trained model |
//! | [`kgpip_xlint`] | workspace static-analysis pass enforcing the house invariants |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kgpip;
pub use kgpip_bench;
pub use kgpip_benchdata;
pub use kgpip_codegraph;
pub use kgpip_embeddings;
pub use kgpip_graphgen;
pub use kgpip_hpo;
pub use kgpip_learners;
pub use kgpip_nn;
pub use kgpip_serve;
pub use kgpip_tabular;
pub use kgpip_xlint;
