//! File-level workflow: write a corpus + tables to disk the way the CLI
//! expects, train through `Kgpip::train` from those files, save, reload,
//! and run on a CSV dataset — the full downstream-user path without
//! spawning a subprocess.

use kgpip::{Kgpip, KgpipConfig};
use kgpip_benchdata::{training_setup, ScaleConfig};
use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, ScriptRecord};
use kgpip_graphgen::GeneratorConfig;
use kgpip_hpo::{Flaml, TimeBudget};
use kgpip_tabular::{csv, Dataset};
use std::path::PathBuf;

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("kgpip_cli_files_test").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn csv_on_disk_roundtrip_feeds_training_and_prediction() {
    let scale = ScaleConfig {
        max_rows: 120,
        max_cols: 6,
    };
    let setup = training_setup(1, &scale, 3);
    let scripts = generate_corpus(
        &setup.profiles,
        &CorpusConfig {
            scripts_per_dataset: 5,
            unsupported_fraction: 0.0,
            ..CorpusConfig::default()
        },
    );

    // Materialize scripts and tables as the CLI's directory layout.
    let scripts_dir = scratch_dir("scripts");
    let tables_dir = scratch_dir("tables");
    for (i, record) in scripts.iter().enumerate() {
        let ds_dir = scripts_dir.join(&record.dataset);
        std::fs::create_dir_all(&ds_dir).unwrap();
        std::fs::write(ds_dir.join(format!("nb_{i}.py")), &record.source).unwrap();
    }
    for (name, table) in &setup.tables {
        std::fs::write(
            tables_dir.join(format!("{name}.csv")),
            csv::write_csv(table),
        )
        .unwrap();
    }

    // Read everything back through the file layer.
    let mut scripts_back = Vec::new();
    for entry in std::fs::read_dir(&scripts_dir).unwrap() {
        let entry = entry.unwrap();
        let dataset = entry.file_name().to_string_lossy().to_string();
        for file in std::fs::read_dir(entry.path()).unwrap() {
            let source = std::fs::read_to_string(file.unwrap().path()).unwrap();
            scripts_back.push(ScriptRecord {
                dataset: dataset.clone(),
                source,
            });
        }
    }
    let mut tables_back = Vec::new();
    for entry in std::fs::read_dir(&tables_dir).unwrap() {
        let path = entry.unwrap().path();
        let name = path.file_stem().unwrap().to_string_lossy().to_string();
        let frame = csv::read_frame(&std::fs::read_to_string(&path).unwrap()).unwrap();
        tables_back.push((name, frame));
    }
    assert_eq!(scripts_back.len(), scripts.len());
    assert_eq!(tables_back.len(), setup.tables.len());

    // Train from the file-loaded corpus, persist, reload, run on a CSV.
    let model = Kgpip::train(
        &scripts_back,
        &tables_back,
        KgpipConfig::default().with_generator(GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            epochs: 2,
            ..GeneratorConfig::default()
        }),
    )
    .unwrap();
    let model_path = scratch_dir("model").join("model.json");
    #[allow(deprecated)]
    model.save(&model_path).unwrap();
    #[allow(deprecated)]
    let model = Kgpip::load(&model_path).unwrap();

    // An "unseen" CSV with a target column, as a user would provide.
    let mut csv_text = String::from("f0,f1,label\n");
    for i in 0..160 {
        let a = (i % 10) as f64;
        let b = ((i * 3) % 10) as f64;
        let label = u8::from((a > 4.5) != (b > 4.5));
        csv_text.push_str(&format!("{a},{b},{label}\n"));
    }
    let data_path = scratch_dir("data").join("unseen.csv");
    std::fs::write(&data_path, &csv_text).unwrap();
    let frame = csv::read_frame(&std::fs::read_to_string(&data_path).unwrap()).unwrap();
    let ds = Dataset::from_frame("unseen", frame, "label").unwrap();

    let mut backend = Flaml::new(0);
    let run = model
        .run(
            &ds,
            &mut backend,
            TimeBudget::seconds(2.0).with_trial_cap(20),
        )
        .unwrap();
    assert!(run.best_score() > 0.5, "score {}", run.best_score());

    std::fs::remove_dir_all(std::env::temp_dir().join("kgpip_cli_files_test")).ok();
}
