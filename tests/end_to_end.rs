//! Whole-system integration: trained KGpip against both HPO backends on
//! synthetic benchmark datasets, plus the AL failure pattern.

use kgpip_bench::runner::{build_model, run_on_dataset, ExperimentConfig, SystemKind};
use kgpip_benchdata::{benchmark, generate_dataset};
use kgpip_hpo::{Al, AutoSklearn, Flaml, Optimizer, TimeBudget};
use kgpip_tabular::train_test_split;

fn cfg() -> ExperimentConfig {
    ExperimentConfig::quick()
}

#[test]
fn kgpip_runs_with_both_backends_on_every_task_kind() {
    let cfg = cfg();
    let model = build_model(&cfg);
    // One binary, one multi-class, one regression dataset.
    let picks = ["breast_cancer_wisconsin", "car_evaluation", "houses"];
    for name in picks {
        let entry = benchmark().iter().find(|e| e.name == name).unwrap();
        for system in [SystemKind::KgpipFlaml, SystemKind::KgpipAutoSklearn] {
            let run = run_on_dataset(system, Some(&model), entry, &cfg, 0);
            let score = run
                .score
                .unwrap_or_else(|| panic!("{}: {} failed", system.name(), name));
            assert!(
                (0.0..=1.0).contains(&score),
                "{name}/{}: score {score}",
                system.name()
            );
            let kg = run.kgpip.expect("kgpip systems report run details");
            assert!(kg.best_rank >= 1);
            assert!(!kg.estimators.is_empty());
            assert!(kg.generation_secs < 10.0, "generation must be near-instant");
        }
    }
}

#[test]
fn al_fails_on_text_and_many_class_datasets_but_works_on_clean_numeric() {
    let cfg = cfg();
    let mut failures = 0;
    let mut successes = 0;
    for entry in benchmark().iter().filter(|e| e.used_by_al) {
        let ds = generate_dataset(entry, &cfg.scale, 0);
        let (train, _) = train_test_split(&ds, 0.3, 0).unwrap();
        let mut al = Al::new(0);
        match al.optimize(&train, &TimeBudget::seconds(0.5)) {
            Ok(_) => successes += 1,
            Err(_) => failures += 1,
        }
    }
    // The paper's Figure 6 exists precisely because AL fails on a chunk of
    // its own benchmark while working on the rest.
    assert!(
        failures >= 3,
        "AL should fail on several datasets, got {failures}"
    );
    assert!(
        successes >= 5,
        "AL should work on several datasets, got {successes}"
    );
}

#[test]
fn budget_split_is_respected_end_to_end() {
    let cfg = cfg();
    let model = build_model(&cfg);
    let entry = benchmark().iter().find(|e| e.name == "phoneme").unwrap();
    let ds = generate_dataset(entry, &cfg.scale, 1);
    let (train, _) = train_test_split(&ds, 0.3, 1).unwrap();
    let total = 2.0f64;
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let mut backend = Flaml::new(0);
    let run = model
        .run(&train, &mut backend, TimeBudget::seconds(total))
        .unwrap();
    let elapsed = started.elapsed().as_secs_f64();
    // (T - t)/K splitting plus per-trial overshoot: the run must finish
    // within a small multiple of the budget.
    assert!(
        elapsed < total * 3.0 + 2.0,
        "run took {elapsed:.1}s for a {total:.1}s budget"
    );
    assert!(run.results.len() <= model.config().top_k);
}

#[test]
fn capability_document_gates_skeletons() {
    let cfg = cfg();
    let model = build_model(&cfg);
    let entry = benchmark().iter().find(|e| e.name == "kc1").unwrap();
    let ds = generate_dataset(entry, &cfg.scale, 2);
    // A backend that only supports knn: every predicted skeleton must be
    // knn or the fallback.
    let narrow = Flaml::with_estimators(0, vec![kgpip_learners::EstimatorKind::Knn]);
    let caps = narrow.capabilities();
    let (skeletons, _) = model.predict_skeletons(&ds, 3, &caps, 0).unwrap();
    for (s, _) in &skeletons {
        assert!(
            s.estimator == kgpip_learners::EstimatorKind::Knn
                || s.estimator == kgpip_learners::EstimatorKind::XgBoost,
            "skeleton {} escaped the capability gate",
            s.estimator.name()
        );
    }
    // The full document admits everything the generator emits.
    let full = AutoSklearn::new(0).capabilities();
    let (skeletons, _) = model.predict_skeletons(&ds, 3, &full, 0).unwrap();
    assert!(!skeletons.is_empty());
}

#[test]
fn deterministic_reproduction_across_identical_configs() {
    let cfg = cfg();
    let model_a = build_model(&cfg);
    let model_b = build_model(&cfg);
    let entry = benchmark().iter().find(|e| e.name == "quake").unwrap();
    let ds = generate_dataset(entry, &cfg.scale, 3);
    let caps = Flaml::new(0).capabilities();
    let (sa, na) = model_a.predict_skeletons(&ds, 3, &caps, 7).unwrap();
    let (sb, nb) = model_b.predict_skeletons(&ds, 3, &caps, 7).unwrap();
    assert_eq!(na, nb, "nearest neighbour must be deterministic");
    let names = |v: &[(kgpip_hpo::Skeleton, f64)]| {
        v.iter()
            .map(|(s, _)| s.estimator.name())
            .collect::<Vec<_>>()
    };
    assert_eq!(names(&sa), names(&sb), "predictions must be deterministic");
}
