//! Cross-crate contracts of the parallel trial-evaluation engine:
//! sequential bit-reproducibility, exact budget admission under thread
//! contention, and end-to-end parallel runs through the public prelude.

use kgpip::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

fn xor_dataset(n: usize) -> Dataset {
    let rows: Vec<(f64, f64)> = (0..n)
        .map(|i| {
            (
                f64::from(i % 2 == 0) + (i % 7) as f64 * 0.01,
                f64::from((i / 2) % 2 == 0) + (i % 5) as f64 * 0.01,
            )
        })
        .collect();
    let y: Vec<f64> = rows
        .iter()
        .map(|(a, b)| f64::from((*a > 0.5) != (*b > 0.5)))
        .collect();
    let f = DataFrame::from_columns(vec![
        (
            "a".to_string(),
            Column::from_f64(rows.iter().map(|r| r.0).collect::<Vec<_>>()),
        ),
        (
            "b".to_string(),
            Column::from_f64(rows.iter().map(|r| r.1).collect::<Vec<_>>()),
        ),
    ])
    .unwrap();
    Dataset::new("xor", f, y, Task::Binary).unwrap()
}

/// A trial-capped budget with slack wall clock, so expiry — and therefore
/// the whole search trajectory — is deterministic.
fn capped(trials: usize) -> TimeBudget {
    TimeBudget::seconds(600.0).with_trial_cap(trials)
}

#[test]
fn engine_at_parallelism_one_reproduces_the_sequential_history() {
    let ds = xor_dataset(240);
    for seed in [0u64, 7, 42] {
        let expected = Flaml::new(seed)
            .optimize_sequential(&ds, &capped(20))
            .unwrap();
        let mut engine = Flaml::new(seed);
        let actual = engine.optimize(&ds, &capped(20)).unwrap();
        assert_eq!(actual.trials, expected.trials, "seed {seed}");
        assert_eq!(
            actual.valid_score.to_bits(),
            expected.valid_score.to_bits(),
            "seed {seed}"
        );
        assert_eq!(actual.spec, expected.spec, "seed {seed}");
        assert_eq!(actual.history.len(), expected.history.len());
        for (i, (a, e)) in actual.history.iter().zip(&expected.history).enumerate() {
            assert_eq!(a.spec, e.spec, "seed {seed}, trial {i}");
            assert_eq!(
                a.score.map(f64::to_bits),
                e.score.map(f64::to_bits),
                "seed {seed}, trial {i}"
            );
        }
    }
}

#[test]
fn autosklearn_runs_are_repeatable_at_parallelism_one() {
    let ds = xor_dataset(200);
    let run = |seed: u64| {
        let mut engine = AutoSklearn::new(seed);
        engine.optimize(&ds, &capped(12)).unwrap()
    };
    let a = run(3);
    let b = run(3);
    assert_eq!(a.trials, b.trials);
    assert_eq!(a.valid_score.to_bits(), b.valid_score.to_bits());
    for (x, y) in a.history.iter().zip(&b.history) {
        assert_eq!(x.spec, y.spec);
        assert_eq!(x.score.map(f64::to_bits), y.score.map(f64::to_bits));
    }
}

#[test]
fn budget_gate_never_admits_past_the_cap_under_contention() {
    let budget = capped(37);
    let gate = BudgetGate::new(&budget);
    let admitted = AtomicUsize::new(0);
    let workers: Vec<usize> = (0..8).collect();
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    pool.install(|| {
        workers.par_iter().for_each(|_| {
            for _ in 0..100 {
                if gate.admit() {
                    admitted.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    // 800 concurrent attempts, exactly 37 admissions, and the shared
    // trial pool agrees with the gate's own count.
    assert_eq!(admitted.load(Ordering::Relaxed), 37);
    assert_eq!(gate.admitted(), 37);
    assert_eq!(budget.trials_used(), 37);
}

#[test]
fn parallel_search_respects_the_trial_cap_exactly() {
    let ds = xor_dataset(240);
    let budget = capped(16);
    let mut engine = Flaml::new(5).with_parallelism(4);
    let result = engine.optimize(&ds, &budget).unwrap();
    assert!(result.trials >= 1);
    assert!(result.trials <= 16);
    assert_eq!(budget.trials_used(), result.trials);
    assert!(result.valid_score.is_finite());
}

#[test]
fn optimizer_trait_exposes_the_parallelism_knobs() {
    let mut engine: Box<dyn Optimizer + Send> = Box::new(Flaml::new(0));
    assert_eq!(engine.parallelism(), 1);
    engine.set_parallelism(6);
    assert_eq!(engine.parallelism(), 6);
    // Cloning copies configuration, including the knob.
    let clone = engine.clone_boxed();
    assert_eq!(clone.parallelism(), 6);
    // Clamped: 0 means sequential, not "no trials".
    engine.set_parallelism(0);
    assert_eq!(engine.parallelism(), 1);
}
