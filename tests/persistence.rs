//! Model persistence: a trained KGpip saved to JSON must reload and make
//! identical predictions — through the deprecated `Kgpip` shims *and*
//! through the new universal [`TrainedModel::open`] loader, proving
//! JSON-era model files load into the new artifact unchanged.
#![allow(deprecated)]

use kgpip::{Kgpip, TrainedModel};
use kgpip_bench::runner::{build_model, ExperimentConfig};
use kgpip_benchdata::{benchmark, generate_dataset};
use kgpip_hpo::{Flaml, Optimizer};

#[test]
fn save_load_roundtrip_preserves_predictions() {
    let cfg = ExperimentConfig::quick();
    let model = build_model(&cfg);
    let json = model.to_json().unwrap();
    assert!(json.len() > 1000, "serialized model carries real state");
    let restored = Kgpip::from_json(&json).unwrap();

    // Identical stats.
    assert_eq!(
        model.stats().valid_pipelines,
        restored.stats().valid_pipelines
    );
    assert_eq!(model.stats().datasets, restored.stats().datasets);

    // Identical predictions on several datasets.
    let caps = Flaml::new(0).capabilities();
    for entry in benchmark().iter().take(5) {
        let ds = generate_dataset(entry, &cfg.scale, entry.id as u64);
        let (a, na) = model.predict_skeletons(&ds, 3, &caps, 42).unwrap();
        let (b, nb) = restored.predict_skeletons(&ds, 3, &caps, 42).unwrap();
        assert_eq!(
            na, nb,
            "{}: neighbour must survive the roundtrip",
            entry.name
        );
        let names = |v: &[(kgpip_hpo::Skeleton, f64)]| {
            v.iter()
                .map(|(s, _)| (s.estimator.name(), s.transformers.len()))
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&a), names(&b), "{}", entry.name);
    }
}

#[test]
fn save_to_disk_and_reload() {
    let cfg = ExperimentConfig::quick();
    let model = build_model(&cfg);
    let dir = std::env::temp_dir().join("kgpip_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    model.save(&path).unwrap();
    let restored = Kgpip::load(&path).unwrap();
    assert_eq!(
        model.graph4ml().pipelines().len(),
        restored.graph4ml().pipelines().len()
    );
    std::fs::remove_file(&path).ok();
}

/// A JSON-era model file must load into the new `TrainedModel` artifact
/// with *bit-identical* prediction behaviour — the compatibility contract
/// of the API split.
#[test]
fn json_era_file_opens_as_trained_model_unchanged() {
    let cfg = ExperimentConfig::quick();
    let model = build_model(&cfg);
    let dir = std::env::temp_dir().join("kgpip_persistence_compat_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    model.save(&path).unwrap();

    let artifact = TrainedModel::open(&path).unwrap();
    assert_eq!(artifact.catalog_len(), model.artifact().catalog_len());
    assert!(artifact.catalog_len() > 0);
    let caps = Flaml::new(0).capabilities();
    for entry in benchmark().iter().take(3) {
        let ds = generate_dataset(entry, &cfg.scale, entry.id as u64);
        let (a, na) = model.predict_skeletons(&ds, 3, &caps, 42).unwrap();
        let (b, nb) = artifact.predict_skeletons(&ds, 3, &caps, 42).unwrap();
        assert_eq!(na, nb, "{}", entry.name);
        assert_eq!(a.len(), b.len(), "{}", entry.name);
        for ((s1, g1), (s2, g2)) in a.iter().zip(&b) {
            assert_eq!(s1, s2, "{}", entry.name);
            assert_eq!(g1.to_bits(), g2.to_bits(), "{}", entry.name);
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_rejects_garbage() {
    assert!(Kgpip::from_json("{not json").is_err());
    assert!(Kgpip::load("/nonexistent/path/model.json").is_err());
    assert!(TrainedModel::open("/nonexistent/path/model.kgps").is_err());
}
