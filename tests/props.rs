//! Property-based tests across crate boundaries.

use kgpip_learners::estimators::{build_estimator, EstimatorKind, Params};
use kgpip_learners::pipeline::{Pipeline, PipelineSpec};
use kgpip_learners::{Matrix, TransformerKind};
use kgpip_tabular::{csv, Column, DataFrame, Dataset, Task};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// CSV round-tripping
// ---------------------------------------------------------------------------

/// Cells that survive a CSV round trip textually (no leading/trailing
/// whitespace — the reader trims for numeric parsing only, but categorical
/// values keep whitespace; we exclude ambiguous missing markers).
fn csv_cell() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-zA-Z0-9 ,\"'._-]{1,20}")
        .unwrap()
        .prop_filter("not a missing marker or numeric", |s| {
            let t = s.trim();
            !t.is_empty()
                && t == s
                && t.parse::<f64>().is_err()
                && !kgpip_tabular::infer::is_missing_marker(t)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_preserves_string_cells(
        rows in proptest::collection::vec(
            proptest::collection::vec(csv_cell(), 3),
            1..20,
        )
    ) {
        let mut text = String::from("a,b,c\n");
        for row in &rows {
            let escaped: Vec<String> = row.iter().map(|cell| {
                if cell.contains(',') || cell.contains('"') {
                    format!("\"{}\"", cell.replace('"', "\"\""))
                } else {
                    cell.clone()
                }
            }).collect();
            text.push_str(&escaped.join(","));
            text.push('\n');
        }
        let frame = csv::read_frame(&text).unwrap();
        prop_assert_eq!(frame.num_rows(), rows.len());
        let rewritten = csv::write_csv(&frame);
        let frame2 = csv::read_frame(&rewritten).unwrap();
        for (c, name) in frame.names().iter().enumerate() {
            let col1 = frame.column(name).unwrap();
            let col2 = frame2.column_at(c);
            for r in 0..frame.num_rows() {
                prop_assert_eq!(col1.as_string(r), col2.as_string(r));
            }
        }
    }

    #[test]
    fn numeric_csv_roundtrip_is_lossless(
        values in proptest::collection::vec(-1e6f64..1e6, 1..40)
    ) {
        let mut text = String::from("x\n");
        for v in &values {
            text.push_str(&format!("{v}\n"));
        }
        let frame = csv::read_frame(&text).unwrap();
        let col = frame.column("x").unwrap();
        for (r, v) in values.iter().enumerate() {
            prop_assert_eq!(col.as_f64(r), Some(*v));
        }
    }

    // -----------------------------------------------------------------------
    // Estimator construction from arbitrary sampled parameter values
    // -----------------------------------------------------------------------

    #[test]
    fn every_estimator_builds_from_any_in_range_params(
        seed in 0u64..1_000,
        kind_idx in 0usize..EstimatorKind::ALL.len(),
    ) {
        use rand::SeedableRng;
        let kind = EstimatorKind::ALL[kind_idx];
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let params = kgpip_hpo::space::sample_config(kind, &mut rng);
        prop_assert!(build_estimator(kind, &params).is_ok());
    }

    // -----------------------------------------------------------------------
    // Pipelines over arbitrary (small) datasets
    // -----------------------------------------------------------------------

    #[test]
    fn tree_pipeline_survives_arbitrary_numeric_data(
        raw in proptest::collection::vec(
            proptest::collection::vec(-100.0f64..100.0, 2),
            12..40,
        ),
        labels in proptest::collection::vec(0usize..2, 40),
    ) {
        let n = raw.len();
        let x0: Vec<f64> = raw.iter().map(|r| r[0]).collect();
        let x1: Vec<f64> = raw.iter().map(|r| r[1]).collect();
        let y: Vec<f64> = labels[..n].iter().map(|&l| l as f64).collect();
        // Ensure both classes appear so stratification-ish code paths work.
        let mut y = y;
        y[0] = 0.0;
        y[1] = 1.0;
        let frame = DataFrame::from_columns(vec![
            ("a".to_string(), Column::from_f64(x0)),
            ("b".to_string(), Column::from_f64(x1)),
        ]).unwrap();
        let ds = Dataset::new("prop", frame, y, Task::Binary).unwrap();
        let mut p = Pipeline::from_spec(PipelineSpec::bare(EstimatorKind::DecisionTree)).unwrap();
        let score = p.fit_score(&ds, &ds).unwrap();
        prop_assert!((0.0..=1.0).contains(&score));
        let proba = p.predict_proba(&ds).unwrap();
        for r in 0..proba.rows() {
            let sum: f64 = proba.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn transformer_chains_never_produce_nan(
        chain in proptest::collection::vec(0usize..TransformerKind::ALL.len(), 0..4),
        rows in 10usize..40,
    ) {
        let x: Vec<f64> = (0..rows).map(|i| (i % 7) as f64).collect();
        let y: Vec<f64> = (0..rows).map(|i| (i % 2) as f64).collect();
        let frame = DataFrame::from_columns(vec![
            ("x".to_string(), Column::from_f64(x.clone())),
            ("x2".to_string(), Column::from_f64(x.iter().map(|v| v * 2.0).collect::<Vec<_>>())),
        ]).unwrap();
        let ds = Dataset::new("chain", frame, y, Task::Binary).unwrap();
        let spec = PipelineSpec {
            transformers: chain.iter().map(|&i| (TransformerKind::ALL[i], Params::new())).collect(),
            estimator: EstimatorKind::GaussianNb,
            params: Params::new(),
        };
        let mut p = Pipeline::from_spec(spec).unwrap();
        p.fit(&ds).unwrap();
        let preds = p.predict(&ds).unwrap();
        prop_assert!(preds.iter().all(|v| v.is_finite()));
    }

    // -----------------------------------------------------------------------
    // Graph generation invariants
    // -----------------------------------------------------------------------

    #[test]
    fn generated_graphs_always_respect_structural_invariants(
        seed in 0u64..200,
    ) {
        use kgpip_codegraph::OpVocab;
        use kgpip_graphgen::model::TypedGraph;
        use kgpip_graphgen::{GeneratorConfig, GraphGenerator};
        use rand::SeedableRng;
        let vocab = OpVocab::new();
        let generator = GraphGenerator::new(GeneratorConfig {
            hidden: 8,
            prop_rounds: 1,
            max_nodes: 9,
            max_edges_per_node: 2,
            ..GeneratorConfig::default()
        });
        let prefix = TypedGraph::conditioning_prefix(&vocab);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let g = generator.generate(&vec![0.3; 48], &prefix, 1.0, &mut rng);
        prop_assert!(g.graph.types.len() <= 9);
        prop_assert!(g.log_prob.is_finite());
        for &(f, t) in &g.graph.edges {
            prop_assert!(f < t, "edges flow forward");
            prop_assert!(t < g.graph.types.len());
        }
        let mut edges = g.graph.edges.clone();
        edges.sort_unstable();
        let len_before = edges.len();
        edges.dedup();
        prop_assert_eq!(edges.len(), len_before, "no duplicate edges");
    }

    // -----------------------------------------------------------------------
    // Matrix algebra sanity under arbitrary data
    // -----------------------------------------------------------------------

    #[test]
    fn solve_spd_solves_generated_systems(
        diag in proptest::collection::vec(0.5f64..10.0, 2..6),
        rhs_scale in -5.0f64..5.0,
    ) {
        let n = diag.len();
        // Build SPD matrix A = D + 0.1 * ones outer product.
        let mut a = Matrix::zeros(n, n);
        for (i, d) in diag.iter().enumerate() {
            for j in 0..n {
                let v = if i == j { d + 0.1 } else { 0.1 };
                a.set(i, j, v);
            }
        }
        let x_true: Vec<f64> = (0..n).map(|i| rhs_scale * (i as f64 + 1.0)).collect();
        let b = a.matvec(&x_true).unwrap();
        let x = kgpip_learners::matrix::solve_spd(&a, &b, 0.0).unwrap();
        for (xs, xt) in x.iter().zip(&x_true) {
            prop_assert!((xs - xt).abs() < 1e-6, "{xs} vs {xt}");
        }
    }
}
