//! Cross-crate integration: synthetic corpus → static analysis → filter →
//! Graph4ML → generator training — the paper's offline workflow end to
//! end, with the Table-3 filtering claims checked along the way.

use kgpip_codegraph::corpus::{generate_corpus, CorpusConfig, DatasetProfile};
use kgpip_codegraph::{analyze, filter_graph, Graph4Ml, OpVocab, PipelineOp};
use kgpip_graphgen::model::TypedGraph;
use kgpip_graphgen::{GeneratorConfig, GraphGenerator, TrainExample};

fn corpus() -> Vec<kgpip_codegraph::corpus::ScriptRecord> {
    let profiles = vec![
        DatasetProfile {
            has_missing: true,
            has_categorical: true,
            ..DatasetProfile::new("alpha", false)
        },
        DatasetProfile::new("beta", true),
    ];
    generate_corpus(
        &profiles,
        &CorpusConfig {
            scripts_per_dataset: 25,
            unsupported_fraction: 0.3,
            ..CorpusConfig::default()
        },
    )
}

#[test]
fn corpus_to_graph4ml_preserves_dataset_associations() {
    let scripts = corpus();
    let mut g4ml = Graph4Ml::new();
    for record in &scripts {
        let filtered = filter_graph(&analyze(&record.source).unwrap());
        if filtered.skeleton().is_some() {
            g4ml.add_pipeline(&record.dataset, &filtered);
        }
    }
    assert_eq!(g4ml.datasets().len(), 2);
    assert!(!g4ml.pipelines_for("alpha").is_empty());
    assert!(!g4ml.pipelines_for("beta").is_empty());
    // Every stored pipeline carries the dataset anchor and decodes.
    for (_, p) in g4ml.pipelines() {
        assert_eq!(p.ops[0], PipelineOp::Dataset);
        assert!(p.skeleton().is_some());
    }
}

#[test]
fn filtering_reduces_realistic_notebooks_by_over_90_percent() {
    // Kaggle notebooks are EDA-heavy (the paper's 72-line example script
    // yields ~1600 nodes); crank the noise to a realistic level.
    let scripts = generate_corpus(
        &[
            DatasetProfile::new("alpha", false),
            DatasetProfile::new("beta", true),
        ],
        &CorpusConfig {
            scripts_per_dataset: 25,
            unsupported_fraction: 0.3,
            eda_noise: 16,
            ..CorpusConfig::default()
        },
    );
    let mut raw_nodes = 0usize;
    let mut raw_edges = 0usize;
    let mut filt_nodes = 0usize;
    let mut filt_edges = 0usize;
    let mut usable = 0usize;
    for record in &scripts {
        let raw = analyze(&record.source).unwrap();
        let filtered = filter_graph(&raw);
        raw_nodes += raw.num_nodes();
        raw_edges += raw.num_edges();
        filt_nodes += filtered.num_nodes();
        filt_edges += filtered.num_edges();
        if filtered.skeleton().is_some() {
            usable += 1;
        }
    }
    let node_reduction = 1.0 - filt_nodes as f64 / raw_nodes as f64;
    let edge_reduction = 1.0 - filt_edges as f64 / raw_edges as f64;
    assert!(
        node_reduction > 0.9,
        "node reduction {node_reduction:.3} (paper: >= 0.966)"
    );
    assert!(edge_reduction > 0.95, "edge reduction {edge_reduction:.3}");
    // "a vast portion of the 11.7K programs" is unusable: with 30%
    // torch/keras scripts, usable count must be roughly the remainder.
    assert!(usable < scripts.len());
    assert!(usable as f64 > scripts.len() as f64 * 0.5);
}

#[test]
fn generator_learns_the_mined_corpus() {
    let scripts = corpus();
    let vocab = OpVocab::new();
    let examples: Vec<TrainExample> = scripts
        .iter()
        .filter_map(|record| {
            let filtered = filter_graph(&analyze(&record.source).ok()?);
            filtered.skeleton()?;
            let emb = if record.dataset == "alpha" {
                let mut e = vec![0.0; 48];
                e[0] = 1.0;
                e
            } else {
                let mut e = vec![0.0; 48];
                e[1] = 1.0;
                e
            };
            Some(TrainExample {
                dataset_embedding: emb,
                graph: TypedGraph::encode(&filtered.with_dataset_node(), &vocab),
            })
        })
        .collect();
    assert!(examples.len() > 20);
    let mut generator = GraphGenerator::new(GeneratorConfig {
        hidden: 16,
        prop_rounds: 1,
        epochs: 6,
        seed: 13,
        ..GeneratorConfig::default()
    });
    let losses = generator.train(&examples);
    assert!(
        losses.last().unwrap() < &(losses[0] * 0.8),
        "loss should drop: {losses:?}"
    );
    // Conditional generation produces decodable pipelines most of the time.
    // The sampling seed is pinned; it was re-pinned when `generate_top_k`
    // moved to one derived RNG stream per attempt (which changes the
    // candidate set drawn for any given seed, not its quality).
    let prefix = TypedGraph::conditioning_prefix(&vocab);
    let mut emb = vec![0.0; 48];
    emb[0] = 1.0;
    let graphs = generator.generate_top_k(&emb, &prefix, 5, 1.2, 27);
    let valid = graphs
        .iter()
        .filter(|g| g.graph.decode(&vocab).skeleton().is_some())
        .count();
    assert!(
        valid >= 2,
        "at least 2 of {} generated graphs valid",
        graphs.len()
    );
}
