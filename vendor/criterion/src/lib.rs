//! Offline drop-in subset of `criterion`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the benchmarking surface it uses: `Criterion`,
//! `benchmark_group`/`sample_size`/`bench_function`/`finish`,
//! `Bencher::iter`/`iter_batched`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Behaviour depends on how the binary is invoked. `cargo bench` passes
//! `--bench`, which enables real timing: each benchmark warms up, runs
//! `sample_size` timed samples, and prints mean/min/max per-iteration
//! times. `cargo test` runs the same binaries with no arguments; then
//! every benchmark executes exactly one iteration as a smoke test so the
//! suite stays fast while still exercising the bench code paths.
//! Statistical analysis, plots, and baselines are out of scope.

// Timing is this crate's entire job; exempt from the workspace clock ban.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// Whether this process was invoked by `cargo bench` (which passes
/// `--bench`) rather than `cargo test`.
fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// An optional substring filter: `cargo bench <filter>` runs only
/// benchmarks whose id contains the filter.
fn filter() -> Option<String> {
    std::env::args().skip(1).find(|a| !a.starts_with("--"))
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        run_benchmark(&id.into(), self.sample_size, f);
        self
    }
}

/// A named group sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id.into()), self.sample_size, f);
        self
    }

    /// Ends the group (reporting happens per benchmark; this is for API
    /// compatibility).
    pub fn finish(self) {}
}

fn run_benchmark(id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    if let Some(needle) = filter() {
        if !id.contains(&needle) {
            return;
        }
    }
    if !bench_mode() {
        // Smoke mode under `cargo test`: one iteration, no timing.
        let mut b = Bencher {
            samples: Vec::new(),
            measure: false,
        };
        f(&mut b);
        println!("bench {id} ... smoke ok");
        return;
    }
    let mut b = Bencher {
        samples: Vec::with_capacity(sample_size),
        measure: true,
    };
    // The closure body calls `b.iter*` once per invocation; invoke it
    // until enough samples accumulate (warmup sample discarded).
    f(&mut b);
    if !b.samples.is_empty() {
        b.samples.clear();
    }
    for _ in 0..sample_size {
        f(&mut b);
    }
    report(id, &b.samples);
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {id} ... no samples");
        return;
    }
    let nanos: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
    let mean = nanos.iter().sum::<f64>() / nanos.len() as f64;
    let min = nanos.iter().copied().fold(f64::INFINITY, f64::min);
    let max = nanos.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    println!(
        "bench {id} ... mean {} (min {}, max {}, {} samples)",
        fmt_ns(mean),
        fmt_ns(min),
        fmt_ns(max),
        nanos.len()
    );
    // Machine-readable line for tooling (scripts/bench.sh): one JSON
    // object per benchmark, nanosecond units, prefixed so it is easy to
    // grep out of the human-readable stream.
    println!(
        "BENCH_JSON {{\"id\":{id:?},\"mean_ns\":{mean:.1},\"min_ns\":{min:.1},\
         \"max_ns\":{max:.1},\"samples\":{}}}",
        nanos.len()
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Times the routine handed to it by a benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    measure: bool,
}

impl Bencher {
    /// Times one call of `routine` (smoke mode: runs it untimed).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        if !self.measure {
            black_box(routine());
            return;
        }
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }

    /// Times `routine` on a fresh input from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let input = setup();
        if !self.measure {
            black_box(routine(input));
            return;
        }
        let start = Instant::now();
        black_box(routine(input));
        self.samples.push(start.elapsed());
    }
}

/// Batch sizing hint (accepted for API compatibility; every batch is a
/// single input in this implementation).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Declares a group runner invoking each benchmark function in turn.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        // Unit tests never pass --bench, so this exercises smoke mode.
        let mut calls = 0;
        run_benchmark("unit/smoke", 5, |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn iter_batched_smoke_consumes_input() {
        let mut seen = Vec::new();
        run_benchmark("unit/batched", 5, |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| seen.push(v.len()),
                BatchSize::LargeInput,
            )
        });
        assert_eq!(seen, vec![3]);
    }

    #[test]
    fn formatting_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2e9).ends_with(" s"));
    }
}
