//! Offline drop-in subset of `parking_lot`: `Mutex` and `RwLock` with the
//! non-poisoning API, backed by `std::sync`. The build environment has no
//! crates.io access, so the workspace vendors the thin slice it needs.
//! Semantics match parking_lot where it matters here: `lock()` never
//! returns a `Result`, and a panicked holder does not poison the lock.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning from panicked holders.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers-writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip_and_contention() {
        let m = Arc::new(Mutex::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(*l.read(), vec![1, 2, 3, 4]);
        assert_eq!(l.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 1);
    }
}
