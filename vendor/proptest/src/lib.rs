//! Offline drop-in subset of `proptest`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the property-testing surface it actually uses: the
//! [`proptest!`] macro with `#![proptest_config(..)]`, numeric range and
//! regex-string strategies, `prop_map`/`prop_flat_map`/`prop_filter`,
//! `collection::vec`, `option::of`, `bool::ANY`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for an offline vendored
//! crate: no shrinking (a failing case reports its inputs' seed instead
//! of a minimized counterexample), `prop_assume!` counts as a pass
//! rather than drawing a replacement case, and the regex strategy
//! implements only the subset the workspace's patterns use (character
//! classes with ranges/escapes and `{m,n}` repetition).
//!
//! Cases are fully deterministic: each `(test name, case index)` pair
//! derives a fixed RNG seed, so failures reproduce across runs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::*;

    /// How many draws a `prop_filter` makes before giving up.
    const FILTER_RETRIES: usize = 1000;

    /// A generator of values for property tests. Unlike real proptest
    /// there is no value tree / shrinking: a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Rejects values failing `pred`, resampling up to a bounded
        /// number of times.
        fn prop_filter<R, F>(self, reason: R, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            R: Into<String>,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                pred,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;

        fn generate(&self, rng: &mut StdRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..FILTER_RETRIES {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter exhausted {FILTER_RETRIES} draws: {}",
                self.reason
            );
        }
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

    /// A bare `&str` is a regex strategy generating matching strings.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            let gen = crate::string::RegexGen::compile(self)
                .unwrap_or_else(|e| panic!("bad regex strategy {self:?}: {e}"));
            gen.sample(rng)
        }
    }

    macro_rules! tuple_strategies {
        ($(($($name:ident . $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose elements come from `element` and whose
    /// length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Generates `None` about a fifth of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.gen_range(0u32..5) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod bool {
    //! `bool` strategies.

    use super::strategy::Strategy;
    use super::*;

    /// The strategy behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    /// Generates `true` or `false` uniformly.
    pub const ANY: BoolAny = BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;

        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod string {
    //! Regex-driven string strategies.

    use super::strategy::Strategy;
    use super::*;

    /// Regex compilation error.
    #[derive(Debug, Clone)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// Builds a strategy generating strings matching `pattern`
    /// (supported subset: literals, escapes, `[..]` classes with ranges,
    /// and `{m}`/`{m,n}` repetition).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        RegexGen::compile(pattern).map(|gen| RegexGeneratorStrategy { gen })
    }

    /// See [`string_regex`].
    pub struct RegexGeneratorStrategy {
        gen: RegexGen,
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            self.gen.sample(rng)
        }
    }

    /// One regex atom plus its repetition bounds.
    struct Atom {
        /// The characters this atom can produce (singleton for literals).
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled pattern: a sequence of atoms.
    pub(crate) struct RegexGen {
        atoms: Vec<Atom>,
    }

    impl RegexGen {
        pub(crate) fn compile(pattern: &str) -> Result<RegexGen, Error> {
            let chars: Vec<char> = pattern.chars().collect();
            let mut atoms = Vec::new();
            let mut i = 0;
            while i < chars.len() {
                let choices = match chars[i] {
                    '[' => {
                        let (set, next) = parse_class(&chars, i + 1)?;
                        i = next;
                        set
                    }
                    '\\' => {
                        i += 1;
                        let c = *chars
                            .get(i)
                            .ok_or_else(|| Error("trailing backslash".into()))?;
                        i += 1;
                        vec![unescape(c)]
                    }
                    '{' | '}' | ']' | '*' | '+' | '?' | '(' | ')' | '|' => {
                        return Err(Error(format!(
                            "unsupported regex construct `{}` in {pattern:?}",
                            chars[i]
                        )))
                    }
                    c => {
                        i += 1;
                        vec![c]
                    }
                };
                let (min, max, next) = parse_repetition(&chars, i)?;
                i = next;
                atoms.push(Atom { choices, min, max });
            }
            Ok(RegexGen { atoms })
        }

        pub(crate) fn sample(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let count = rng.gen_range(atom.min..=atom.max);
                for _ in 0..count {
                    let idx = rng.gen_range(0..atom.choices.len());
                    out.push(atom.choices[idx]);
                }
            }
            out
        }
    }

    fn unescape(c: char) -> char {
        match c {
            'n' => '\n',
            't' => '\t',
            'r' => '\r',
            other => other,
        }
    }

    /// Parses a `[...]` class starting just after the `[`; returns the
    /// character set and the index just past the `]`.
    fn parse_class(chars: &[char], mut i: usize) -> Result<(Vec<char>, usize), Error> {
        let mut set = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                let c = *chars
                    .get(i)
                    .ok_or_else(|| Error("trailing backslash in class".into()))?;
                unescape(c)
            } else {
                chars[i]
            };
            // A `-` between two class members is a range; a leading or
            // trailing `-` is a literal.
            if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']') {
                let hi = if chars[i + 2] == '\\' {
                    i += 1;
                    unescape(
                        *chars
                            .get(i + 2)
                            .ok_or_else(|| Error("trailing backslash in class".into()))?,
                    )
                } else {
                    chars[i + 2]
                };
                if (c as u32) > (hi as u32) {
                    return Err(Error(format!("inverted range {c}-{hi}")));
                }
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        if i >= chars.len() {
            return Err(Error("unterminated character class".into()));
        }
        if set.is_empty() {
            return Err(Error("empty character class".into()));
        }
        Ok((set, i + 1))
    }

    /// Parses an optional `{m}` / `{m,n}` at `i`; returns `(min, max,
    /// next index)`.
    fn parse_repetition(chars: &[char], i: usize) -> Result<(usize, usize, usize), Error> {
        if chars.get(i) != Some(&'{') {
            return Ok((1, 1, i));
        }
        let close = chars[i..]
            .iter()
            .position(|&c| c == '}')
            .ok_or_else(|| Error("unterminated repetition".into()))?
            + i;
        let body: String = chars[i + 1..close].iter().collect();
        let (min, max) = match body.split_once(',') {
            Some((lo, hi)) => (
                lo.parse().map_err(|_| Error(format!("bad bound {lo:?}")))?,
                hi.parse().map_err(|_| Error(format!("bad bound {hi:?}")))?,
            ),
            None => {
                let n = body
                    .parse()
                    .map_err(|_| Error(format!("bad bound {body:?}")))?;
                (n, n)
            }
        };
        if min > max {
            return Err(Error(format!("inverted repetition {{{body}}}")));
        }
        Ok((min, max, close + 1))
    }
}

pub mod test_runner {
    //! Test configuration and deterministic per-case seeding.

    use super::*;

    /// Subset of proptest's config: just the case count.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// Deterministic RNG for one test case: FNV-1a over the test's full
    /// path, mixed with the case index.
    pub fn case_rng(test_name: &str, case: u32) -> StdRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

/// Defines property tests. Each `fn` becomes a `#[test]` that draws its
/// arguments from the given strategies for `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@props ($cfg) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident $args:tt $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@props ($crate::test_runner::ProptestConfig::default())
            $(#[$meta])* fn $name $args $body $($rest)*);
    };
    (@props ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::test_runner::case_rng(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng),
                )+);
                let outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!(
                        "property {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    )*};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r,
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({})\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                ::std::format!($($fmt)+),
                l,
                r,
            ));
        }
    }};
}

/// Skips the current property case when the assumption fails. (No
/// replacement case is drawn in this vendored subset.)
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

pub mod prelude {
    //! The names property tests import with `use proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn regex_subset_generates_matching_strings() {
        let strat = crate::string::string_regex("[a-z_]{3,16}").unwrap();
        let mut rng = crate::test_runner::case_rng("regex", 0);
        for _ in 0..100 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!((3..=16).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c == '_' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_class_with_newline_escape() {
        let strat = crate::string::string_regex("[ -~\n]{0,200}").unwrap();
        let mut rng = crate::test_runner::case_rng("printable", 1);
        for _ in 0..50 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(s.chars().count() <= 200);
            assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let strat = crate::string::string_regex("[a-c_-]{8}").unwrap();
        let mut rng = crate::test_runner::case_rng("dash", 2);
        let mut saw_dash = false;
        for _ in 0..200 {
            let s = Strategy::generate(&strat, &mut rng);
            assert!(
                s.chars().all(|c| matches!(c, 'a'..='c' | '_' | '-')),
                "{s:?}"
            );
            saw_dash |= s.contains('-');
        }
        assert!(saw_dash);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0usize..10, f in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_sizes_respect_bounds(
            v in crate::collection::vec(0u8..255, 2..5),
            exact in crate::collection::vec(crate::bool::ANY, 3),
            opt in crate::option::of(0i32..5),
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert_eq!(exact.len(), 3);
            prop_assume!(opt.is_none() || opt.unwrap() < 5);
        }

        #[test]
        fn flat_map_and_filter_compose(
            v in (1usize..6).prop_flat_map(|n| crate::collection::vec(0usize..100, n))
                .prop_filter("nonempty", |v| !v.is_empty()),
            name in "[a-z_]{3,16}",
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(name.len() >= 3);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::test_runner::case_rng("t", 3);
        let b = crate::test_runner::case_rng("t", 3);
        let mut a = a;
        let mut b = b;
        use rand::Rng;
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
