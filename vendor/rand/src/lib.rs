//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the exact slice of `rand` the project uses: seedable
//! deterministic generators (`StdRng`, `SmallRng`), the `Rng` extension
//! methods (`gen`, `gen_range`, `gen_bool`), and `seq::SliceRandom`
//! (`shuffle`, `choose`). The generator core is xoshiro256++ seeded via
//! SplitMix64 — *not* the upstream ChaCha12 stream, so absolute random
//! sequences differ from real `rand`, but every consumer in this repo
//! only relies on seed-determinism, which holds: the same seed always
//! produces the same stream, on every platform.

/// A source of random `u64`s / `u32`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, deterministic across platforms.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::StdRng`] and [`rngs::SmallRng`].
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Xoshiro256 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state would be a fixed point; SplitMix64 cannot produce
        // four zeros from any seed, but keep the guard for clarity.
        if s == [0; 4] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Drop-in for `rand::rngs::StdRng` (deterministic, seedable).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Drop-in for `rand::rngs::SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Uniform sample: `[0, 1)` for floats, full range for integers,
    /// fair coin for `bool`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                // Debiased modulo draw: retry while in the biased tail.
                let zone = <$u>::MAX - (<$u>::MAX - span + 1) % span;
                loop {
                    let v = rng.next_u64() as $u;
                    if v <= zone {
                        return self.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                (lo..hi + 1).sample_single(rng)
            }
        }
    )*};
}
range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}
range_float!(f32, f64);

/// The user-facing extension trait, auto-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample of `T` (see [`Standard`]).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element (`None` on an empty slice).
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_single(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_single(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let v = rng.gen_range(3usize..15);
            assert!((3..15).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
            let u = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_sampling_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 5];
        for _ in 0..5000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {c}");
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<usize> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
