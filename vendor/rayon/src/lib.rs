//! Offline drop-in subset of `rayon`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of rayon it uses: `slice.par_iter().map(f).collect()`
//! (order-preserving), `for_each`, and a `ThreadPool` whose `install`
//! scopes the worker count. Work is distributed dynamically over an
//! atomic index queue and executed on `std::thread::scope` workers, so
//! uneven per-item cost (the normal case for HPO trials) load-balances
//! the same way rayon's work stealing does. Results always come back in
//! input order regardless of completion order.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Worker-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// The number of worker threads a parallel iterator will use on this
/// thread: the installed pool size, else the machine's parallelism.
pub fn current_num_threads() -> usize {
    let installed = POOL_THREADS.with(Cell::get);
    if installed > 0 {
        installed
    } else {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    }
}

/// Builder for a [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (machine) parallelism.
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count (0 = machine parallelism).
    pub fn num_threads(mut self, n: usize) -> ThreadPoolBuilder {
        self.num_threads = n;
        self
    }

    /// Builds the pool. Never fails in this implementation; the `Result`
    /// mirrors rayon's signature.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                std::thread::available_parallelism().map_or(1, |n| n.get())
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type mirroring rayon's builder signature (never produced).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool construction failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A logical pool: parallel iterators run inside [`ThreadPool::install`]
/// use its worker count. Workers are scoped per operation rather than
/// persistent, which preserves rayon's API without a global runtime.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The pool's worker count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Runs `f` with this pool's worker count installed for any parallel
    /// iterators it creates.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        f()
    }
}

/// Runs `f(i)` for every `i in 0..len` across `threads` workers, feeding
/// indices through a shared atomic queue, and returns results in index
/// order.
fn run_indexed<R, F>(len: usize, threads: usize, f: F) -> Vec<Option<R>>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let mut slots: Vec<Option<R>> = Vec::with_capacity(len);
    if threads <= 1 || len <= 1 {
        for i in 0..len {
            slots.push(Some(f(i)));
        }
        return slots;
    }
    slots.resize_with(len, || None);
    let results = Mutex::new(slots);
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(len) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= len {
                    break;
                }
                let r = f(i);
                results.lock().unwrap_or_else(|e| e.into_inner())[i] = Some(r);
            });
        }
    });
    results.into_inner().unwrap_or_else(|e| e.into_inner())
}

/// Borrowing parallel iterator over a slice.
pub struct ParIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParIter<'a, T> {
    /// Maps every element (lazily; executed by a consuming method).
    pub fn map<R, F>(self, f: F) -> ParMap<'a, T, F>
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Runs `f` on every element in parallel.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(&'a T) + Sync,
    {
        let items = self.items;
        run_indexed(items.len(), current_num_threads(), |i| f(&items[i]));
    }
}

/// A mapped parallel iterator.
pub struct ParMap<'a, T, F> {
    items: &'a [T],
    f: F,
}

impl<'a, T: Sync, F> ParMap<'a, T, F> {
    /// Executes the map across the current worker count and collects the
    /// results in input order.
    pub fn collect<C, R>(self) -> C
    where
        R: Send,
        F: Fn(&'a T) -> R + Sync,
        C: FromParallelIterator<R>,
    {
        let items = self.items;
        let f = &self.f;
        let produced = run_indexed(items.len(), current_num_threads(), |i| f(&items[i]));
        C::from_ordered(
            produced
                .into_iter()
                .map(|r| r.expect("every index produced"))
                .collect(),
        )
    }
}

/// Collection target of [`ParMap::collect`].
pub trait FromParallelIterator<R> {
    /// Builds the collection from results already in input order.
    fn from_ordered(items: Vec<R>) -> Self;
}

impl<R> FromParallelIterator<R> for Vec<R> {
    fn from_ordered(items: Vec<R>) -> Vec<R> {
        items
    }
}

/// Borrowing conversion into a parallel iterator (`.par_iter()`).
pub trait IntoParallelRefIterator<'a> {
    /// Element type yielded by reference.
    type Item: 'a;

    /// A parallel iterator borrowing `self`.
    fn par_iter(&'a self) -> ParIter<'a, Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = T;

    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { items: self }
    }
}

/// The rayon prelude: the traits needed for `.par_iter()` chains.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = input.par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        let input: Vec<u64> = (0..64).collect();
        let out: Vec<u64> = input
            .par_iter()
            .map(|x| {
                if x % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                x * x
            })
            .collect();
        assert_eq!(out, (0..64).map(|x| x * x).collect::<Vec<u64>>());
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        pool.install(|| {
            assert_eq!(current_num_threads(), 3);
            let out: Vec<usize> = vec![1, 2, 3].par_iter().map(|x| x + 1).collect();
            assert_eq!(out, vec![2, 3, 4]);
        });
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        let input: Vec<usize> = (0..100).collect();
        input.par_iter().for_each(|x| {
            sum.fetch_add(*x, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 4950);
    }

    #[test]
    fn single_threaded_pool_runs_inline() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let out: Vec<usize> = pool.install(|| {
            (0..10)
                .collect::<Vec<_>>()
                .par_iter()
                .map(|x| x + 1)
                .collect()
        });
        assert_eq!(out.len(), 10);
    }
}
