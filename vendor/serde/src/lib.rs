//! Offline drop-in subset of `serde`.
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of serde the project uses: `#[derive(Serialize,
//! Deserialize)]` on plain structs, newtype structs, and enums (unit and
//! tuple variants), serialized through an owned JSON [`Value`] tree. The
//! derive macros live in the sibling `serde_derive` crate and generate
//! impls of the two traits below; `serde_json` renders and parses the
//! `Value` tree. The data model matches serde's JSON conventions: structs
//! become objects, unit enum variants become strings, tuple variants
//! become `{"Variant": payload}` objects, newtypes are transparent.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned JSON value — the common data model between the `Serialize`
/// and `Deserialize` traits and the `serde_json` front end.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (integer or float; see [`Number`]).
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Value)>),
}

/// A JSON number, kept in its widest lossless representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A negative (or any signed) integer.
    I(i64),
    /// A non-negative integer too large for `i64`, or any `u64`.
    U(u64),
    /// A float.
    F(f64),
}

impl Value {
    /// Object field lookup, as a deserialization step.
    pub fn field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Obj(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Looks up a field in an object, returning `None` when the key is
    /// absent (used by `#[serde(default)]` fields in the derive). Still
    /// an error when `self` is not an object.
    pub fn field_opt(&self, name: &str) -> Result<Option<&Value>, DeError> {
        match self {
            Value::Obj(entries) => Ok(entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)),
            other => Err(DeError(format!(
                "expected object with field `{name}`, found {}",
                other.kind_name()
            ))),
        }
    }

    /// Human-readable kind tag for error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }
}

/// A deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] data model.
pub trait Serialize {
    /// Serializes `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Deserializes from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// --- primitive impls -----------------------------------------------------

macro_rules! ser_de_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::I(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = expect_num(v)?;
                let wide: i64 = match n {
                    Number::I(i) => i,
                    Number::U(u) => i64::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range")))?,
                    Number::F(f) if f.fract() == 0.0 => f as i64,
                    Number::F(f) => return Err(DeError(format!("{f} is not an integer"))),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("{wide} out of range")))
            }
        }
    )*};
}
ser_de_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_de_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(Number::U(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<$t, DeError> {
                let n = expect_num(v)?;
                let wide: u64 = match n {
                    Number::U(u) => u,
                    Number::I(i) => u64::try_from(i)
                        .map_err(|_| DeError(format!("{i} out of range")))?,
                    Number::F(f) if f.fract() == 0.0 && f >= 0.0 => f as u64,
                    Number::F(f) => return Err(DeError(format!("{f} is not an unsigned integer"))),
                };
                <$t>::try_from(wide).map_err(|_| DeError(format!("{wide} out of range")))
            }
        }
    )*};
}
ser_de_unsigned!(u8, u16, u32, u64, usize);

fn expect_num(v: &Value) -> Result<Number, DeError> {
    match v {
        Value::Num(n) => Ok(*n),
        other => Err(DeError(format!(
            "expected number, found {}",
            other.kind_name()
        ))),
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(Number::F(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<f64, DeError> {
        Ok(match expect_num(v)? {
            Number::F(f) => f,
            Number::I(i) => i as f64,
            Number::U(u) => u as f64,
        })
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        // f32 -> f64 is exact; the shortest-round-trip rendering of the
        // f64 re-parses to the same f32.
        Value::Num(Number::F(f64::from(*self)))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<f32, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<bool, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!(
                "expected bool, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<String, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!(
                "expected string, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<char, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single char, found {s:?}"))),
        }
    }
}

// --- container impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<[T; N], DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of {N}, found {len}")))
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Vec<T>, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!(
                "expected array, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Option<T>, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: keys in sorted order.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Obj(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<HashMap<String, V>, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!(
                "expected object, found {}",
                other.kind_name()
            ))),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<BTreeMap<String, V>, DeError> {
        match v {
            Value::Obj(entries) => entries
                .iter()
                .map(|(k, val)| Ok((k.clone(), V::from_value(val)?)))
                .collect(),
            other => Err(DeError(format!(
                "expected object, found {}",
                other.kind_name()
            ))),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arity = [$(stringify!($idx)),+].len();
                match v {
                    Value::Arr(items) if items.len() == arity => {
                        let mut it = items.iter();
                        Ok(($({
                            let _ = $idx; // positional
                            $name::from_value(it.next().expect("arity checked"))?
                        },)+))
                    }
                    Value::Arr(items) => Err(DeError(format!(
                        "expected {arity}-tuple, found array of {}",
                        items.len()
                    ))),
                    other => Err(DeError(format!("expected array, found {}", other.kind_name()))),
                }
            }
        }
    )*};
}
tuple_impls! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u8>::from_value(&3u8.to_value()).unwrap(), Some(3));
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1usize, 2.5f64), (3, 4.5)];
        let back = Vec::<(usize, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);

        let mut m = HashMap::new();
        m.insert("a".to_string(), vec![1.0f64, 2.0]);
        m.insert("b".to_string(), vec![]);
        let back = HashMap::<String, Vec<f64>>::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_are_descriptive() {
        let e = u64::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(e.to_string().contains("expected number"));
        let e = Value::Bool(true).field("k").unwrap_err();
        assert!(e.to_string().contains("expected object"));
    }
}
