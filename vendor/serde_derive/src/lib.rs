//! Derive macros for the vendored `serde` subset.
//!
//! Implemented directly on `proc_macro::TokenStream` (the offline build
//! has no `syn`/`quote`). Supported shapes — exactly what this workspace
//! derives on:
//!
//! * structs with named fields,
//! * tuple structs (newtypes serialize transparently, wider tuples as
//!   arrays),
//! * enums with unit variants (serialized as `"Variant"`) and tuple
//!   variants (serialized externally tagged, `{"Variant": payload}`).
//!
//! The only supported `#[serde(...)]` attributes are `#[serde(default)]`
//! and `#[serde(default = "path")]` on named struct fields (a missing key
//! deserializes to `Default::default()` or `path()`; serialization always
//! emits the field). Generics, struct variants, and other `#[serde(...)]`
//! attributes are not supported and produce a compile error naming the
//! limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A named struct field with its optional `#[serde(default)]` expression.
struct Field {
    name: String,
    /// Rust expression producing the value when the key is absent.
    default: Option<String>,
}

/// A parsed item shape.
enum Item {
    Named {
        name: String,
        fields: Vec<Field>,
    },
    Tuple {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        variants: Vec<(String, usize)>,
    },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("error tokens")
}

/// Skips one attribute (`#` already consumed is NOT assumed — `idx` must
/// point at `#`); returns the index after the attribute.
fn skip_attrs(tokens: &[TokenTree], mut idx: usize) -> usize {
    while idx + 1 < tokens.len() {
        match (&tokens[idx], &tokens[idx + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                idx += 2;
            }
            _ => break,
        }
    }
    idx
}

/// Extracts the default expression from a field's leading attributes:
/// `#[serde(default)]` → `Default::default()`, `#[serde(default =
/// "path")]` → `path()`. Other `#[serde(...)]` shapes are an error; non-
/// serde attributes (doc comments) are ignored.
fn field_default(tokens: &[TokenTree]) -> Result<Option<String>, String> {
    let mut idx = 0;
    let mut default = None;
    while idx + 1 < tokens.len() {
        match (&tokens[idx], &tokens[idx + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if matches!(inner.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde") {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        return Err("malformed #[serde(...)] attribute".into());
                    };
                    let args: Vec<TokenTree> = args.stream().into_iter().collect();
                    match args.as_slice() {
                        [TokenTree::Ident(i)] if i.to_string() == "default" => {
                            default = Some("::std::default::Default::default()".to_string());
                        }
                        [TokenTree::Ident(i), TokenTree::Punct(eq), TokenTree::Literal(path)]
                            if i.to_string() == "default" && eq.as_char() == '=' =>
                        {
                            let raw = path.to_string();
                            let path = raw.trim_matches('"');
                            if path.is_empty() || path.len() == raw.len() {
                                return Err(format!(
                                    "expected string literal in #[serde(default = ...)], \
                                     found {raw}"
                                ));
                            }
                            default = Some(format!("{path}()"));
                        }
                        _ => {
                            return Err("only #[serde(default)] and #[serde(default = \"path\")] \
                                 are supported by the vendored derive"
                                .into())
                        }
                    }
                }
                idx += 2;
            }
            _ => break,
        }
    }
    Ok(default)
}

/// Skips a visibility modifier (`pub`, `pub(crate)`, …).
fn skip_vis(tokens: &[TokenTree], mut idx: usize) -> usize {
    if let Some(TokenTree::Ident(i)) = tokens.get(idx) {
        if i.to_string() == "pub" {
            idx += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(idx) {
                if g.delimiter() == Delimiter::Parenthesis {
                    idx += 1;
                }
            }
        }
    }
    idx
}

/// Counts top-level comma-separated chunks in a token list, tracking
/// `<...>` nesting (commas inside angle brackets belong to type
/// arguments, not to the field list).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut chunks: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if !current.is_empty() {
                        chunks.push(std::mem::take(&mut current));
                    }
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        chunks.push(current);
    }
    chunks
}

/// Parses the derive input into an [`Item`], or an error message.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut idx = 0;
    // Skip outer attributes (doc comments arrive as #[doc = ...]) and
    // the item's visibility.
    idx = skip_attrs(&tokens, idx);
    idx = skip_vis(&tokens, idx);
    let kind = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, found {other:?}")),
    };
    idx += 1;
    let name = match tokens.get(idx) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, found {other:?}")),
    };
    idx += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(idx) {
        if p.as_char() == '<' {
            return Err(format!(
                "vendored serde derive does not support generics (on `{name}`)"
            ));
        }
    }
    match kind.as_str() {
        "struct" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut fields = Vec::new();
                for chunk in split_top_level(&body) {
                    let default = field_default(&chunk)?;
                    let mut fi = skip_attrs(&chunk, 0);
                    fi = skip_vis(&chunk, fi);
                    match chunk.get(fi) {
                        Some(TokenTree::Ident(fname)) => fields.push(Field {
                            name: fname.to_string(),
                            default,
                        }),
                        other => {
                            return Err(format!("unsupported field shape in `{name}`: {other:?}"))
                        }
                    }
                }
                Ok(Item::Named { name, fields })
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                Ok(Item::Tuple {
                    name,
                    arity: split_top_level(&body).len(),
                })
            }
            other => Err(format!("unsupported struct body for `{name}`: {other:?}")),
        },
        "enum" => match tokens.get(idx) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut variants = Vec::new();
                for chunk in split_top_level(&body) {
                    let vi = skip_attrs(&chunk, 0);
                    let vname = match chunk.get(vi) {
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        other => {
                            return Err(format!("unsupported variant shape in `{name}`: {other:?}"))
                        }
                    };
                    let arity = match chunk.get(vi + 1) {
                        None => 0,
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            let payload: Vec<TokenTree> = g.stream().into_iter().collect();
                            split_top_level(&payload).len()
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Err(format!(
                                "vendored serde derive does not support struct variants \
                                 (`{name}::{vname}`)"
                            ))
                        }
                        Some(other) => {
                            return Err(format!("unsupported variant `{name}::{vname}`: {other:?}"))
                        }
                    };
                    variants.push((vname, arity));
                }
                Ok(Item::Enum { name, variants })
            }
            other => Err(format!("unsupported enum body for `{name}`: {other:?}")),
        },
        other => Err(format!("cannot derive for item kind `{other}`")),
    }
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::Named { fields, .. } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "obj.push((::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));"
                    )
                })
                .collect();
            format!(
                "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new(); {pushes} ::serde::Value::Obj(obj)"
            )
        }
        Item::Tuple { arity: 1, .. } => "::serde::Serialize::to_value(&self.0)".to_string(),
        Item::Tuple { arity, .. } => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(::std::vec![{}])", items.join(", "))
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|(v, arity)| match arity {
                    0 => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    ),
                    1 => format!(
                        "{name}::{v}(f0) => ::serde::Value::Obj(::std::vec![(\
                         ::std::string::String::from({v:?}), \
                         ::serde::Serialize::to_value(f0))]),"
                    ),
                    n => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let values: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::Value::Obj(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Value::Arr(::std::vec![{}]))]),",
                            binders.join(", "),
                            values.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    let name = match &item {
        Item::Named { name, .. } | Item::Tuple { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let body = match &item {
        Item::Named { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| match (&f.name, &f.default) {
                    (n, None) => {
                        format!("{n}: ::serde::Deserialize::from_value(v.field({n:?})?)?,")
                    }
                    (n, Some(d)) => format!(
                        "{n}: match v.field_opt({n:?})? {{\n\
                           ::std::option::Option::Some(fv) => \
                             ::serde::Deserialize::from_value(fv)?,\n\
                           ::std::option::Option::None => {d},\n\
                         }},"
                    ),
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{ {inits} }})")
        }
        Item::Tuple { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Item::Tuple { name, arity } => {
            let gets: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Arr(items) if items.len() == {arity} => \
                     ::std::result::Result::Ok({name}({gets})),\n\
                   other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                     \"expected array of {arity} for {name}, found {{}}\", other.kind_name()))),\n\
                 }}",
                gets = gets.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity == 0)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, arity)| *arity > 0)
                .map(|(v, arity)| {
                    if *arity == 1 {
                        format!(
                            "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_value(payload)?)),"
                        )
                    } else {
                        let gets: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?"))
                            .collect();
                        format!(
                            "{v:?} => match payload {{\n\
                               ::serde::Value::Arr(items) if items.len() == {arity} => \
                                 ::std::result::Result::Ok({name}::{v}({gets})),\n\
                               other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"bad payload for {name}::{v}: {{}}\", \
                                 other.kind_name()))),\n\
                             }},",
                            gets = gets.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                   ::serde::Value::Str(s) => match s.as_str() {{\n\
                     {unit_arms}\n\
                     other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                       \"unknown variant {{other}} for {name}\"))),\n\
                   }},\n\
                   ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                     let (tag, payload) = &entries[0];\n\
                     match tag.as_str() {{\n\
                       {payload_arms}\n\
                       other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                         \"unknown variant {{other}} for {name}\"))),\n\
                     }}\n\
                   }}\n\
                   other => ::std::result::Result::Err(::serde::DeError(::std::format!(\
                     \"expected variant of {name}, found {{}}\", other.kind_name()))),\n\
                 }}"
            )
        }
    };
    let name = match &item {
        Item::Named { name, .. } | Item::Tuple { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> \
             {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}
