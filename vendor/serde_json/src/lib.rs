//! Offline drop-in subset of `serde_json`.
//!
//! Renders and parses the vendored `serde::Value` tree. The surface is
//! exactly what this workspace calls: [`to_string`], [`to_string_pretty`],
//! [`from_str`], and an [`Error`] that displays its message. Floats are
//! written with Rust's shortest-round-trip formatting, so every value that
//! comes out of `to_string` parses back to the identical bits.

use serde::{Deserialize, Number, Serialize, Value};

/// A serialization or deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any `Deserialize` type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value).map_err(|e| Error(e.0))
}

// --- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => write_seq(out, items.iter(), indent, depth, '[', ']', write_value),
        Value::Obj(entries) => write_seq(
            out,
            entries.iter(),
            indent,
            depth,
            '{',
            '}',
            |out, (k, val), indent, depth| {
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth);
            },
        ),
    }
}

fn write_seq<I, F>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: F,
) where
    I: ExactSizeIterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::I(i) => out.push_str(&i.to_string()),
        Number::U(u) => out.push_str(&u.to_string()),
        Number::F(f) if f.is_finite() => {
            // `{:?}` is shortest-round-trip; force a decimal point or
            // exponent so the text re-parses as a float, matching serde_json.
            let s = format!("{f:?}");
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // serde_json writes null for NaN/inf.
        Number::F(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                s.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at byte {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Num(if i >= 0 {
                    Number::U(i as u64)
                } else {
                    Number::I(i)
                }));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Num(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Num(Number::F(f)))
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars_and_containers() {
        let v = vec![(1usize, -2.5f64), (3, 0.1)];
        let text = to_string(&v).unwrap();
        let back: Vec<(usize, f64)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -2.5, 7.0] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{text}");
        }
    }

    #[test]
    fn whole_floats_stay_floats() {
        assert_eq!(to_string(&7.0f64).unwrap(), "7.0");
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line1\nline2\t\"quoted\" \\ slash \u{0007}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert("key".to_string(), vec![1.5f64, 2.5]);
        let text = to_string_pretty(&m).unwrap();
        assert!(text.contains("\n  \"key\": [\n    1.5,\n    2.5\n  ]"));
        let back: HashMap<String, Vec<f64>> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn errors_report_position() {
        let err = from_str::<Vec<u8>>("[1, 2").unwrap_err();
        assert!(err.to_string().contains("expected"));
        let err = from_str::<bool>("true false").unwrap_err();
        assert!(err.to_string().contains("trailing"));
    }
}
